/**
 * @file
 * Small statistics helpers used by the benchmark harness and tests:
 * arithmetic / geometric means, standard deviation, percentiles, and
 * an accumulating Summary for streaming samples.
 */

#ifndef JITSCHED_SUPPORT_STATS_HH
#define JITSCHED_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace jitsched {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean; 0 for an empty input.
 * All inputs must be strictly positive.
 */
double geomean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/**
 * Percentile by linear interpolation between closest ranks.
 * @param p in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Streaming accumulator of min / max / mean / variance (Welford).
 */
class Summary
{
  public:
    /** Record one sample. */
    void add(double x);

    std::size_t count() const { return n_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample variance (n-1 denominator); 0 for n < 2. */
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
};

} // namespace jitsched

#endif // JITSCHED_SUPPORT_STATS_HH
