/**
 * @file
 * String / formatting utilities shared by trace I/O and reporting.
 */

#ifndef JITSCHED_SUPPORT_STRUTIL_HH
#define JITSCHED_SUPPORT_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hh"

namespace jitsched {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Parse a signed 64-bit integer; nullopt on any syntax error. */
std::optional<std::int64_t> parseInt(std::string_view s);

/** Parse a double; nullopt on any syntax error. */
std::optional<double> parseDouble(std::string_view s);

/** Render ticks as a human unit string, e.g. "1.50 ms". */
std::string formatTicks(Tick t);

/** Render a double with a fixed number of decimals. */
std::string formatFixed(double v, int decimals);

/** Render a count with thousands separators, e.g. "2,403,584". */
std::string formatCount(std::uint64_t n);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace jitsched

#endif // JITSCHED_SUPPORT_STRUTIL_HH
