#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "support/strutil.hh"

namespace jitsched {

namespace {

std::atomic<bool> loggingEnabled{true};

std::atomic<PanicHook> panicHook{nullptr};

/** Guards against a panic inside the panic hook re-entering it. */
thread_local bool inPanicHook = false;

/**
 * The level cell, seeded from JITSCHED_LOG_LEVEL on first use.  A
 * function-local static so the environment is read exactly once, and
 * before any thread can race on it (the first log call wins the
 * initialization, guarded by the C++ magic-static lock).
 */
std::atomic<int> &
logLevelCell()
{
    static std::atomic<int> level{static_cast<int>(
        parseLogLevelEnv(std::getenv("JITSCHED_LOG_LEVEL")))};
    return level;
}

} // anonymous namespace

bool
setLoggingEnabled(bool enabled)
{
    return loggingEnabled.exchange(enabled);
}

LogLevel
setLogLevel(LogLevel level)
{
    return static_cast<LogLevel>(
        logLevelCell().exchange(static_cast<int>(level)));
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(logLevelCell().load());
}

LogLevel
parseLogLevelEnv(const char *env)
{
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    const std::string value{trim(env)};
    if (value == "silent")
        return LogLevel::Silent;
    if (value == "warn")
        return LogLevel::Warn;
    if (value == "info")
        return LogLevel::Info;
    JITSCHED_FATAL("JITSCHED_LOG_LEVEL must be 'silent', 'warn', or "
                   "'info', got '", env, "'");
}

PanicHook
setPanicHook(PanicHook hook)
{
    return panicHook.exchange(hook);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    const PanicHook hook = panicHook.load();
    if (hook != nullptr && !inPanicHook) {
        inPanicHook = true;
        hook();
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (loggingEnabled.load() && logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (loggingEnabled.load() && logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace jitsched
