#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace jitsched {

namespace {

std::atomic<bool> loggingEnabled{true};

} // anonymous namespace

bool
setLoggingEnabled(bool enabled)
{
    return loggingEnabled.exchange(enabled);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (loggingEnabled.load())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (loggingEnabled.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace jitsched
