#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace jitsched {

namespace {

/** SplitMix64 step used for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        JITSCHED_PANIC("nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        JITSCHED_PANIC("nextRange: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    // Box-Muller; u1 must be > 0.
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint32_t
Rng::nextBurst(double continue_prob, std::uint32_t max_len)
{
    std::uint32_t len = 1;
    while (len < max_len && nextBool(continue_prob))
        ++len;
    return len;
}

Rng
Rng::split()
{
    return Rng(next());
}

Rng
Rng::caseStream(std::uint64_t seed, std::uint64_t case_index)
{
    // Avalanche each word independently, then combine.  The odd
    // constant on the index keeps caseStream(s, 0) distinct from
    // Rng(s) (whose constructor also starts from a SplitMix64 walk
    // of s alone).
    std::uint64_t a = seed;
    std::uint64_t b = case_index ^ 0xa0761d6478bd642full;
    const std::uint64_t ha = splitMix64(a);
    const std::uint64_t hb = splitMix64(b);
    return Rng(ha ^ rotl(hb, 32));
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    if (n == 0)
        JITSCHED_PANIC("ZipfSampler with n == 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf_[r] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0; // guard against rounding
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    // Binary search for the first rank with cdf >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
ZipfSampler::probability(std::size_t rank) const
{
    if (rank >= cdf_.size())
        JITSCHED_PANIC("ZipfSampler::probability: rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

} // namespace jitsched
