/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All randomness in jitsched flows through Rng, a xoshiro256** engine
 * seeded through SplitMix64.  The same seed always reproduces the same
 * workload on every platform, which keeps tests and benchmark tables
 * stable.  ZipfSampler implements the skewed function-hotness
 * distribution used by the synthetic trace generator.
 */

#ifndef JITSCHED_SUPPORT_RNG_HH
#define JITSCHED_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

namespace jitsched {

/**
 * xoshiro256** pseudo random generator with convenience draws.
 *
 * Not a cryptographic generator; chosen for speed, quality, and a
 * trivially portable implementation.
 */
class Rng
{
  public:
    /** Seed the engine; the raw seed is expanded through SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal draw (Box-Muller, no cached spare). */
    double nextGaussian();

    /** Log-normal draw: exp(mu + sigma * N(0,1)). */
    double nextLogNormal(double mu, double sigma);

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Geometric-ish burst length in [1, max_len]. */
    std::uint32_t nextBurst(double continue_prob, std::uint32_t max_len);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Independent per-case stream for fuzzing and other indexed
     * sweeps.
     *
     * Seeding contract (what makes fuzz failures reproducible from
     * `--seed` plus a case id alone):
     *  - caseStream(seed, i) depends on *nothing* but the two
     *    arguments — not on how many draws any other stream made,
     *    not on iteration order, not on the platform;
     *  - the same (seed, index) pair yields the identical draw
     *    sequence forever (the mixing constants below are part of
     *    the wire-in-stone contract, like the workload grammar);
     *  - distinct pairs yield statistically independent streams:
     *    both words pass through a full SplitMix64 avalanche before
     *    they are combined, so adjacent case indices do not produce
     *    correlated engines the way Rng(seed + i) would.
     */
    static Rng caseStream(std::uint64_t seed, std::uint64_t case_index);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf(s) sampler over ranks {0, 1, ..., n-1}.
 *
 * Rank r is drawn with probability proportional to 1 / (r + 1)^s.
 * Sampling is done by binary search over the precomputed CDF, O(log n)
 * per draw, which is plenty fast for generating multi-million-call
 * traces.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of ranks (must be > 0)
     * @param s skew parameter (s >= 0; 0 degenerates to uniform)
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double probability(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace jitsched

#endif // JITSCHED_SUPPORT_RNG_HH
