#include "support/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cmath>

namespace jitsched {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (s.empty())
        return std::nullopt;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<double>
parseDouble(std::string_view s)
{
    s = trim(s);
    if (s.empty())
        return std::nullopt;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size() || !std::isfinite(v))
        return std::nullopt;
    return v;
}

std::string
formatTicks(Tick t)
{
    const double abs_t = std::abs(static_cast<double>(t));
    if (abs_t >= static_cast<double>(ticksPerSecond))
        return strprintf("%.3f s", toSeconds(t));
    if (abs_t >= static_cast<double>(ticksPerMs))
        return strprintf("%.3f ms", toMillis(t));
    if (abs_t >= static_cast<double>(ticksPerUs))
        return strprintf("%.3f us",
                         static_cast<double>(t) /
                             static_cast<double>(ticksPerUs));
    return strprintf("%lld ns", static_cast<long long>(t));
}

std::string
formatFixed(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
formatCount(std::uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

} // namespace jitsched
