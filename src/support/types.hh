/**
 * @file
 * Fundamental scalar types shared by every jitsched module.
 *
 * The simulator is fully deterministic: simulated time is kept as an
 * integral number of ticks (1 tick = 1 nanosecond of simulated time),
 * so there is no floating-point drift anywhere in the timing model.
 * Conversion to seconds happens only at reporting boundaries.
 */

#ifndef JITSCHED_SUPPORT_TYPES_HH
#define JITSCHED_SUPPORT_TYPES_HH

#include <cstdint>
#include <limits>

namespace jitsched {

/** Simulated time, in nanoseconds. Signed so durations can be negative. */
using Tick = std::int64_t;

/** Identifier of a compilation unit (function / method). */
using FuncId = std::uint32_t;

/** Optimization level index; 0 is the cheapest ("baseline") level. */
using Level = std::uint8_t;

/** Sentinel used for "no time" / "not yet happened". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid function id. */
constexpr FuncId invalidFuncId = std::numeric_limits<FuncId>::max();

/** Number of ticks in one simulated second. */
constexpr Tick ticksPerSecond = 1'000'000'000;

/** Number of ticks in one simulated millisecond. */
constexpr Tick ticksPerMs = 1'000'000;

/** Number of ticks in one simulated microsecond. */
constexpr Tick ticksPerUs = 1'000;

/** Convert ticks to (floating-point) seconds for reporting. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Convert ticks to (floating-point) milliseconds for reporting. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerMs);
}

} // namespace jitsched

#endif // JITSCHED_SUPPORT_TYPES_HH
