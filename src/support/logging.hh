/**
 * @file
 * Minimal logging / error-reporting helpers in the gem5 spirit.
 *
 * - panic():  an internal invariant was violated (a jitsched bug);
 *             prints and aborts.
 * - fatal():  the user asked for something impossible (bad input,
 *             bad configuration); prints and exits with status 1.
 * - warn():   something is suspicious but execution can continue.
 * - inform(): a status message for the user.
 *
 * warn()/inform() verbosity is controlled by the JITSCHED_LOG_LEVEL
 * environment variable — `silent`, `warn`, or `info` (the default),
 * parsed strictly like JITSCHED_THREADS: anything else is fatal()
 * rather than silently ignored.  panic()/fatal() always print.
 */

#ifndef JITSCHED_SUPPORT_LOGGING_HH
#define JITSCHED_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace jitsched {

namespace detail {

/** Append the string form of every argument to an ostringstream. */
inline void
appendArgs(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendArgs(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendArgs(os, rest...);
}

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendArgs(os, args...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with an internal-error message. Use for jitsched bugs only. */
#define JITSCHED_PANIC(...)                                                  \
    ::jitsched::detail::panicImpl(__FILE__, __LINE__,                        \
                                  ::jitsched::detail::concat(__VA_ARGS__))

/** Exit(1) with a user-error message (bad input or configuration). */
#define JITSCHED_FATAL(...)                                                  \
    ::jitsched::detail::fatalImpl(__FILE__, __LINE__,                        \
                                  ::jitsched::detail::concat(__VA_ARGS__))

/** Print a warning; execution continues. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::warnImpl(detail::concat(args...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::informImpl(detail::concat(args...));
}

/**
 * Control whether warn()/inform() produce output (tests silence them).
 * @return the previous setting.
 */
bool setLoggingEnabled(bool enabled);

/** Verbosity of the non-fatal log channels, most to least quiet. */
enum class LogLevel
{
    Silent = 0, ///< neither warn() nor inform() print
    Warn = 1,   ///< warn() prints, inform() does not
    Info = 2,   ///< both print (the default)
};

/**
 * Set the log level programmatically (overrides the environment).
 * @return the previous level.
 */
LogLevel setLogLevel(LogLevel level);

/** The current log level. */
LogLevel logLevel();

/**
 * Parse a JITSCHED_LOG_LEVEL value.  Mirrors the JITSCHED_THREADS
 * contract (exec/thread_pool.hh): unset or empty means the default
 * (Info), and anything that is not exactly `silent`, `warn`, or
 * `info` after whitespace trimming is fatal() — a typo must not
 * silently change what gets logged.
 */
LogLevel parseLogLevelEnv(const char *env);

/**
 * Hook invoked by panic() after the message prints and before
 * abort() — the obs flight recorder registers its stderr dump here
 * so a crashing process leaves its last-N-requests record behind.
 * The hook must be async-signal-tolerant in spirit: no throwing, no
 * panicking (a recursing hook is suppressed).  support/ cannot
 * depend on obs/, hence the inversion.  @return the previous hook.
 */
using PanicHook = void (*)();
PanicHook setPanicHook(PanicHook hook);

} // namespace jitsched

#endif // JITSCHED_SUPPORT_LOGGING_HH
