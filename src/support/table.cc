#include "support/table.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace jitsched {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        JITSCHED_PANIC("AsciiTable needs at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        JITSCHED_PANIC("AsciiTable row arity ", cells.size(),
                       " != header arity ", headers_.size());
    rows_.push_back({std::move(cells), false});
}

void
AsciiTable::addSeparator()
{
    rows_.push_back({{}, true});
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_sep = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &cell = cells[c];
            const std::size_t pad = widths[c] - cell.size();
            os << "| ";
            if (c == 0) {
                os << cell << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << cell;
            }
            os << ' ';
        }
        os << "|\n";
    };

    print_sep();
    print_cells(headers_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.separator)
            print_sep();
        else
            print_cells(row.cells);
    }
    print_sep();
}

std::string
AsciiTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace jitsched
