#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace jitsched {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            JITSCHED_PANIC("geomean: non-positive input ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        JITSCHED_PANIC("percentile: p out of range ", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

void
Summary::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    // Welford's online update.
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Summary::min() const
{
    return n_ == 0 ? 0.0 : min_;
}

double
Summary::max() const
{
    return n_ == 0 ? 0.0 : max_;
}

double
Summary::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
Summary::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

} // namespace jitsched
