/**
 * @file
 * Simple ASCII table printer used by the benchmark harness to render
 * the paper's tables and figures as text rows.
 */

#ifndef JITSCHED_SUPPORT_TABLE_HH
#define JITSCHED_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace jitsched {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   AsciiTable t({"benchmark", "default", "IAR"});
 *   t.addRow({"antlr", "1.71", "1.06"});
 *   t.print(std::cout);
 * @endcode
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table. First column left-aligned, rest right. */
    void print(std::ostream &os) const;

    /** Render to a string (convenience for tests). */
    std::string toString() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

} // namespace jitsched

#endif // JITSCHED_SUPPORT_TABLE_HH
