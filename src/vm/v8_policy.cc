#include "vm/v8_policy.hh"

namespace jitsched {

namespace {

class V8PolicyImpl
{
  public:
    V8PolicyImpl(const Workload &w, std::uint64_t trigger)
        : w_(w), trigger_(trigger)
    {
    }

    Level
    firstLevel(FuncId) const
    {
        return 0;
    }

    void
    onInvocation(FuncId f, std::uint64_t nth, Tick now, Requester &req)
    {
        if (nth == trigger_) {
            const Level high = w_.function(f).highestLevel();
            if (high > 0)
                req.request(f, high, now);
        }
    }

    void
    onSample(FuncId, Tick, Requester &)
    {
    }

  private:
    const Workload &w_;
    std::uint64_t trigger_;
};

} // anonymous namespace

RuntimeResult
runV8(const Workload &w, const V8Config &cfg)
{
    V8PolicyImpl policy(w, cfg.recompileOnInvocation);
    OnlineConfig ecfg;
    ecfg.compileCores = cfg.compileCores;
    ecfg.samplePeriod = 0; // the V8 scheme does not sample
    return runOnline(w, ecfg, policy);
}

} // namespace jitsched
