/**
 * @file
 * Discrete-event engine for *online* compilation policies.
 *
 * Unlike the static make-span simulator, online schedulers (the Jikes
 * RVM adaptive system, the V8 scheme) discover work while the program
 * runs: requests are enqueued at first encounters, at invocation
 * counts, or at sampling ticks, and the compilation thread(s) serve
 * the queue.  This engine interleaves a single execution thread with
 * the compile queue and timer-based sampling, and reports both the
 * resulting make-span and the compilation schedule that was actually
 * dispatched.
 *
 * The queue discipline is pluggable (vm/compile_manager.hh): strict
 * FIFO reproduces Jikes; FirstCompileFirst implements the paper's
 * Sec. 7 insight that first-time compilations should outrank
 * recompilations of other methods.
 *
 * Policy concept (duck-typed):
 *
 *   Level firstLevel(FuncId f);
 *     level to request when f is first encountered
 *   void onInvocation(FuncId f, std::uint64_t nth_call, Tick now,
 *                     Requester &req);
 *     called when an invocation of f is about to run (nth_call >= 1)
 *   void onSample(FuncId f, Tick now, Requester &req);
 *     called when the sampler catches f on the (simulated) stack
 */

#ifndef JITSCHED_VM_ONLINE_ENGINE_HH
#define JITSCHED_VM_ONLINE_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/schedule.hh"
#include "sim/makespan.hh"
#include "support/logging.hh"
#include "support/types.hh"
#include "trace/workload.hh"
#include "vm/compile_manager.hh"

namespace jitsched {

/** What an online policy run produces. */
struct RuntimeResult
{
    /** Timing results, same shape as the static simulator's. */
    SimResult sim;

    /**
     * The compile events in the order the compiler thread(s)
     * actually processed them — the schedule the policy induced.
     */
    Schedule inducedSchedule;

    /** Sampling ticks that hit a running function. */
    std::uint64_t samples = 0;

    /** Recompilation requests issued (beyond first encounters). */
    std::uint64_t recompiles = 0;
};

/** Engine-level knobs shared by all online policies. */
struct OnlineConfig
{
    /** Number of compilation cores (threads). */
    std::size_t compileCores = 1;

    /**
     * Sampling period of the timer-based profiler; 0 disables
     * sampling (the V8 scheme does not sample).
     */
    Tick samplePeriod = 0;

    /** Queue discipline of the compilation queue. */
    QueueDiscipline discipline = QueueDiscipline::Fifo;
};

/**
 * Interface handed to policies for enqueueing compile requests.
 * Requests at or below the function's last requested level are
 * ignored (the adaptive system never downgrades).
 */
class Requester
{
  public:
    Requester(const Workload &w, CompileManager &mgr,
              std::vector<int> &last_requested)
        : w_(w), mgr_(mgr), last_requested_(last_requested)
    {
    }

    /**
     * Enqueue a compile request.
     * @return true if the request was accepted.
     */
    bool
    request(FuncId f, Level level, Tick now)
    {
        if (static_cast<int>(level) <= last_requested_[f])
            return false;
        const bool first_compile = last_requested_[f] < 0;
        mgr_.submit(f, level, w_.function(f).compileTime(level), now,
                    first_compile);
        last_requested_[f] = static_cast<int>(level);
        return true;
    }

    /** Last level requested for f, or -1 if none. */
    int
    lastRequestedLevel(FuncId f) const
    {
        return last_requested_[f];
    }

  private:
    const Workload &w_;
    CompileManager &mgr_;
    std::vector<int> &last_requested_;
};

/**
 * Run an online policy over a workload.
 *
 * Semantics:
 *  - at the arrival of a call to a never-seen function, the policy's
 *    firstLevel() request is enqueued;
 *  - the call waits (bubble) until some version has been compiled;
 *  - the call runs the deepest version completed at or before its
 *    start;
 *  - while a call runs, sampling ticks (every samplePeriod, absolute
 *    times) hit the running function and invoke onSample(); ticks
 *    that land in bubbles hit no function (the thread is blocked in
 *    the VM, not in application code);
 *  - make-span is the end of the last call.
 */
template <typename Policy>
RuntimeResult
runOnline(const Workload &w, const OnlineConfig &cfg, Policy &policy)
{
    RuntimeResult out;
    out.sim.callsAtLevel.assign(w.maxLevels(), 0);

    CompileManager mgr(w.numFunctions(), cfg.compileCores,
                       cfg.discipline);
    std::vector<int> last_requested(w.numFunctions(), -1);
    std::vector<std::uint64_t> n_calls(w.numFunctions(), 0);

    Requester req(w, mgr, last_requested);

    Tick now = 0;
    Tick next_sample =
        cfg.samplePeriod > 0 ? cfg.samplePeriod : maxTick;

    const std::size_t first_encounters = w.numCalledFunctions();

    for (const FuncId f : w.calls()) {
        if (last_requested[f] < 0)
            req.request(f, policy.firstLevel(f), now);

        policy.onInvocation(f, ++n_calls[f], now, req);

        const Tick first_ready = mgr.firstReady(f);
        const Tick start = std::max(now, first_ready);
        if (start > now) {
            out.sim.totalBubble += start - now;
            ++out.sim.bubbleCount;
            // Sampling ticks inside the bubble hit no function.
            while (next_sample <= start)
                next_sample += cfg.samplePeriod;
        }

        const int lvl = mgr.versionAt(f, start);
        if (lvl < 0)
            JITSCHED_PANIC("runOnline: no version ready at start");
        const Level level = static_cast<Level>(lvl);
        const Tick dur = w.function(f).execTime(level);
        const Tick end = start + dur;

        // Sampling ticks that land while this call runs.
        while (next_sample <= end) {
            ++out.samples;
            policy.onSample(f, next_sample, req);
            next_sample += cfg.samplePeriod;
        }

        now = end;
        out.sim.totalExec += dur;
        ++out.sim.callsAtLevel[level];
    }

    out.sim.execEnd = now;
    out.sim.makespan = now;
    out.sim.compileEnd = mgr.drain();
    out.sim.totalCompile = mgr.busyTime();

    for (const auto &[func, level] : mgr.dispatchOrder())
        out.inducedSchedule.append(func, level);
    out.recompiles = mgr.jobCount() >= first_encounters
                         ? mgr.jobCount() - first_encounters
                         : 0;
    return out;
}

} // namespace jitsched

#endif // JITSCHED_VM_ONLINE_ENGINE_HH
