#include "vm/compile_manager.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

CompileManager::CompileManager(std::size_t num_funcs,
                               std::size_t num_cores,
                               QueueDiscipline discipline)
    : discipline_(discipline), versions_(num_funcs)
{
    if (num_cores == 0)
        JITSCHED_PANIC("CompileManager needs at least one core");
    cores_.assign(num_cores, 0);
}

void
CompileManager::submit(FuncId f, Level level, Tick duration,
                       Tick arrival, bool first_compile)
{
    if (f >= versions_.size())
        JITSCHED_PANIC("CompileManager::submit: bad function ", f);
    if (arrival < last_arrival_)
        JITSCHED_PANIC("CompileManager: arrivals must be "
                       "non-decreasing (got ", arrival, " after ",
                       last_arrival_, ")");
    if (duration < 0)
        JITSCHED_PANIC("CompileManager: negative duration");
    last_arrival_ = arrival;

    const std::size_t cls =
        discipline_ == QueueDiscipline::FirstCompileFirst &&
                !first_compile
            ? 1
            : 0;
    pending_[cls].push_back({f, level, duration, arrival});
    ++submitted_;
}

bool
CompileManager::dispatchOne(Tick horizon)
{
    if (pending_[0].empty() && pending_[1].empty())
        return false;

    // The next dispatch happens when a core is free AND some job has
    // arrived: at max(earliest core free, earliest pending arrival).
    auto core = std::min_element(cores_.begin(), cores_.end());
    Tick earliest_arrival = maxTick;
    for (const auto &q : pending_) {
        if (!q.empty())
            earliest_arrival =
                std::min(earliest_arrival, q.front().arrival);
    }
    const Tick start = std::max(*core, earliest_arrival);
    if (start > horizon)
        return false;

    // Among jobs that have arrived by `start`, class 0 wins; within
    // a class, arrival order (the deques are arrival-sorted).
    std::deque<Job> *queue = nullptr;
    for (auto &q : pending_) {
        if (!q.empty() && q.front().arrival <= start) {
            queue = &q;
            break;
        }
    }
    if (queue == nullptr)
        JITSCHED_PANIC("CompileManager: dispatch logic error");

    const Job job = queue->front();
    queue->pop_front();
    const Tick completion = start + job.duration;
    *core = completion;
    busy_ += job.duration;

    auto &vers = versions_[job.func];
    const Version v{completion, job.level};
    vers.insert(std::upper_bound(vers.begin(), vers.end(), v,
                                 [](const Version &a,
                                    const Version &b) {
                                     return a.completion <
                                            b.completion;
                                 }),
                v);
    dispatch_order_.emplace_back(job.func, job.level);
    return true;
}

void
CompileManager::dispatchUntil(Tick horizon)
{
    while (dispatchOne(horizon)) {
    }
}

Tick
CompileManager::firstReady(FuncId f)
{
    if (f >= versions_.size())
        JITSCHED_PANIC("CompileManager::firstReady: bad function ",
                       f);
    // Dispatch forward until f has a version.  While the execution
    // thread is blocked on f, no new requests can arrive, so future
    // dispatch decisions here are final.
    while (versions_[f].empty()) {
        if (!dispatchOne(maxTick))
            JITSCHED_PANIC("CompileManager::firstReady: function ",
                           f, " was never requested");
    }
    Tick earliest = versions_[f].front().completion;
    for (const auto &v : versions_[f])
        earliest = std::min(earliest, v.completion);
    return earliest;
}

int
CompileManager::versionAt(FuncId f, Tick t)
{
    if (f >= versions_.size())
        JITSCHED_PANIC("CompileManager::versionAt: bad function ",
                       f);
    // Any job that could complete by t must start by t.
    dispatchUntil(t);
    int best = -1;
    for (const auto &v : versions_[f]) {
        if (v.completion <= t)
            best = std::max(best, static_cast<int>(v.level));
    }
    return best;
}

Tick
CompileManager::drain()
{
    dispatchUntil(maxTick);
    Tick done = 0;
    for (const Tick t : cores_)
        done = std::max(done, t);
    return done;
}

} // namespace jitsched
