/**
 * @file
 * The Jikes RVM adaptive compilation scheme (Sec. 2, Sec. 6.2.1) —
 * the paper's primary "default" baseline.
 *
 * Behaviour reproduced:
 *  - At the first invocation of a function, a request to compile it
 *    at the lowest level is enqueued.
 *  - A timer-based sampler observes the running function.  After a
 *    sample of function f (k samples seen so far), the system
 *    evaluates recompilation: let l be the level of the last
 *    compilation of f, and m the level minimizing the modeled cost
 *    e_j * k + c_j over levels j > l.  If e_m * k + c_m < e_l * k,
 *    a request to recompile f at level m is enqueued.
 *  - Requests are served FIFO by the compilation thread(s).
 *
 * The e_j / c_j in the test come from a cost-benefit model
 * (vm/cost_benefit.hh): the default estimator for Fig. 5, the oracle
 * for Fig. 6.
 */

#ifndef JITSCHED_VM_ADAPTIVE_RUNTIME_HH
#define JITSCHED_VM_ADAPTIVE_RUNTIME_HH

#include "core/candidate_levels.hh"
#include "vm/online_engine.hh"

namespace jitsched {

/** Knobs of the adaptive (Jikes-style) runtime. */
struct AdaptiveConfig
{
    /** Number of compilation cores. */
    std::size_t compileCores = 1;

    /**
     * Sampling period.  Pick relative to the workload duration; the
     * helper defaultSamplePeriod() mimics a ~1 kHz OS timer scaled to
     * the trace.
     */
    Tick samplePeriod = ticksPerMs;

    /**
     * Queue discipline.  Fifo is what Jikes does;
     * FirstCompileFirst applies the paper's Sec. 7 insight.
     */
    QueueDiscipline discipline = QueueDiscipline::Fifo;
};

/**
 * A sampling period matched to the workload: roughly the mean call
 * duration, so a sample count approximates an invocation count (see
 * the note in the implementation).
 */
Tick defaultSamplePeriod(const Workload &w);

/**
 * Run the Jikes adaptive scheme.
 *
 * @param w workload
 * @param est the cost-benefit model's view of the times, used in the
 *            recompilation test
 * @param cfg engine knobs
 */
RuntimeResult runAdaptive(const Workload &w, const TimeEstimates &est,
                          const AdaptiveConfig &cfg);

} // namespace jitsched

#endif // JITSCHED_VM_ADAPTIVE_RUNTIME_HH
