#include "vm/cost_benefit.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace jitsched {

TimeEstimates
buildEstimates(const Workload &w, const CostBenefitConfig &cfg)
{
    if (cfg.kind == ModelKind::Oracle)
        return oracleEstimates(w);

    Rng rng(cfg.seed);
    TimeEstimates est;
    est.perFunc.resize(w.numFunctions());

    // Offline-trained compile rates: configured, or fitted from the
    // workload the way Jikes calibrates its model at install time.
    std::vector<double> rates = cfg.compileNsPerByte;
    if (rates.empty()) {
        const std::size_t nl_max = w.maxLevels();
        std::vector<double> time_sum(nl_max, 0.0);
        double size_sum = 0.0;
        for (std::size_t i = 0; i < w.numFunctions(); ++i) {
            const auto &prof = w.function(static_cast<FuncId>(i));
            size_sum += static_cast<double>(prof.size());
            for (std::size_t j = 0; j < prof.numLevels(); ++j)
                time_sum[j] += static_cast<double>(
                    prof.compileTime(static_cast<Level>(j)));
        }
        rates.resize(nl_max);
        for (std::size_t j = 0; j < nl_max; ++j)
            rates[j] = size_sum > 0.0 ? time_sum[j] / size_sum : 0.0;
    }
    for (double &r : rates)
        r *= cfg.compileRateBias;

    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &prof = w.function(static_cast<FuncId>(i));
        const std::size_t nl = prof.numLevels();
        if (rates.size() < nl || cfg.assumedSpeedup.size() < nl)
            JITSCHED_FATAL("cost-benefit model configured for fewer "
                           "levels (", rates.size(),
                           ") than function '", prof.name(), "' has (",
                           nl, ")");

        auto &levels = est.perFunc[i];
        levels.resize(nl);

        // The model can observe the function's level-0 behaviour (the
        // sampler sees it run) but projects deeper levels with global
        // constants — the paper's "rough static estimation".
        const double e0 = static_cast<double>(prof.execTime(0));
        const double size = static_cast<double>(prof.size());

        for (std::size_t j = 0; j < nl; ++j) {
            double c = size * rates[j];
            double e = e0 / cfg.assumedSpeedup[j];
            if (cfg.noiseSigma > 0.0) {
                c *= rng.nextLogNormal(0.0, cfg.noiseSigma);
                e *= rng.nextLogNormal(0.0, cfg.noiseSigma);
            }
            levels[j].compile =
                static_cast<Tick>(std::llround(std::max(0.0, c)));
            levels[j].exec = static_cast<Tick>(
                std::llround(std::max(1.0, e)));
        }

        // Re-impose the paper's monotonicity so estimates stay a
        // legal cost table even under noise.
        for (std::size_t j = 1; j < nl; ++j) {
            levels[j].compile =
                std::max(levels[j].compile, levels[j - 1].compile);
            levels[j].exec =
                std::min(levels[j].exec, levels[j - 1].exec);
        }
    }
    return est;
}

TimeEstimates
buildOracleEstimates(const Workload &w)
{
    CostBenefitConfig cfg;
    cfg.kind = ModelKind::Oracle;
    return buildEstimates(w, cfg);
}

TimeEstimates
buildDefaultEstimates(const Workload &w)
{
    return buildEstimates(w, CostBenefitConfig{});
}

std::vector<double>
modelCallCounts(const Workload &w, const CostBenefitConfig &cfg)
{
    const double factor =
        cfg.kind == ModelKind::Oracle ? 1.0 : cfg.hotnessDiscount;
    std::vector<double> counts(w.numFunctions());
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        counts[f] =
            factor *
            static_cast<double>(w.callCount(static_cast<FuncId>(f)));
    return counts;
}

std::vector<CandidatePair>
modelCandidateLevels(const Workload &w, const CostBenefitConfig &cfg)
{
    return chooseCandidateLevels(buildEstimates(w, cfg),
                                 modelCallCounts(w, cfg));
}

} // namespace jitsched
