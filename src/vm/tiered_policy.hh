/**
 * @file
 * HotSpot-style tiered compilation policy.
 *
 * A third industrial baseline beyond the paper's two (Jikes, V8):
 * modern HotSpot promotes a method through compilation tiers when
 * its invocation counter crosses fixed thresholds — no timer
 * sampling, no cost-benefit model, just counters.  Including it lets
 * the benchmark suite compare the whole family of deployed
 * scheduling schemes against the IAR limit.
 */

#ifndef JITSCHED_VM_TIERED_POLICY_HH
#define JITSCHED_VM_TIERED_POLICY_HH

#include <cstdint>
#include <vector>

#include "vm/online_engine.hh"

namespace jitsched {

/** Knobs of the tiered runtime. */
struct TieredConfig
{
    /** Number of compilation cores. */
    std::size_t compileCores = 1;

    /**
     * Invocation counts at which a function is promoted to level
     * 1, 2, ... (level 0 compiles at first encounter).  Defaults
     * scale like HotSpot's Tier2/Tier3/Tier4 thresholds.
     */
    std::vector<std::uint64_t> promoteAt = {200, 2000, 15000};

    /** Queue discipline of the compile queue. */
    QueueDiscipline discipline = QueueDiscipline::Fifo;
};

/** Run the tiered scheme on a workload. */
RuntimeResult runTiered(const Workload &w,
                        const TieredConfig &cfg = {});

} // namespace jitsched

#endif // JITSCHED_VM_TIERED_POLICY_HH
