#include "vm/tiered_policy.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

namespace {

class TieredPolicyImpl
{
  public:
    TieredPolicyImpl(const Workload &w,
                     const std::vector<std::uint64_t> &promote_at)
        : w_(w), promote_at_(promote_at)
    {
    }

    Level
    firstLevel(FuncId) const
    {
        return 0;
    }

    void
    onInvocation(FuncId f, std::uint64_t nth, Tick now,
                 Requester &req)
    {
        // Promote one tier per crossed threshold; the requester
        // ignores levels at or below the last requested one, so a
        // function that skips thresholds jumps straight to the
        // deepest crossed tier.
        const auto max_level = w_.function(f).highestLevel();
        for (std::size_t i = promote_at_.size(); i-- > 0;) {
            if (nth >= promote_at_[i]) {
                const auto target = static_cast<Level>(
                    std::min<std::size_t>(i + 1, max_level));
                req.request(f, target, now);
                break;
            }
        }
    }

    void
    onSample(FuncId, Tick, Requester &)
    {
    }

  private:
    const Workload &w_;
    const std::vector<std::uint64_t> &promote_at_;
};

} // anonymous namespace

RuntimeResult
runTiered(const Workload &w, const TieredConfig &cfg)
{
    for (std::size_t i = 1; i < cfg.promoteAt.size(); ++i) {
        if (cfg.promoteAt[i] <= cfg.promoteAt[i - 1])
            JITSCHED_FATAL("runTiered: promoteAt thresholds must "
                           "strictly increase");
    }
    TieredPolicyImpl policy(w, cfg.promoteAt);
    OnlineConfig ecfg;
    ecfg.compileCores = cfg.compileCores;
    ecfg.samplePeriod = 0; // counter-driven, no sampling
    ecfg.discipline = cfg.discipline;
    return runOnline(w, ecfg, policy);
}

} // namespace jitsched
