/**
 * @file
 * Cost-benefit models (Sec. 2, Sec. 6.2.2).
 *
 * Adaptive VMs pick compilation levels with a cost-benefit model that
 * *estimates* per-level compile and execution times.  Jikes RVM
 * estimates them "through some simple linear functions of the size of
 * the function" with offline-trained parameters (Sec. 8) — and the
 * paper stresses that such static estimates are rough, because real
 * per-function speedups vary.
 *
 * We reproduce both model flavors of the study:
 *  - Default: compile time linear in code size per level; execution
 *    time projected from the function's level-0 time with *global*
 *    assumed per-level speedups.  Per-function speedup variation thus
 *    becomes estimation error, exactly the error mode the paper
 *    describes.  An optional multiplicative noise knob serves the
 *    estimation-error ablation.
 *  - Oracle: the measured times themselves (Sec. 6.2.2).
 */

#ifndef JITSCHED_VM_COST_BENEFIT_HH
#define JITSCHED_VM_COST_BENEFIT_HH

#include <cstdint>
#include <vector>

#include "core/candidate_levels.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Which model flavor to build. */
enum class ModelKind
{
    Default, ///< size-linear compile, global-speedup execution
    Oracle   ///< true measured times
};

/** Parameters of the default model. */
struct CostBenefitConfig
{
    ModelKind kind = ModelKind::Default;

    /**
     * Assumed compile cost per size unit at each level (ns/byte).
     * Jikes trains these constants offline during installation; an
     * empty vector (the default) reproduces that training by fitting
     * rate_j = sum(c_true(:,j)) / sum(size) over the workload, so the
     * model's compile estimates miss only per-function jitter.
     * Non-empty overrides the fit (ablation knob).
     */
    std::vector<double> compileNsPerByte = {};

    /**
     * Assumed global execution speedup of each level over level 0.
     * Matches the generator's true per-level means; what the model
     * cannot see is the per-function variation around those means,
     * which is precisely the estimation roughness Sec. 8 describes.
     */
    std::vector<double> assumedSpeedup = {1.0, 3.15, 4.5, 6.0};

    /**
     * Multiplier the default model applies to its fitted compile
     * rates.  Jikes's model is conservative about recompilation (a
     * queued optimizing compile also delays every later request, so
     * its effective cost exceeds its own duration); the bias makes
     * the model under-select deep levels relative to the oracle,
     * which reproduces the paper's observation that the lower bound
     * *drops* under the oracle model (Sec. 6.2.2).  1.0 = unbiased.
     */
    double compileRateBias = 1.4;

    /**
     * Fraction of a function's eventual call count the model's
     * hotness predictor credits it with.  The real adaptive system
     * assumes "a hot method in the past will remain hot in the
     * future" and therefore works with the calls seen *so far* — a
     * systematic underestimate of the total.  The default of 1.0
     * keeps the model's *final* level choices consistent with the
     * levels the adaptive runtime converges to (its recompilation
     * test uses the same cost function with a growing sample count),
     * which in turn keeps every scheme at or above the candidate
     * lower bound.  Lower values are an ablation knob.
     */
    double hotnessDiscount = 1.0;

    /**
     * Extra multiplicative log-normal noise applied to every
     * estimate (0 = none).  Knob for the estimation-error ablation.
     */
    double noiseSigma = 0.0;

    /** Seed for the noise draws. */
    std::uint64_t seed = 97;
};

/**
 * Produce a model's view of the per-function, per-level times.
 *
 * The estimates keep the monotonicity invariants (clamped after noise)
 * so downstream algorithms can rely on them.
 */
TimeEstimates buildEstimates(const Workload &w,
                             const CostBenefitConfig &cfg);

/** Convenience: estimates for the oracle model. */
TimeEstimates buildOracleEstimates(const Workload &w);

/** Convenience: estimates for the default model with defaults. */
TimeEstimates buildDefaultEstimates(const Workload &w);

/**
 * The model's view of per-function call counts: true counts for the
 * oracle, hotness-discounted counts for the default model.
 */
std::vector<double> modelCallCounts(const Workload &w,
                                    const CostBenefitConfig &cfg);

/**
 * Candidate levels as the given model would choose them: its time
 * estimates combined with its hotness view.
 */
std::vector<CandidatePair> modelCandidateLevels(
    const Workload &w, const CostBenefitConfig &cfg);

} // namespace jitsched

#endif // JITSCHED_VM_COST_BENEFIT_HH
