#include "vm/adaptive_runtime.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

namespace {

/**
 * Policy object implementing the Sec. 6.2.1 recompilation test:
 * recompile f at the level m minimizing e_m * k + c_m when that
 * beats e_l * k, with k the sample count.  As in the real Jikes AOS,
 * e_j * k is a *time* projection — each sample represents one
 * sampling period spent in the function, so e_j here is the
 * per-sample time at level j: period scaled by the modeled speedup
 * of level j over the current level l ("a hot method in the past
 * will remain hot in the future").
 */
class JikesPolicy
{
  public:
    JikesPolicy(const Workload &w, const TimeEstimates &est,
                Tick sample_period)
        : w_(w), est_(est), period_(sample_period),
          sample_count_(w.numFunctions(), 0)
    {
    }

    Level
    firstLevel(FuncId) const
    {
        return 0;
    }

    void
    onInvocation(FuncId, std::uint64_t, Tick, Requester &)
    {
    }

    void
    onSample(FuncId f, Tick now, Requester &req)
    {
        const std::uint64_t k = ++sample_count_[f];
        const int l = req.lastRequestedLevel(f);
        if (l < 0)
            return; // cannot happen: running implies requested
        const auto &levels = est_.perFunc[f];
        const auto last = static_cast<std::size_t>(l);
        if (last + 1 >= levels.size())
            return; // already at the top

        // Projected future time at the current level: as long as the
        // function has already run.
        const double t_l = static_cast<double>(k) *
                           static_cast<double>(period_);
        const double e_l = static_cast<double>(levels[last].exec);
        if (e_l <= 0.0)
            return;

        // m = argmin over j > l of e_j * k + c_j, with e_j * k
        // realized as t_l scaled by the modeled speedup of j over l.
        std::size_t m = last + 1;
        double best = cost(levels[m], t_l, e_l);
        for (std::size_t j = last + 2; j < levels.size(); ++j) {
            const double c = cost(levels[j], t_l, e_l);
            if (c < best) {
                best = c;
                m = j;
            }
        }

        // Recompile when the projected cost beats staying at l.
        if (best < t_l)
            req.request(f, static_cast<Level>(m), now);
    }

  private:
    double
    cost(const LevelCosts &lc, double t_l, double e_l) const
    {
        const double future =
            t_l * (static_cast<double>(lc.exec) / e_l);
        return future + static_cast<double>(lc.compile);
    }

    const Workload &w_;
    const TimeEstimates &est_;
    Tick period_;
    std::vector<std::uint64_t> sample_count_;
};

} // anonymous namespace

Tick
defaultSamplePeriod(const Workload &w)
{
    // Jikes samples on a timer, not per call: the paper's runs see
    // hundreds to a few thousand samples per warmup run (a
    // ~100 Hz-1 kHz sampler over a 1.5-30 s execution).  Scale the period with the
    // workload so scaled-down traces keep the same sampling density;
    // ~600 samples per run lands in the Jikes regime.
    if (w.numCalls() == 0)
        return ticksPerMs;
    const Tick total = w.totalExecAtLevel(0);
    const Tick period = total / 600;
    return std::max<Tick>(period, 1);
}

RuntimeResult
runAdaptive(const Workload &w, const TimeEstimates &est,
            const AdaptiveConfig &cfg)
{
    if (est.perFunc.size() != w.numFunctions())
        JITSCHED_PANIC("runAdaptive: estimate table has ",
                       est.perFunc.size(), " functions, workload has ",
                       w.numFunctions());
    JikesPolicy policy(w, est, cfg.samplePeriod);
    OnlineConfig ecfg;
    ecfg.compileCores = cfg.compileCores;
    ecfg.samplePeriod = cfg.samplePeriod;
    ecfg.discipline = cfg.discipline;
    return runOnline(w, ecfg, policy);
}

} // namespace jitsched
