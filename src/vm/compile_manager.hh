/**
 * @file
 * Compile-queue manager for online policies, with pluggable queue
 * discipline.
 *
 * The paper's Sec. 7 derives an actionable insight from the IAR
 * results: "the first-time compilation of a method should generally
 * get a higher priority than recompilations of other methods."  A
 * FIFO queue (what Jikes uses) cannot express that; this manager
 * implements both disciplines so the insight can be evaluated as a
 * drop-in change to the adaptive runtime:
 *
 *  - Fifo: requests served strictly in arrival order (the eager
 *    CompileQueue semantics, reproduced exactly);
 *  - FirstCompileFirst: when a compiler core frees up, pending
 *    first-time compilations are served before pending
 *    recompilations; arrival order within each class.
 *
 * Dispatch is lazy: a job's start is decided when a core picks it,
 * so higher-priority work arriving while a job waits can overtake
 * it.  Jobs already started are never preempted.
 */

#ifndef JITSCHED_VM_COMPILE_MANAGER_HH
#define JITSCHED_VM_COMPILE_MANAGER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** How the compilation queue orders pending work. */
enum class QueueDiscipline
{
    Fifo,             ///< strict arrival order (Jikes default)
    FirstCompileFirst ///< first-time compiles overtake recompiles
};

/**
 * Lazy-dispatch multi-core compile queue with per-function version
 * tracking.
 */
class CompileManager
{
  public:
    CompileManager(std::size_t num_funcs, std::size_t num_cores,
                   QueueDiscipline discipline);

    /**
     * Enqueue a compile request.
     * @param first_compile true when this is the function's
     *        first-time compilation (priority class under the
     *        FirstCompileFirst discipline)
     * @note arrivals must be non-decreasing (panics otherwise).
     */
    void submit(FuncId f, Level level, Tick duration, Tick arrival,
                bool first_compile);

    /**
     * Completion time of the function's first compiled version;
     * dispatches forward as needed.  Panics if no request for f was
     * ever submitted.
     */
    Tick firstReady(FuncId f);

    /**
     * Deepest version of f completed at or before time t (dispatches
     * work that must start by t first).
     * @return the level, or -1 when nothing is ready by t.
     */
    int versionAt(FuncId f, Tick t);

    /** Dispatch everything and return the last completion time. */
    Tick drain();

    /** Total busy time across cores (valid after drain()). */
    Tick busyTime() const { return busy_; }

    /** Number of requests submitted. */
    std::size_t jobCount() const { return submitted_; }

    /**
     * The dispatch order realized so far, as (func, level) pairs —
     * the induced compilation schedule.  Call drain() first for the
     * complete sequence.
     */
    const std::vector<std::pair<FuncId, Level>> &
    dispatchOrder() const
    {
        return dispatch_order_;
    }

  private:
    struct Job
    {
        FuncId func;
        Level level;
        Tick duration;
        Tick arrival;
    };

    /** One completed (or in-flight) version of a function. */
    struct Version
    {
        Tick completion;
        Level level;
    };

    /** Dispatch pending jobs whose start moment is <= horizon. */
    void dispatchUntil(Tick horizon);

    /** Dispatch exactly one job if any is pending; false if none. */
    bool dispatchOne(Tick horizon);

    QueueDiscipline discipline_;
    std::vector<Tick> cores_;

    // Pending queues: index 0 = first-time compiles, 1 = recompiles.
    // The Fifo discipline uses queue 0 for everything.
    std::deque<Job> pending_[2];

    std::vector<std::vector<Version>> versions_;
    std::vector<std::pair<FuncId, Level>> dispatch_order_;

    Tick last_arrival_ = 0;
    Tick busy_ = 0;
    std::size_t submitted_ = 0;
};

} // namespace jitsched

#endif // JITSCHED_VM_COMPILE_MANAGER_HH
