/**
 * @file
 * The V8 compilation scheduling scheme (Sec. 6.2.4).
 *
 * V8 (as studied in the paper) has two optimization levels: a
 * function is compiled at the low level at its first encounter and
 * recompiled at the high level at its second invocation.  The paper
 * applies this *scheme* to the Java call sequences, using the two
 * lowest Jikes levels as V8's low/high; callers typically pass a
 * workload restricted with Workload::restrictLevels(2).
 */

#ifndef JITSCHED_VM_V8_POLICY_HH
#define JITSCHED_VM_V8_POLICY_HH

#include "vm/online_engine.hh"

namespace jitsched {

/** Knobs of the V8-scheme runtime. */
struct V8Config
{
    /** Number of compilation cores. */
    std::size_t compileCores = 1;

    /** Which invocation triggers the high-level recompile. */
    std::uint64_t recompileOnInvocation = 2;
};

/**
 * Run the V8 scheme on a workload.  The low level is 0; the high
 * level is each function's highest available level (restrict the
 * workload to two levels to match the paper's setup).
 */
RuntimeResult runV8(const Workload &w, const V8Config &cfg = {});

} // namespace jitsched

#endif // JITSCHED_VM_V8_POLICY_HH
