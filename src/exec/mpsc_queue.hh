/**
 * @file
 * A multi-producer single-consumer lock-free queue (Vyukov's
 * intrusive design, non-intrusive here: nodes are heap-allocated per
 * push).  Used as the per-worker inbox of the hash-distributed A*
 * (core/astar_par.cc): any worker pushes, only the owner pops.
 *
 * Progress: push() is wait-free apart from the allocator; pop() is
 * lock-free.  A push is visible to pop() once the producer's
 * release-store of `next` lands; a pop that races with a half-linked
 * push simply returns false and the consumer retries on its next
 * sweep — the parallel search never relies on queue emptiness for
 * termination (it keeps an external live-node count), so the
 * transient "empty" answer is harmless.
 *
 * depth() is a relaxed approximation for metrics (inbox high-water
 * marks), never for control flow.
 */

#ifndef JITSCHED_EXEC_MPSC_QUEUE_HH
#define JITSCHED_EXEC_MPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace jitsched {

template <typename T>
class MpscQueue
{
  public:
    MpscQueue()
    {
        auto *stub = new QNode();
        head_.store(stub, std::memory_order_relaxed);
        tail_ = stub;
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    ~MpscQueue()
    {
        // Single-threaded by the time we get here: drain and free.
        QNode *n = tail_;
        while (n != nullptr) {
            QNode *next = n->next.load(std::memory_order_relaxed);
            delete n;
            n = next;
        }
    }

    /** Enqueue (any thread). */
    void
    push(T value)
    {
        auto *n = new QNode(std::move(value));
        // Publish the node as the new head, then link the previous
        // head to it.  Between the exchange and the store the chain
        // is briefly broken; the consumer sees next == nullptr and
        // stops the sweep there — it can never skip past the gap.
        QNode *prev = head_.exchange(n, std::memory_order_acq_rel);
        prev->next.store(n, std::memory_order_release);
        depth_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Dequeue (owner thread only).  Returns false when the queue is
     * empty or the front push is not fully linked yet.
     */
    bool
    pop(T &out)
    {
        QNode *tail = tail_;
        QNode *next = tail->next.load(std::memory_order_acquire);
        if (next == nullptr)
            return false;
        out = std::move(next->value);
        tail_ = next;
        delete tail;
        depth_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }

    /** Approximate depth, metrics only. */
    std::size_t
    depth() const
    {
        const std::int64_t d = depth_.load(std::memory_order_relaxed);
        return d > 0 ? static_cast<std::size_t>(d) : 0;
    }

  private:
    struct QNode
    {
        QNode() = default;
        explicit QNode(T v) : value(std::move(v)) {}

        std::atomic<QNode *> next{nullptr};
        T value{};
    };

    /** Producer end (last pushed node). */
    std::atomic<QNode *> head_;

    /** Consumer end (stub / last popped node). */
    QNode *tail_;

    std::atomic<std::int64_t> depth_{0};
};

} // namespace jitsched

#endif // JITSCHED_EXEC_MPSC_QUEUE_HH
