#include "exec/batch_eval.hh"

#include <chrono>
#include <unordered_map>

#include "obs/instruments.hh"
#include "support/logging.hh"

namespace {

/** Time one simulate() into the batch histogram (volatile metric —
 * never feeds results, so determinism is untouched). */
jitsched::SimResult
timedSimulate(const jitsched::Workload &w,
              const jitsched::Schedule &s,
              const jitsched::SimOptions &opts)
{
#ifndef JITSCHED_OBS_DISABLED
    // Branch on the runtime switch before touching the clock so a
    // disabled registry costs one relaxed load, not two syscalls.
    if (jitsched::obs::MetricsRegistry::enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        jitsched::SimResult result = jitsched::simulate(w, s, opts);
        jitsched::obs::ExecMetrics::get().batchSimNs.observe(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return result;
    }
#endif
    return jitsched::simulate(w, s, opts);
}

} // anonymous namespace

namespace jitsched {

std::vector<SimResult>
BatchEvaluator::evaluate(const std::vector<EvalJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;
    JITSCHED_OBS(obs::ExecMetrics::get().batchJobs.add(jobs.size()));

    // Phase 1 (sequential, job order): fingerprint every job, probe
    // the cache, and deduplicate within the batch.  `compute` holds
    // the indices that actually need a simulate(); `alias[i]` points
    // a duplicate job at the batch index that computes its result.
    // Workload fingerprints are memoized per object within the call —
    // batches typically reference a handful of workloads many times.
    std::vector<EvalKey> keys(jobs.size());
    std::vector<std::size_t> compute;
    std::vector<std::int64_t> alias(jobs.size(), -1);
    std::unordered_map<const Workload *, std::uint64_t> wl_fp;
    struct KeyHash
    {
        std::size_t
        operator()(const EvalKey &k) const
        {
            return static_cast<std::size_t>(
                k.workload ^ (k.schedule * 0x9e3779b97f4a7c15ull) ^
                (k.options << 1));
        }
    };
    std::unordered_map<EvalKey, std::size_t, KeyHash> first_index;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const EvalJob &job = jobs[i];
        if (job.workload == nullptr)
            JITSCHED_PANIC("BatchEvaluator: job ", i,
                           " has no workload");
        auto fp = wl_fp.find(job.workload);
        if (fp == wl_fp.end())
            fp = wl_fp.emplace(job.workload,
                               hashWorkload(*job.workload))
                     .first;
        keys[i] = EvalKey{fp->second, hashSchedule(job.schedule),
                          hashSimOptions(job.opts)};

        if (cache_ != nullptr) {
            if (const auto cached = cache_->lookup(keys[i],
                                                   counters_)) {
                results[i] = *cached;
                continue;
            }
        }
        const auto [it, fresh] = first_index.emplace(keys[i], i);
        if (fresh)
            compute.push_back(i);
        else
            alias[i] = static_cast<std::int64_t>(it->second);
    }

    // Phase 2 (parallel): run the outstanding simulations as one
    // bulk submission.  Each task writes only its own slot, so
    // results are independent of the pool's concurrency.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(compute.size());
    for (const std::size_t i : compute) {
        tasks.push_back([&results, &jobs, i] {
            const EvalJob &job = jobs[i];
            results[i] =
                timedSimulate(*job.workload, job.schedule, job.opts);
        });
    }
    pool_.submitBatch(tasks);

    // Phase 3 (sequential, job order): publish fresh results to the
    // cache and fill in the intra-batch duplicates.
    if (cache_ != nullptr) {
        for (const std::size_t i : compute)
            cache_->insert(keys[i], results[i]);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (alias[i] >= 0)
            results[i] = results[static_cast<std::size_t>(alias[i])];
    }
    return results;
}

SimResult
BatchEvaluator::evaluateOne(const Workload &w, const Schedule &s,
                            const SimOptions &opts)
{
    JITSCHED_OBS(obs::ExecMetrics::get().batchJobs.add());
    if (cache_ != nullptr) {
        const EvalKey key = makeEvalKey(w, s, opts);
        if (const auto cached = cache_->lookup(key, counters_))
            return *cached;
        const SimResult result = timedSimulate(w, s, opts);
        cache_->insert(key, result);
        return result;
    }
    return timedSimulate(w, s, opts);
}

BatchEvaluator &
BatchEvaluator::global()
{
    static EvalCache cache;
    static BatchEvaluator evaluator(ThreadPool::global(), &cache);
    return evaluator;
}

} // namespace jitsched
