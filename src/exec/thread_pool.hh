/**
 * @file
 * Work-queue thread pool for parallel batch evaluation.
 *
 * A fixed set of worker threads serves fork-join parallel-for batches:
 * the caller publishes a batch (body, size), workers and the caller
 * claim indices from a shared atomic counter, and the call returns
 * once every index has been executed.  Results are deterministic by
 * construction as long as the body writes only to per-index state —
 * which index runs on which thread never influences what is computed,
 * only when.
 *
 * The pool is the execution substrate of the batch-evaluation engine
 * (exec/batch_eval.hh) and of the A* child-evaluation fan-out
 * (core/astar.cc); it deliberately knows nothing about either.
 */

#ifndef JITSCHED_EXEC_THREAD_POOL_HH
#define JITSCHED_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jitsched {

/**
 * Fork-join pool with a deterministic parallel-for.
 *
 * Thread accounting: a pool of concurrency N spawns N - 1 workers;
 * the thread calling parallelFor() is the Nth executor.  A pool of
 * concurrency 1 therefore has no workers at all and runs every batch
 * inline — the sequential reference the determinism tests compare
 * against.
 *
 * parallelFor() may be called from one thread at a time (concurrent
 * calls serialize on an internal mutex) and must not be called from
 * inside a batch body (the pool is not reentrant).
 */
class ThreadPool
{
  public:
    /**
     * @param concurrency total number of executing threads including
     *        the caller (>= 1); 0 means hardware concurrency.
     */
    explicit ThreadPool(std::size_t concurrency = 0);

    /** Joins all workers; outstanding batches finish first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total executor count, caller included. */
    std::size_t concurrency() const { return workers_.size() + 1; }

    /**
     * Run body(0) ... body(n - 1), distributed over all executors.
     * Returns after every index has completed.  The body must confine
     * its writes to per-index state and must not throw.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Run a batch of heterogeneous closures through one fork-join
     * publish: tasks[0] ... tasks[n - 1] execute distributed over
     * all executors, and the call returns once every one has
     * completed.  Same contract as parallelFor (one caller at a
     * time, non-reentrant, tasks must not throw and must confine
     * writes to per-task state); same determinism guarantee —
     * which task runs on which thread never changes what is
     * computed.  Bulk callers (exec/batch_eval.cc phase 2, parallel
     * search drivers) use this instead of hand-rolling an index ->
     * closure dispatch body.
     */
    void submitBatch(const std::vector<std::function<void()>> &tasks);

    /**
     * Process-wide pool at hardware concurrency (or the value of the
     * JITSCHED_THREADS environment variable when set), lazily
     * constructed.  Shared by the benches and the global
     * BatchEvaluator.
     */
    static ThreadPool &global();

    /**
     * Parse a JITSCHED_THREADS value.  The contract the global pool
     * documents: unset or empty means "auto" (returns 0); anything
     * else must be a clean integer >= 1 — non-numeric text, values
     * below 1, and trailing garbage ("4x") are all user errors and
     * fatal().  Exposed so the contract is unit-testable without
     * touching the process environment.
     */
    static std::size_t parseThreadsEnv(const char *env);

  private:
    void workerLoop();
    void runTasks(const std::function<void(std::size_t)> *body,
                  std::size_t n);

    std::vector<std::thread> workers_;

    /** Serializes concurrent parallelFor() callers. */
    std::mutex run_mutex_;

    /** Guards the batch hand-off state below. */
    std::mutex mutex_;
    std::condition_variable wake_cv_; ///< signals workers: new batch
    std::condition_variable done_cv_; ///< signals caller: batch done

    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t batch_size_ = 0;
    std::uint64_t generation_ = 0; ///< bumped per batch
    bool shutdown_ = false;

    std::atomic<std::size_t> next_index_{0}; ///< next unclaimed index
    std::atomic<std::size_t> pending_{0};    ///< tasks not yet finished
    std::size_t active_runners_ = 0; ///< workers inside runTasks()
};

} // namespace jitsched

#endif // JITSCHED_EXEC_THREAD_POOL_HH
