#include "exec/thread_pool.hh"

#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/instruments.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

namespace jitsched {

namespace {

std::size_t
resolveConcurrency(std::size_t requested)
{
    if (requested != 0)
        return requested;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // anonymous namespace

ThreadPool::ThreadPool(std::size_t concurrency)
{
    const std::size_t n = resolveConcurrency(concurrency);
    workers_.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runTasks(const std::function<void(std::size_t)> *body,
                     std::size_t n)
{
    for (;;) {
        const std::size_t i =
            next_index_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        (*body)(i);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last task of the batch: wake the caller.  Taking the
            // lock orders the notify against the caller's wait.
            std::lock_guard<std::mutex> lk(mutex_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_cv_.wait(lk, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            body = body_;
            n = batch_size_;
            // A worker that slept through a whole batch wakes here
            // after the caller already cleared body_; there is
            // nothing to run, and claiming indices against the
            // stale batch_size_ would corrupt the next batch.
            if (body == nullptr)
                continue;
            ++active_runners_;
        }
        runTasks(body, n);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--active_runners_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;

    // Batch-granularity accounting only: per-index timing would cost
    // a clock read on bodies that can be sub-microsecond (A* child
    // evaluations).  busy_ns is the wall time the calling thread
    // spends inside the batch; utilization is busy_ns over scrape
    // interval times concurrency.
#ifndef JITSCHED_OBS_DISABLED
    {
        obs::ExecMetrics &m = obs::ExecMetrics::get();
        m.poolBatches.add();
        m.poolTasks.add(n);
        m.poolConcurrency.set(
            static_cast<std::int64_t>(concurrency()));
    }
    struct BusyScope
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        ~BusyScope()
        {
            obs::ExecMetrics::get().poolBusyNs.add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count()));
        }
    } busy_scope;
#endif

    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> run_lk(run_mutex_);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        body_ = &body;
        batch_size_ = n;
        next_index_.store(0, std::memory_order_relaxed);
        pending_.store(n, std::memory_order_relaxed);
        ++generation_;
    }
    wake_cv_.notify_all();

    runTasks(&body, n);

    // Wait until every task finished AND every worker has left
    // runTasks(): a worker still inside could otherwise claim an
    // index of the *next* batch against this batch's body.
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] {
        return pending_.load(std::memory_order_acquire) == 0 &&
               active_runners_ == 0;
    });
    body_ = nullptr;
}

void
ThreadPool::submitBatch(
    const std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    // One publish through the parallel-for machinery: the batch body
    // is the index -> closure dispatch, claimed from the shared
    // atomic counter like any other batch.
    parallelFor(tasks.size(),
                [&tasks](std::size_t i) { tasks[i](); });
}

std::size_t
ThreadPool::parseThreadsEnv(const char *env)
{
    if (env == nullptr || *env == '\0')
        return 0;
    // parseInt() rejects partial parses, so "4x" and "abc" are both
    // caught here instead of silently truncating via strtol.
    const auto v = parseInt(trim(env));
    if (!v || *v < 1)
        JITSCHED_FATAL("JITSCHED_THREADS must be an integer >= 1, "
                       "got '", env, "'");
    return static_cast<std::size_t>(*v);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        parseThreadsEnv(std::getenv("JITSCHED_THREADS")));
    return pool;
}

} // namespace jitsched
