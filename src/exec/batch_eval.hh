/**
 * @file
 * Parallel batch evaluation of make-span jobs.
 *
 * The paper's methodology (Sec. 6) is large sweeps: thousands of
 * (trace, schedule, core-count) evaluations comparing IAR, the
 * single-level approximations, A*, and the lower bound.  Each
 * evaluation is independent, so a batch fans out over all hardware
 * threads; a memoizing EvalCache lets sweeps that revisit a
 * configuration (ablation grids, A* re-expansions, repeated figure
 * rows) skip the simulate() entirely.
 *
 * Determinism contract: evaluate() returns results in job order, and
 * both the results and the cache hit/miss counts are identical for
 * every pool concurrency.  This is enforced structurally — the cache
 * probe and insert phases run sequentially on the calling thread, in
 * job order; only the pure simulate() calls run on the pool — and
 * verified by tests/exec/test_batch_determinism.cc.
 */

#ifndef JITSCHED_EXEC_BATCH_EVAL_HH
#define JITSCHED_EXEC_BATCH_EVAL_HH

#include <vector>

#include "core/schedule.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "sim/makespan.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * One evaluation job: simulate `schedule` on `*workload` under
 * `opts`.  The workload is referenced (instances are large and
 * long-lived); the schedule is owned (benches routinely pass
 * freshly built temporaries).
 */
struct EvalJob
{
    const Workload *workload = nullptr;
    Schedule schedule;
    SimOptions opts;
};

/**
 * Batch front-end over a ThreadPool and an optional EvalCache.
 */
class BatchEvaluator
{
  public:
    /**
     * @param pool executor; must outlive the evaluator
     * @param cache memo table, or nullptr to evaluate everything;
     *              must outlive the evaluator when given
     * @param counters per-caller hit/miss tally fed on every cache
     *              probe (the service's per-request stats); may be
     *              nullptr
     */
    explicit BatchEvaluator(ThreadPool &pool,
                            EvalCache *cache = nullptr,
                            EvalCounters *counters = nullptr)
        : pool_(pool), cache_(cache), counters_(counters)
    {
    }

    /**
     * Evaluate a batch; results come back in job order.  Jobs that
     * hit the cache (or duplicate an earlier job in the same batch)
     * are not simulated again.
     */
    std::vector<SimResult>
    evaluate(const std::vector<EvalJob> &jobs);

    /** Evaluate one job through the same cache. */
    SimResult evaluateOne(const Workload &w, const Schedule &s,
                          const SimOptions &opts = {});

    ThreadPool &pool() { return pool_; }
    EvalCache *cache() { return cache_; }

    /**
     * Process-wide evaluator over ThreadPool::global() and a shared
     * cache; what the benches use.
     */
    static BatchEvaluator &global();

  private:
    ThreadPool &pool_;
    EvalCache *cache_;
    EvalCounters *counters_;
};

} // namespace jitsched

#endif // JITSCHED_EXEC_BATCH_EVAL_HH
