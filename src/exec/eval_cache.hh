/**
 * @file
 * Memoizing cache for make-span evaluations.
 *
 * Large sweeps (A* re-expansions, ablation grids, figure tables)
 * revisit the same (workload, schedule, simulation options)
 * configuration many times; the cache lets them skip the redundant
 * simulate() calls.  Entries are keyed on content fingerprints — a
 * hash of the trace and profile table, a hash of the compile events,
 * and a hash of the simulation knobs — so two structurally identical
 * workloads share entries regardless of object identity.
 *
 * The map is sharded by key hash, each shard behind its own mutex, so
 * concurrent probes from a thread-pool batch do not serialize on one
 * lock.  Hit/miss counters are atomics; for the deterministic counts
 * the property tests rely on, BatchEvaluator probes sequentially and
 * only the simulations themselves run in parallel.
 */

#ifndef JITSCHED_EXEC_EVAL_CACHE_HH
#define JITSCHED_EXEC_EVAL_CACHE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/schedule.hh"
#include "sim/makespan.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Content fingerprint of one evaluation configuration. */
struct EvalKey
{
    std::uint64_t workload = 0; ///< hashWorkload() of the instance
    std::uint64_t schedule = 0; ///< hashSchedule() of the events
    std::uint64_t options = 0;  ///< hashSimOptions() of the knobs

    bool operator==(const EvalKey &) const = default;
};

/** Fingerprint of a workload: name, profiles, and call sequence. */
std::uint64_t hashWorkload(const Workload &w);

/** Fingerprint of a schedule's event list. */
std::uint64_t hashSchedule(const Schedule &s);

/** Fingerprint of the simulation knobs. */
std::uint64_t hashSimOptions(const SimOptions &opts);

/** Convenience: the full key of one evaluation. */
EvalKey makeEvalKey(const Workload &w, const Schedule &s,
                    const SimOptions &opts);

/**
 * Caller-owned hit/miss tally, filled alongside the cache's own
 * process-global counters.  The service engine hands one per request
 * to its evaluator so a response's `stats cache-hits/-misses` counts
 * that request's probes alone — before/after deltas of the global
 * counters misattribute concurrent requests' probes to each other.
 * Atomics: probes are sequential per evaluate() call, but nothing
 * stops two evaluators sharing a tally.
 */
struct EvalCounters
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

/**
 * Sharded, thread-safe memo table from EvalKey to SimResult.
 */
class EvalCache
{
  public:
    EvalCache() = default;

    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /**
     * Look up a key.  Counts one hit or one miss — into the global
     * counters and, when given, into @p counters.
     * @return the cached result, or nullopt on miss.
     */
    std::optional<SimResult> lookup(const EvalKey &key,
                                    EvalCounters *counters = nullptr);

    /** Insert (or overwrite) the result for a key. */
    void insert(const EvalKey &key, const SimResult &result);

    /** Number of lookup() calls that found an entry. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Number of lookup() calls that found nothing. */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Number of entries currently stored. */
    std::size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    struct KeyHash
    {
        std::size_t operator()(const EvalKey &k) const;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<EvalKey, SimResult, KeyHash> map;
    };

    static constexpr std::size_t kNumShards = 16;

    Shard &shardFor(const EvalKey &key);
    const Shard &shardFor(const EvalKey &key) const;

    Shard shards_[kNumShards];
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace jitsched

#endif // JITSCHED_EXEC_EVAL_CACHE_HH
