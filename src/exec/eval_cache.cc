#include "exec/eval_cache.hh"

#include <bit>
#include <cstring>

#include "obs/instruments.hh"

namespace jitsched {

namespace {

/** SplitMix64 finalizer: the avalanche step used throughout. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Running hash accumulator (order-sensitive). */
struct Hasher
{
    std::uint64_t state = 0x2545f4914f6cdd1dull;

    void
    add(std::uint64_t v)
    {
        state = mix64(state ^ mix64(v));
    }

    void
    addSigned(std::int64_t v)
    {
        add(static_cast<std::uint64_t>(v));
    }

    void
    addDouble(double v)
    {
        add(std::bit_cast<std::uint64_t>(v));
    }

    void
    addString(const std::string &s)
    {
        add(s.size());
        std::uint64_t word = 0;
        std::size_t filled = 0;
        for (const char c : s) {
            word |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(c))
                    << (8 * filled);
            if (++filled == 8) {
                add(word);
                word = 0;
                filled = 0;
            }
        }
        if (filled != 0)
            add(word);
    }
};

} // anonymous namespace

std::uint64_t
hashWorkload(const Workload &w)
{
    Hasher h;
    h.addString(w.name());
    h.add(w.numFunctions());
    for (const FunctionProfile &fp : w.functions()) {
        h.add(fp.size());
        h.add(fp.numLevels());
        for (std::size_t l = 0; l < fp.numLevels(); ++l) {
            const LevelCosts &c = fp.level(static_cast<Level>(l));
            h.addSigned(c.compile);
            h.addSigned(c.exec);
        }
    }
    h.add(w.numCalls());
    for (const FuncId f : w.calls())
        h.add(f);
    return h.state;
}

std::uint64_t
hashSchedule(const Schedule &s)
{
    Hasher h;
    h.add(s.size());
    for (const CompileEvent &ev : s.events()) {
        h.add(ev.func);
        h.add(ev.level);
    }
    return h.state;
}

std::uint64_t
hashSimOptions(const SimOptions &opts)
{
    Hasher h;
    h.add(opts.compileCores);
    h.addDouble(opts.execJitterSigma);
    h.add(opts.jitterSeed);
    return h.state;
}

EvalKey
makeEvalKey(const Workload &w, const Schedule &s,
            const SimOptions &opts)
{
    return EvalKey{hashWorkload(w), hashSchedule(s),
                   hashSimOptions(opts)};
}

std::size_t
EvalCache::KeyHash::operator()(const EvalKey &k) const
{
    return static_cast<std::size_t>(
        mix64(k.workload ^ mix64(k.schedule ^ mix64(k.options))));
}

EvalCache::Shard &
EvalCache::shardFor(const EvalKey &key)
{
    return shards_[KeyHash{}(key) % kNumShards];
}

const EvalCache::Shard &
EvalCache::shardFor(const EvalKey &key) const
{
    return const_cast<EvalCache *>(this)->shardFor(key);
}

std::optional<SimResult>
EvalCache::lookup(const EvalKey &key, EvalCounters *counters)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lk(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (counters != nullptr)
            counters->misses.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(obs::ExecMetrics::get().cacheMisses.add());
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (counters != nullptr)
        counters->hits.fetch_add(1, std::memory_order_relaxed);
    JITSCHED_OBS(obs::ExecMetrics::get().cacheHits.add());
    return it->second;
}

void
EvalCache::insert(const EvalKey &key, const SimResult &result)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lk(shard.mutex);
    shard.map[key] = result;
}

std::size_t
EvalCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

void
EvalCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mutex);
        shard.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace jitsched
