#include "core/schedule.hh"

#include <sstream>

namespace jitsched {

bool
Schedule::validate(const Workload &w, std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    std::vector<int> last_level(w.numFunctions(), -1);
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const CompileEvent &ev = events_[i];
        if (ev.func >= w.numFunctions())
            return fail("event #" + std::to_string(i) +
                        " names unknown function " +
                        std::to_string(ev.func));
        const auto &prof = w.function(ev.func);
        if (ev.level >= prof.numLevels())
            return fail("event #" + std::to_string(i) + " compiles " +
                        prof.name() + " at invalid level " +
                        std::to_string(ev.level));
        if (static_cast<int>(ev.level) <= last_level[ev.func])
            return fail("event #" + std::to_string(i) + " compiles " +
                        prof.name() + " at level " +
                        std::to_string(ev.level) +
                        " not above its previous level " +
                        std::to_string(last_level[ev.func]));
        last_level[ev.func] = ev.level;
    }

    for (const FuncId f : w.firstAppearanceOrder()) {
        if (last_level[f] < 0)
            return fail("called function " + w.function(f).name() +
                        " is never compiled");
    }
    return true;
}

Tick
Schedule::totalCompileTime(const Workload &w) const
{
    Tick total = 0;
    for (const CompileEvent &ev : events_)
        total += w.function(ev.func).compileTime(ev.level);
    return total;
}

std::string
Schedule::toString(const Workload &w) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (i != 0)
            os << ' ';
        os << 'C' << static_cast<int>(events_[i].level) << '('
           << w.function(events_[i].func).name() << ')';
    }
    return os.str();
}

} // namespace jitsched
