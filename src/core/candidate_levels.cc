#include "core/candidate_levels.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

TimeEstimates
oracleEstimates(const Workload &w)
{
    TimeEstimates est;
    est.perFunc.resize(w.numFunctions());
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        const auto &prof = w.function(static_cast<FuncId>(f));
        est.perFunc[f].resize(prof.numLevels());
        for (std::size_t j = 0; j < prof.numLevels(); ++j)
            est.perFunc[f][j] = prof.level(static_cast<Level>(j));
    }
    return est;
}

std::vector<CandidatePair>
chooseCandidateLevels(const Workload &w, const TimeEstimates &est)
{
    if (est.perFunc.size() != w.numFunctions())
        JITSCHED_PANIC("chooseCandidateLevels: estimate table has ",
                       est.perFunc.size(), " functions, workload has ",
                       w.numFunctions());

    std::vector<CandidatePair> out(w.numFunctions());
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        const auto &levels = est.perFunc[f];
        if (levels.empty())
            JITSCHED_PANIC("chooseCandidateLevels: function ", f,
                           " has no estimated levels");
        const std::uint64_t n =
            w.callCount(static_cast<FuncId>(f));

        // Most responsive: minimum estimated compile time, lowest
        // level on ties (level 0 in any monotone profile).
        Level low = 0;
        for (std::size_t j = 1; j < levels.size(); ++j) {
            if (levels[j].compile < levels[low].compile)
                low = static_cast<Level>(j);
        }

        // Most cost-effective: minimize c + n * e under the model.
        Level high = 0;
        __int128 best = static_cast<__int128>(levels[0].compile) +
                        static_cast<__int128>(n) * levels[0].exec;
        for (std::size_t j = 1; j < levels.size(); ++j) {
            const __int128 cost =
                static_cast<__int128>(levels[j].compile) +
                static_cast<__int128>(n) * levels[j].exec;
            if (cost < best) {
                best = cost;
                high = static_cast<Level>(j);
            }
        }

        // The schedule-side convention is low <= high; if the model
        // claims a lower level is the cost-effective one, collapse.
        if (high < low)
            low = high;
        out[f] = {low, high};
    }
    return out;
}

std::vector<CandidatePair>
chooseCandidateLevels(const TimeEstimates &est,
                      const std::vector<double> &expected_counts)
{
    if (est.perFunc.size() != expected_counts.size())
        JITSCHED_PANIC("chooseCandidateLevels: estimate table has ",
                       est.perFunc.size(), " functions, counts have ",
                       expected_counts.size());

    std::vector<CandidatePair> out(est.perFunc.size());
    for (std::size_t f = 0; f < est.perFunc.size(); ++f) {
        const auto &levels = est.perFunc[f];
        if (levels.empty())
            JITSCHED_PANIC("chooseCandidateLevels: function ", f,
                           " has no estimated levels");
        const double n = std::max(0.0, expected_counts[f]);

        Level low = 0;
        for (std::size_t j = 1; j < levels.size(); ++j) {
            if (levels[j].compile < levels[low].compile)
                low = static_cast<Level>(j);
        }

        Level high = 0;
        double best = static_cast<double>(levels[0].compile) +
                      n * static_cast<double>(levels[0].exec);
        for (std::size_t j = 1; j < levels.size(); ++j) {
            const double cost =
                static_cast<double>(levels[j].compile) +
                n * static_cast<double>(levels[j].exec);
            if (cost < best) {
                best = cost;
                high = static_cast<Level>(j);
            }
        }
        if (high < low)
            low = high;
        out[f] = {low, high};
    }
    return out;
}

std::vector<CandidatePair>
oracleCandidateLevels(const Workload &w)
{
    return chooseCandidateLevels(w, oracleEstimates(w));
}

} // namespace jitsched
