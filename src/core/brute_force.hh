/**
 * @file
 * Exact OCSP solver by exhaustive branch-and-bound search.
 *
 * Ground truth for tiny instances: it explores the same schedule tree
 * as the A* search (Fig. 4) depth-first, pruning branches whose
 * committed cost already exceeds the best complete schedule found.
 * Exponential — usable only for a handful of functions — but exact,
 * which is what the NP-completeness results predict is the best one
 * can do.
 */

#ifndef JITSCHED_CORE_BRUTE_FORCE_HH
#define JITSCHED_CORE_BRUTE_FORCE_HH

#include <cstdint>
#include <optional>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Knobs of the exhaustive search. */
struct BruteForceConfig
{
    /**
     * Abort after visiting this many tree nodes (0 = unlimited).
     * Protects tests from accidentally huge instances.
     */
    std::uint64_t maxNodes = 50'000'000;
};

/** Outcome of the exhaustive search. */
struct BruteForceResult
{
    /** True when the search ran to completion (result is optimal). */
    bool complete = false;

    /** Best schedule found (optimal iff complete). */
    Schedule schedule;

    /** Its make-span under the two-core model. */
    Tick makespan = 0;

    /** Tree nodes visited. */
    std::uint64_t nodesVisited = 0;
};

/**
 * Find a minimum-make-span schedule by exhaustive search
 * (1 execution core + 1 compilation core).
 */
BruteForceResult bruteForceOptimal(const Workload &w,
                                   const BruteForceConfig &cfg = {});

} // namespace jitsched

#endif // JITSCHED_CORE_BRUTE_FORCE_HH
