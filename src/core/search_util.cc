#include "core/search_util.hh"

#include <algorithm>

namespace jitsched {

namespace {

struct Version
{
    Tick completion;
    Level level;
};

/**
 * Walk the execution under the prefix's versions.
 *
 * @param stop_at only count calls starting strictly before this time
 *        (pass maxTick to evaluate the complete run)
 */
PrefixCost
walk(const Workload &w, const std::vector<CompileEvent> &events,
     const std::vector<Tick> &best_exec, Tick stop_at)
{
    PrefixCost out;

    std::vector<std::vector<Version>> versions(w.numFunctions());
    Tick compile_clock = 0;
    for (const CompileEvent &ev : events) {
        compile_clock += w.function(ev.func).compileTime(ev.level);
        versions[ev.func].push_back({compile_clock, ev.level});
    }
    out.compileEnd = compile_clock;

    std::vector<std::uint32_t> cur(w.numFunctions(), 0);
    Tick now = 0;
    for (const FuncId f : w.calls()) {
        const auto &vers = versions[f];
        if (vers.empty()) {
            // The prefix never compiles this function, yet the call
            // must eventually run: any extension compiles f no
            // earlier than the prefix's compile end plus f's
            // cheapest compile time, so at least that much bubble is
            // already committed.  (This strengthens the paper's
            // plain b(v) + e(v), which charges nothing to prefixes
            // that postpone a needed compilation, while staying
            // admissible and consistent.)
            const Tick earliest =
                out.compileEnd + w.function(f).compileTime(0);
            out.bubbles += std::max<Tick>(0, earliest - now);
            break;
        }
        const Tick first_ready = vers.front().completion;
        const Tick start = std::max(now, first_ready);
        if (start >= stop_at) {
            // The call starts outside the committed window, but its
            // start time is already determined by the prefix (later
            // compiles cannot make the first version available
            // sooner), so its wait is committed as well.
            out.bubbles += start - now;
            break;
        }
        out.bubbles += start - now;

        std::uint32_t v = cur[f];
        while (v + 1 < vers.size() && vers[v + 1].completion <= start)
            ++v;
        cur[f] = v;

        const Tick dur = w.function(f).execTime(vers[v].level);
        out.extraExec += dur - best_exec[f];
        now = start + dur;
    }
    return out;
}

} // anonymous namespace

PrefixCost
evalPrefix(const Workload &w, const std::vector<CompileEvent> &events,
           const std::vector<Tick> &best_exec)
{
    // The window is the prefix's own compile end, computed directly
    // from the event list so the walk runs once (it used to run a
    // whole throwaway pass just to learn this value).
    Tick end = 0;
    for (const CompileEvent &ev : events)
        end += w.function(ev.func).compileTime(ev.level);
    return walk(w, events, best_exec, end);
}

Tick
evalComplete(const Workload &w,
             const std::vector<CompileEvent> &events,
             const std::vector<Tick> &best_exec)
{
    const PrefixCost cost = walk(w, events, best_exec, maxTick);
    return cost.f();
}

std::vector<Tick>
bestExecTimes(const Workload &w)
{
    std::vector<Tick> out(w.numFunctions());
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        const auto &prof = w.function(static_cast<FuncId>(f));
        out[f] = prof.execTime(prof.highestLevel());
    }
    return out;
}

} // namespace jitsched
