/**
 * @file
 * Make-span lower bound (Sec. 5.2).
 *
 * The make-span cannot be smaller than the sum, over the call
 * sequence, of the fastest available execution time of each call: the
 * execution thread must at least run every call, even if every
 * compilation were free and instantaneous.  Together with an
 * attainable schedule (IAR), the bound brackets the unknown minimum
 * make-span.
 */

#ifndef JITSCHED_CORE_LOWER_BOUND_HH
#define JITSCHED_CORE_LOWER_BOUND_HH

#include "core/candidate_levels.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * Lower bound when the scheduler may use any level of any function:
 * every call at its function's highest level (true times).
 */
Tick lowerBoundAllLevels(const Workload &w);

/**
 * Lower bound when the scheduler is restricted to the given candidate
 * levels per function: every call at the faster candidate (the
 * cost-effective level; true times).  This is the normalization
 * baseline of Figs. 5, 6 and 8 — it moves when the cost-benefit model
 * or the level set changes, exactly as the paper describes.
 */
Tick lowerBoundCandidates(const Workload &w,
                          const std::vector<CandidatePair> &cands);

} // namespace jitsched

#endif // JITSCHED_CORE_LOWER_BOUND_HH
