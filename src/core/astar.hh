/**
 * @file
 * A*-search for optimal compilation schedules (Sec. 5.3).
 *
 * The schedule space is modeled as the tree of Fig. 4: each node
 * appends one compile event, and per function the levels along a path
 * strictly increase.  The guiding function is the paper's
 * f(v) = b(v) + e(v): bubbles plus extra execution time committed
 * within the compile window of the prefix.  f never overestimates the
 * final cost, so the first closed (complete) node popped from the
 * priority list is optimal.
 *
 * As the paper observes (Sec. 6.2.5), the open list grows
 * exponentially with the number of unique functions; the search keeps
 * an explicit memory account and aborts with OutOfMemory when it
 * exceeds its budget (their Java implementation died at 2 GB once
 * instances had more than 6 unique methods).
 */

#ifndef JITSCHED_CORE_ASTAR_HH
#define JITSCHED_CORE_ASTAR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

class ThreadPool;

/** Knobs of the A* search. */
struct AStarConfig
{
    /**
     * Memory budget for node storage, in bytes.  Mirrors the paper's
     * 2 GB Java heap.
     */
    std::uint64_t memoryBudget = 2ull << 30;

    /** Safety cap on node expansions (0 = unlimited). */
    std::uint64_t maxExpansions = 0;

    /**
     * Pool for fanning out the candidate (child) evaluations of one
     * expansion; nullptr evaluates them sequentially.  The result is
     * bit-identical either way: children are generated and pushed in
     * a fixed order, only their evalPrefix() calls run concurrently.
     */
    ThreadPool *pool = nullptr;

    /**
     * Fan out only when an expansion has at least this many children;
     * below it the hand-off overhead outweighs the win.
     */
    std::size_t minParallelChildren = 16;

    /**
     * Evaluate children incrementally from the parent's saved
     * PrefixSimState (core/prefix_sim.hh) instead of replaying the
     * call sequence from t = 0 per child.  Bit-identical f values and
     * node ordering either way; `false` keeps the from-scratch
     * evalPrefix() path alive for differential testing and for the
     * bench_astar speedup baseline.
     */
    bool incrementalEval = true;

    /**
     * Discard a generated node when an exact duplicate state (same
     * per-function last-level signature, resume position, pinned
     * resume clock and compile end) was already generated.  Strictly
     * safety-preserving — duplicates have identical completion-cost
     * sets — and typically collapses the factorial interleavings of
     * compiles that finish ahead of need.  Requires incrementalEval;
     * auto-disabled above duplicateMaxFunctions.
     */
    bool duplicateDetection = true;

    /**
     * Signature width cap for duplicate detection.  Beyond a few
     * dozen unique functions A* exhausts any memory budget long
     * before pruning matters, while each table entry costs
     * O(#functions) bytes — so very wide workloads skip the table.
     */
    std::size_t duplicateMaxFunctions = 64;

    /**
     * Seed the search with the IAR schedule's cost as an incumbent
     * upper bound and discard any generated node whose f already
     * meets it (f >= incumbent implies every completion under the
     * node costs at least what the incumbent achieves).  The final
     * cost is bit-identical with or without the bound — when the
     * bound is tight the search simply returns the incumbent
     * schedule itself — but the explored node count can shrink by
     * orders of magnitude.  Off by default in aStarOptimal() so the
     * checked-in deterministic node-count expectations keep meaning
     * "plain A*"; aStarParallel() and the astar-par service policy
     * turn it on.
     */
    bool incumbentPruning = false;

    /**
     * Worker count for aStarParallel() (HDA*-style hash-distributed
     * expansion); 0 = one worker per hardware thread.  Ignored by
     * aStarOptimal().
     */
    std::size_t threads = 1;

    /**
     * Anytime deadline for aStarParallel(), in wall-clock
     * milliseconds; 0 = none.  When the deadline (or the memory
     * budget, or the expansion cap) trips, the parallel search
     * returns the best incumbent schedule found so far plus an
     * optimality-gap bound (AStarStatus::Incumbent) instead of
     * returning empty-handed.  Ignored by aStarOptimal().
     */
    std::int64_t anytimeDeadlineMs = 0;
};

/** Why the search stopped. */
enum class AStarStatus
{
    Optimal,     ///< a provably optimal schedule was found
    OutOfMemory, ///< the node store exceeded the memory budget
    ExpansionCap, ///< maxExpansions was hit
    /**
     * Anytime stop (parallel search only): a budget tripped before
     * optimality was proven.  `schedule`, `makespan` and `gapBound`
     * are valid — the schedule is the best incumbent found, and the
     * true optimum lies within [makespan - gapBound, makespan].
     */
    Incumbent
};

/** Which budget ended an anytime (Incumbent) run. */
enum class AStarStop
{
    None,      ///< ran to completion (status != Incumbent)
    Deadline,  ///< anytimeDeadlineMs elapsed
    Memory,    ///< node store exceeded the memory budget
    Expansions ///< maxExpansions was hit
};

/** Outcome of the search. */
struct AStarResult
{
    AStarStatus status = AStarStatus::OutOfMemory;

    /** Optimal schedule (valid only when status == Optimal). */
    Schedule schedule;

    /** Its make-span (valid only when status == Optimal). */
    Tick makespan = 0;

    /** Nodes expanded (popped and branched). */
    std::uint64_t nodesExpanded = 0;

    /** Nodes generated (stored). */
    std::uint64_t nodesGenerated = 0;

    /** Generated nodes discarded by the duplicate-state table. */
    std::uint64_t nodesPruned = 0;

    /** Prefix evaluations performed (child + closing evaluations). */
    std::uint64_t evaluations = 0;

    /**
     * Peak accounted memory in bytes: the high-water mark of arena +
     * open list + duplicate table.  The open list is tracked by its
     * own high-water mark — after pruning (and after deep pops) its
     * size diverges from the arena's, so charging one per-node
     * constant would misstate whichever is larger.
     */
    std::uint64_t peakMemory = 0;

    /** Peak node-arena footprint (nodes * bytesPerNode). */
    std::uint64_t peakArenaBytes = 0;

    /** Peak open-list footprint (entry high-water * entry size). */
    std::uint64_t peakOpenBytes = 0;

    /** Peak duplicate-table footprint. */
    std::uint64_t peakTableBytes = 0;

    /**
     * Bytes charged per stored node, including the per-node
     * PrefixSimState — kept in the result so reports reflect what
     * the memory budget actually metered.
     */
    std::uint64_t bytesPerNode = 0;

    // ---- Incumbent / anytime fields (see AStarConfig) ----

    /** Generated nodes discarded because f >= the incumbent bound. */
    std::uint64_t nodesPrunedIncumbent = 0;

    /** Times a closed leaf improved on the incumbent. */
    std::uint64_t incumbentImprovements = 0;

    /**
     * Upper bound on `makespan - optimum` (0 when status == Optimal).
     * Derived from the smallest f still alive when an anytime run
     * stopped: no remaining node could complete below lb + minAliveF.
     */
    Tick gapBound = 0;

    /** Which budget ended an Incumbent run (None otherwise). */
    AStarStop stopCause = AStarStop::None;

    // ---- Parallel-search diagnostics (aStarParallel only) ----

    /** Nodes expanded by each worker (size == worker count). */
    std::vector<std::uint64_t> workerExpansions;

    /** High-water mark of any worker's inbox depth. */
    std::uint64_t maxInboxDepth = 0;

    /** Nodes routed across workers (excludes same-worker children). */
    std::uint64_t nodesRouted = 0;

    /**
     * Incumbent-improvement trail: wall-clock seconds from search
     * start, the improved make-span, and the worker that closed the
     * improving leaf.  Entry 0 is the IAR seed.  Feeds the trace
     * timeline (bench_astar_par --trace-out).
     */
    struct IncumbentEvent
    {
        double seconds = 0.0;
        Tick makespan = 0;
        std::uint32_t worker = 0;
    };
    std::vector<IncumbentEvent> incumbentTrail;
};

/**
 * Search for an optimal schedule (1 execution + 1 compilation core).
 */
AStarResult aStarOptimal(const Workload &w,
                         const AStarConfig &cfg = {});

} // namespace jitsched

#endif // JITSCHED_CORE_ASTAR_HH
