/**
 * @file
 * The IAR (Init-Append-Replace) scheduling algorithm (Sec. 5.1,
 * Fig. 3) — the paper's polynomial-time approximation of optimal
 * compilation schedules.
 *
 * Step 1 (init): schedule the low-level compilation of every called
 *   function in first-appearance order; this minimizes bubbles.
 * Step 2 (append & replace): classify each function by Formulas 1
 *   and 2 into O(ther) — the high level is not worth it; A(ppend) —
 *   recompile at the high level after the initial stage (sorted by
 *   ascending high-level compile cost); or R(eplace) — compile at the
 *   high level right away.
 * Step 3 (fill slack through replacement): upgrade low-level compiles
 *   to high level where the schedule has slack (compile finishes well
 *   before the function's first call), as long as no bubble is added.
 * Step 4 (append more to fill ending gap): while the compile thread
 *   would otherwise idle before the program ends, append high-level
 *   compiles of still-unoptimized functions, most-remaining-calls
 *   first.
 *
 * Complexity: O(N + M log M) for N calls and M functions.
 */

#ifndef JITSCHED_CORE_IAR_HH
#define JITSCHED_CORE_IAR_HH

#include <cstddef>
#include <vector>

#include "core/candidate_levels.hh"
#include "core/schedule.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Tunables of the IAR algorithm. */
struct IarConfig
{
    /**
     * The K constant of Formula 2.  The paper reports results are
     * stable for K in [3, 10] and uses 5.
     */
    double k = 5.0;

    /** Enable step 3 (slack filling); on by default. */
    bool fillSlack = true;

    /** Enable step 4 (ending-gap filling); on by default. */
    bool fillEndingGap = true;

    /**
     * Maximum refinement rounds for step 3.  Each round re-times the
     * schedule once; the paper notes steps 3-4 add only marginal
     * gains, so a small constant suffices.
     */
    std::size_t maxSlackRounds = 3;
};

/** Schedule plus diagnostics about the algorithm's decisions. */
struct IarResult
{
    Schedule schedule;

    std::size_t numOther = 0;   ///< functions classified O
    std::size_t numAppend = 0;  ///< functions classified A
    std::size_t numReplace = 0; ///< functions classified R
    std::size_t slackUpgrades = 0; ///< step-3 replacements applied
    std::size_t gapAppends = 0;    ///< step-4 compiles appended

    /**
     * The step-2 refinement simulated worse than the plain init
     * schedule and was discarded.  Formulas 1 and 2 reason per
     * function; an up-front high-level compile can delay *another*
     * function's first call by more than it saves, so the final
     * schedule is guarded by one simulation against the baseline —
     * which is what makes "IAR never loses to base-only" a real
     * invariant rather than a tendency.
     */
    bool refinementDiscarded = false;
};

/**
 * Run the IAR algorithm.
 *
 * @param w the OCSP instance
 * @param cands per-function candidate (low, high) levels, e.g. from
 *              chooseCandidateLevels(); the algorithm itself uses the
 *              *true* profile times at those levels, mirroring the
 *              paper's use of collected times
 * @param cfg tunables
 */
IarResult iarSchedule(const Workload &w,
                      const std::vector<CandidatePair> &cands,
                      const IarConfig &cfg = {});

/** Convenience: IAR with oracle candidate levels. */
IarResult iarScheduleOracle(const Workload &w,
                            const IarConfig &cfg = {});

/**
 * A feasible schedule plus its simulated make-span, used as an
 * incumbent upper bound by the exact searches (core/astar.cc,
 * core/astar_par.cc).
 */
struct IarBound
{
    /** The IAR schedule — valid for the workload, full coverage. */
    Schedule schedule;

    /** simulate(w, schedule).makespan — an upper bound on optimal. */
    Tick makespan = 0;
};

/**
 * Run IAR under oracle candidate levels and price the result: a
 * polynomial-time upper bound on the optimal make-span.  Any search
 * node whose f-value implies a completion at or above this bound can
 * be pruned without affecting the optimum, because the returned
 * schedule already achieves it.
 */
IarBound iarUpperBound(const Workload &w, const IarConfig &cfg = {});

} // namespace jitsched

#endif // JITSCHED_CORE_IAR_HH
