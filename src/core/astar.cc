#include "core/astar.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/search_util.hh"
#include "exec/thread_pool.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

/** Arena-allocated search-tree node; paths share prefixes. */
struct Node
{
    std::int64_t parent = -1; ///< arena index of the parent
    CompileEvent event;       ///< event appended by this node
    Tick f = 0;               ///< b(v) + e(v), or final cost on leaf
    bool closed = false;      ///< true for "stop here" leaf nodes
};

/** Priority-queue entry (small, by design: the queue is the hot set). */
struct OpenEntry
{
    Tick f;
    std::int64_t index;

    bool
    operator>(const OpenEntry &other) const
    {
        if (f != other.f)
            return f > other.f;
        // Depth-first among equal-f nodes: newer (deeper) nodes pop
        // first, so complete schedules surface as soon as their
        // total cost matches the current bound.  Optimality is
        // unaffected — only the order among equally-promising nodes.
        return index < other.index;
    }
};

/** Estimated bytes per stored node, for the memory account. */
constexpr std::uint64_t bytesPerNode =
    sizeof(Node) + sizeof(OpenEntry) + 16; // container overhead

} // anonymous namespace

AStarResult
aStarOptimal(const Workload &w, const AStarConfig &cfg)
{
    if (w.numCalls() == 0)
        JITSCHED_FATAL("aStarOptimal: empty call sequence");

    const std::vector<Tick> best_exec = bestExecTimes(w);
    Tick lb = 0;
    for (const FuncId f : w.calls())
        lb += best_exec[f];

    AStarResult res;

    std::vector<Node> arena;
    std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                        std::greater<OpenEntry>>
        open;

    // Reconstruct the event prefix of a node by walking parents.
    auto prefix_of = [&](std::int64_t idx) {
        std::vector<CompileEvent> events;
        for (std::int64_t i = idx; i >= 0; i = arena[i].parent) {
            if (!arena[i].closed)
                events.push_back(arena[i].event);
        }
        std::reverse(events.begin(), events.end());
        return events;
    };

    auto account = [&]() {
        const std::uint64_t mem = arena.size() * bytesPerNode;
        res.peakMemory = std::max(res.peakMemory, mem);
        return mem <= cfg.memoryBudget;
    };

    // Root: empty prefix, f = 0.
    arena.push_back(Node{-1, CompileEvent{}, 0, true});
    // The root is "closed" in the struct sense only to mark it as not
    // carrying an event; it is never a goal because no function is
    // compiled yet (unless there are no called functions at all).
    open.push({0, 0});
    ++res.nodesGenerated;

    while (!open.empty()) {
        const OpenEntry top = open.top();
        open.pop();
        const std::int64_t idx = top.index;

        const std::vector<CompileEvent> events = prefix_of(idx);

        // Is this a goal? A popped node marked closed with full
        // coverage is a complete schedule with minimal cost.
        if (arena[idx].closed && idx != 0) {
            res.status = AStarStatus::Optimal;
            res.schedule = Schedule(events);
            res.makespan = lb + arena[idx].f;
            return res;
        }

        ++res.nodesExpanded;
        if (cfg.maxExpansions != 0 &&
            res.nodesExpanded > cfg.maxExpansions) {
            res.status = AStarStatus::ExpansionCap;
            return res;
        }

        // Last compiled level per function along this path.
        std::vector<int> last_level(w.numFunctions(), -1);
        std::size_t uncompiled = w.numCalledFunctions();
        for (const CompileEvent &ev : events) {
            if (last_level[ev.func] < 0)
                --uncompiled;
            last_level[ev.func] = std::max(
                last_level[ev.func], static_cast<int>(ev.level));
        }

        // Child 1: close the schedule here (only if complete).
        if (uncompiled == 0) {
            const Tick total = evalComplete(w, events, best_exec);
            arena.push_back(Node{idx, CompileEvent{}, total, true});
            open.push({total, static_cast<std::int64_t>(
                                  arena.size() - 1)});
            ++res.nodesGenerated;
            if (!account()) {
                res.status = AStarStatus::OutOfMemory;
                return res;
            }
        }

        // Children: append any (function, level) with level strictly
        // above the function's last compiled level.  The candidate
        // list is generated in a fixed order first so the costly
        // evalPrefix() calls can fan out over the batch-evaluation
        // pool without changing which node gets which arena index.
        std::vector<CompileEvent> children;
        for (std::size_t i = 0; i < w.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (w.callCount(f) == 0)
                continue;
            const auto &prof = w.function(f);
            for (int l = last_level[i] + 1;
                 l < static_cast<int>(prof.numLevels()); ++l)
                children.push_back({f, static_cast<Level>(l)});
        }

        std::vector<Tick> child_f(children.size());
        if (cfg.pool != nullptr &&
            children.size() >= cfg.minParallelChildren) {
            cfg.pool->parallelFor(
                children.size(), [&](std::size_t c) {
                    std::vector<CompileEvent> child_events = events;
                    child_events.push_back(children[c]);
                    child_f[c] =
                        evalPrefix(w, child_events, best_exec).f();
                });
        } else {
            std::vector<CompileEvent> child_events = events;
            child_events.push_back({});
            for (std::size_t c = 0; c < children.size(); ++c) {
                child_events.back() = children[c];
                child_f[c] =
                    evalPrefix(w, child_events, best_exec).f();
            }
        }

        for (std::size_t c = 0; c < children.size(); ++c) {
            arena.push_back(Node{idx, children[c], child_f[c], false});
            open.push({child_f[c],
                       static_cast<std::int64_t>(arena.size() - 1)});
            ++res.nodesGenerated;
            if (!account()) {
                res.status = AStarStatus::OutOfMemory;
                return res;
            }
        }
    }

    // Exhausted the space without a goal: cannot happen for workloads
    // with called functions, but keep the invariant visible.
    JITSCHED_PANIC("A* open list exhausted without a goal");
}

} // namespace jitsched
