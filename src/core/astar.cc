#include "core/astar.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/iar.hh"
#include "core/prefix_sim.hh"
#include "core/search_util.hh"
#include "exec/thread_pool.hh"
#include "obs/instruments.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

/** Arena-allocated search-tree node; paths share prefixes. */
struct Node
{
    std::int64_t parent = -1; ///< arena index of the parent
    CompileEvent event;       ///< event appended by this node
    Tick f = 0;               ///< b(v) + e(v), or final cost on leaf
    bool closed = false;      ///< true for "stop here" leaf nodes
};

/** Priority-queue entry (small, by design: the queue is the hot set). */
struct OpenEntry
{
    Tick f;
    std::int64_t index;

    bool
    operator>(const OpenEntry &other) const
    {
        if (f != other.f)
            return f > other.f;
        // Depth-first among equal-f nodes: newer (deeper) nodes pop
        // first, so complete schedules surface as soon as their
        // total cost matches the current bound.  Optimality is
        // unaffected — only the order among equally-promising nodes.
        return index < other.index;
    }
};

/**
 * Bytes charged per stored node: the node, its resumable walk state,
 * and container overhead.  Charged identically in both evaluation
 * modes so the memory budget meters the same node count either way.
 */
constexpr std::uint64_t nodeBytes =
    sizeof(Node) + sizeof(PrefixSimState) + 16;

} // anonymous namespace

AStarResult
aStarOptimal(const Workload &w, const AStarConfig &cfg)
{
    if (w.numCalls() == 0)
        JITSCHED_FATAL("aStarOptimal: empty call sequence");

    const PrefixEvaluator evaluator(w);
    const std::vector<Tick> &best_exec = evaluator.bestExec();
    Tick lb = 0;
    for (const FuncId f : w.calls())
        lb += best_exec[f];

    AStarResult res;
    res.bytesPerNode = nodeBytes;

#ifndef JITSCHED_OBS_DISABLED
    // The result struct stays the deterministic, tested API; the
    // registry instruments are the monitoring surface, fed in one
    // bulk update per search on every exit path — nothing is added
    // to the expansion loop itself.
    struct ObsScope
    {
        const AStarResult &res;
        ~ObsScope()
        {
            obs::SolverMetrics &m = obs::SolverMetrics::get();
            m.astarSearches.add();
            m.astarNodesExpanded.add(res.nodesExpanded);
            m.astarNodesGenerated.add(res.nodesGenerated);
            m.astarNodesPruned.add(res.nodesPruned);
            m.astarEvaluations.add(res.evaluations);
            m.astarPeakMemoryBytes.setMax(
                static_cast<std::int64_t>(res.peakMemory));
            m.astarPeakArenaBytes.setMax(
                static_cast<std::int64_t>(res.peakArenaBytes));
        }
    } obs_scope{res};
#endif

    std::vector<Node> arena;
    std::vector<PrefixSimState> states;
    std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                        std::greater<OpenEntry>>
        open;
    std::size_t open_high_water = 0;

    const bool incremental = cfg.incrementalEval;
    const bool dedup = incremental && cfg.duplicateDetection &&
                       w.numFunctions() <= cfg.duplicateMaxFunctions;
    DuplicateTable table(dedup ? w.numFunctions() : 0);

    // Incumbent upper bound: the IAR schedule is feasible, so its
    // cost (in f units: makespan - lb) bounds the optimum from above.
    // Any generated node with f >= incumbent can be dropped — all of
    // its completions cost at least incumbent, which the retained
    // incumbent schedule already achieves.  Closing leaves below the
    // bound tighten it as the search runs.
    const bool inc_prune = cfg.incumbentPruning;
    Tick incumbent_f = maxTick;
    std::int64_t incumbent_node = -1; // arena leaf, -1 = IAR seed
    Schedule incumbent_schedule;
    if (inc_prune) {
        IarBound bound = iarUpperBound(w);
        // Price the seed through the search's own cost model so the
        // f units are exactly comparable.
        incumbent_f =
            evalComplete(w, bound.schedule.events(), best_exec);
        incumbent_schedule = std::move(bound.schedule);
        ++res.evaluations;
    }

    // Reconstruct the event prefix of a node by walking parents —
    // off the hot path now, used once to emit the winning schedule.
    auto prefix_of = [&](std::int64_t idx) {
        std::vector<CompileEvent> events;
        for (std::int64_t i = idx; i >= 0; i = arena[i].parent) {
            if (!arena[i].closed)
                events.push_back(arena[i].event);
        }
        std::reverse(events.begin(), events.end());
        return events;
    };

    auto account = [&]() {
        const std::uint64_t arena_mem = arena.size() * nodeBytes;
        open_high_water = std::max(open_high_water, open.size());
        const std::uint64_t open_mem =
            open_high_water * sizeof(OpenEntry);
        const std::uint64_t table_mem = dedup ? table.bytes() : 0;
        res.peakArenaBytes = std::max(res.peakArenaBytes, arena_mem);
        res.peakOpenBytes = std::max(res.peakOpenBytes, open_mem);
        res.peakTableBytes = std::max(res.peakTableBytes, table_mem);
        const std::uint64_t mem = arena_mem + open_mem + table_mem;
        res.peakMemory = std::max(res.peakMemory, mem);
        return mem <= cfg.memoryBudget;
    };

    // Root: empty prefix, f = 0.
    arena.push_back(Node{-1, CompileEvent{}, 0, true});
    states.push_back(evaluator.rootState());
    // The root is "closed" in the struct sense only to mark it as not
    // carrying an event; it is never a goal because no function is
    // compiled yet (unless there are no called functions at all).
    open.push({0, 0});
    ++res.nodesGenerated;

    // Per-function last compiled level of the node being expanded.
    // Rebuilt from the parent chain in O(depth) with an undo list —
    // no O(#functions) clear per expansion.
    std::vector<LevelSig> sig(w.numFunctions(), -1);
    std::vector<FuncId> touched;
    touched.reserve(64);

    while (!open.empty()) {
        const OpenEntry top = open.top();
        open.pop();
        const std::int64_t idx = top.index;

        // Nothing alive can beat the incumbent: the incumbent *is*
        // optimal.  (Generated nodes were pruned at f >= incumbent,
        // so this triggers only after a later incumbent improvement,
        // or when the pop is the incumbent leaf itself.)
        if (inc_prune && top.f >= incumbent_f) {
            res.status = AStarStatus::Optimal;
            res.schedule = incumbent_node >= 0
                               ? Schedule(prefix_of(incumbent_node))
                               : incumbent_schedule;
            res.makespan = lb + incumbent_f;
            return res;
        }

        // Is this a goal? A popped node marked closed with full
        // coverage is a complete schedule with minimal cost.
        if (arena[idx].closed && idx != 0) {
            res.status = AStarStatus::Optimal;
            res.schedule = Schedule(prefix_of(idx));
            res.makespan = lb + arena[idx].f;
            return res;
        }

        ++res.nodesExpanded;
        if (cfg.maxExpansions != 0 &&
            res.nodesExpanded > cfg.maxExpansions) {
            res.status = AStarStatus::ExpansionCap;
            return res;
        }

        // Signature along this path: walking child -> root, the
        // first event seen per function is its last (highest) level.
        std::size_t uncompiled = w.numCalledFunctions();
        for (std::int64_t i = idx; i > 0; i = arena[i].parent) {
            const CompileEvent &ev = arena[i].event;
            if (sig[ev.func] < 0) {
                sig[ev.func] = ev.level;
                touched.push_back(ev.func);
                --uncompiled;
            }
        }
        // By value: the child pushes below may reallocate `states`.
        const PrefixSimState pstate = states[idx];

        // The from-scratch path still materializes the event list.
        std::vector<CompileEvent> events;
        if (!incremental)
            events = prefix_of(idx);

        bool oom = false;

        // Child 1: close the schedule here (only if complete).
        if (uncompiled == 0) {
            ++res.evaluations;
            const Tick total =
                incremental ? evaluator.complete(pstate, sig.data())
                            : evalComplete(w, events, best_exec);
            if (inc_prune && total >= incumbent_f) {
                ++res.nodesPrunedIncumbent;
            } else {
                if (inc_prune) {
                    incumbent_f = total;
                    incumbent_node =
                        static_cast<std::int64_t>(arena.size());
                    ++res.incumbentImprovements;
                }
                arena.push_back(
                    Node{idx, CompileEvent{}, total, true});
                states.push_back(pstate);
                open.push({total, static_cast<std::int64_t>(
                                      arena.size() - 1)});
                ++res.nodesGenerated;
                oom = !account();
            }
        }

        // Children: append any (function, level) with level strictly
        // above the function's last compiled level.  The candidate
        // list is generated in a fixed order first so the costly
        // evaluations can fan out over the pool without changing
        // which node gets which arena index.
        std::vector<CompileEvent> children;
        if (!oom) {
            for (std::size_t i = 0; i < w.numFunctions(); ++i) {
                const auto f = static_cast<FuncId>(i);
                if (w.callCount(f) == 0)
                    continue;
                const auto &prof = w.function(f);
                for (int l = sig[i] + 1;
                     l < static_cast<int>(prof.numLevels()); ++l)
                    children.push_back({f, static_cast<Level>(l)});
            }
        }

        std::vector<PrefixStep> steps(children.size());
        res.evaluations += children.size();
        if (incremental) {
            // append() resumes the committed walk from the parent's
            // saved state: O(newly committed calls) per child, no
            // allocation, and pure — safe to fan out.
            auto eval_child = [&](std::size_t c) {
                steps[c] =
                    evaluator.append(pstate, sig.data(), children[c]);
            };
            if (cfg.pool != nullptr &&
                children.size() >= cfg.minParallelChildren) {
                cfg.pool->parallelFor(children.size(), eval_child);
            } else {
                for (std::size_t c = 0; c < children.size(); ++c)
                    eval_child(c);
            }
        } else {
            auto eval_child = [&](std::size_t c,
                                  std::vector<CompileEvent> &buf) {
                buf.push_back(children[c]);
                steps[c].f = evalPrefix(w, buf, best_exec).f();
                buf.pop_back();
            };
            if (cfg.pool != nullptr &&
                children.size() >= cfg.minParallelChildren) {
                cfg.pool->parallelFor(
                    children.size(), [&](std::size_t c) {
                        std::vector<CompileEvent> buf = events;
                        eval_child(c, buf);
                    });
            } else {
                for (std::size_t c = 0; c < children.size(); ++c)
                    eval_child(c, events);
            }
        }

        for (std::size_t c = 0; !oom && c < children.size(); ++c) {
            if (inc_prune && steps[c].f >= incumbent_f) {
                ++res.nodesPrunedIncumbent;
                continue;
            }
            if (dedup) {
                // Probe with the child's signature (event applied),
                // then restore the expansion's scratch.
                const FuncId f = children[c].func;
                const LevelSig saved = sig[f];
                sig[f] = children[c].level;
                const bool dup = table.seen(steps[c].state, sig.data());
                sig[f] = saved;
                if (dup) {
                    ++res.nodesPruned;
                    continue;
                }
            }
            arena.push_back(Node{idx, children[c], steps[c].f, false});
            states.push_back(steps[c].state);
            open.push({steps[c].f,
                       static_cast<std::int64_t>(arena.size() - 1)});
            ++res.nodesGenerated;
            oom = !account();
        }

        // Undo the signature scratch for the next expansion.
        for (const FuncId f : touched)
            sig[f] = -1;
        touched.clear();

        if (oom) {
            res.status = AStarStatus::OutOfMemory;
            return res;
        }
    }

    // Under incumbent pruning the open list can legitimately drain:
    // every surviving completion was cut at generation because it
    // could not beat the incumbent — which is therefore optimal.
    if (inc_prune) {
        res.status = AStarStatus::Optimal;
        res.schedule = incumbent_node >= 0
                           ? Schedule(prefix_of(incumbent_node))
                           : incumbent_schedule;
        res.makespan = lb + incumbent_f;
        return res;
    }

    // Exhausted the space without a goal: cannot happen for workloads
    // with called functions, but keep the invariant visible.
    JITSCHED_PANIC("A* open list exhausted without a goal");
}

} // namespace jitsched
