#include "core/astar_par.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/iar.hh"
#include "core/prefix_sim.hh"
#include "core/search_util.hh"
#include "exec/mpsc_queue.hh"
#include "obs/instruments.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Arena node of one worker.  Unlike the sequential arena, a parent
 * may live on another worker, so the reference is (worker, index);
 * the root is node (0, 0) and is the only node without an event.
 */
struct ParNode
{
    std::int32_t parentWorker = -1;
    std::int64_t parentIndex = -1;
    CompileEvent event;
    Tick f = 0;
};

/** Same ordering contract as the sequential open list. */
struct OpenEntry
{
    Tick f;
    std::int64_t index;

    bool
    operator>(const OpenEntry &other) const
    {
        if (f != other.f)
            return f > other.f;
        return index < other.index;
    }
};

/**
 * A generated node in flight to its owning worker.  It carries its
 * full signature (WITH the generating event applied): the owner
 * cannot walk a cross-worker parent chain while the parent's arena
 * is being appended to, so every expansion reads the signature from
 * its own node instead of rebuilding it from ancestors.
 */
struct NodeMsg
{
    PrefixSimState state;
    std::vector<LevelSig> sig;
    Tick f = 0;
    CompileEvent event;
    std::int32_t parentWorker = -1;
    std::int64_t parentIndex = -1;
    std::uint32_t uncompiled = 0;
};

/** Per-worker private search state; touched only by its owner. */
struct Worker
{
    explicit Worker(std::size_t dedup_functions)
        : table(dedup_functions)
    {
    }

    std::vector<ParNode> arena;
    std::vector<PrefixSimState> states;
    std::vector<LevelSig> sigs;            ///< arena.size() * numF
    std::vector<std::uint32_t> uncompiled; ///< per arena node
    std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                        std::greater<OpenEntry>>
        open;
    DuplicateTable table;

    std::uint64_t expanded = 0;
    std::uint64_t generated = 0;
    std::uint64_t prunedDup = 0;
    std::uint64_t prunedInc = 0;
    std::uint64_t routed = 0;
    std::uint64_t evals = 0;
    std::uint64_t maxInboxDepth = 0;

    std::size_t openHighWater = 0;
    std::uint64_t peakArena = 0;
    std::uint64_t peakOpen = 0;
    std::uint64_t peakTable = 0;
};

/** State shared by every worker. */
struct Shared
{
    const Workload &w;
    const AStarConfig &cfg;
    const PrefixEvaluator evaluator;
    std::size_t numWorkers;
    std::size_t numF;
    bool dedup;
    Tick lb = 0;
    std::uint64_t nodeBytes = 0;
    Clock::time_point t0;

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::unique_ptr<MpscQueue<NodeMsg>>> inboxes;

    /**
     * Nodes generated but not yet fully expanded or pruned.  A sender
     * increments for each child *before* delivering it and
     * decrements for the expanded parent only afterwards, so the
     * counter can never transiently hit zero while work exists; once
     * zero it stays zero — quiescence, and the incumbent is optimal.
     */
    std::atomic<std::int64_t> live{0};

    /** Best-known complete cost in f units (seeded from IAR). */
    std::atomic<Tick> incumbentF{0};

    /** Improvement bookkeeping, off the hot path. */
    std::mutex incMutex;
    std::int32_t bestWorker = -1; ///< guarded by incMutex
    std::int64_t bestIndex = -1;  ///< guarded by incMutex
    std::uint64_t improvements = 0;
    std::vector<AStarResult::IncumbentEvent> trail;

    /** 0 = keep running; otherwise the AStarStop cause. */
    std::atomic<int> stop{0};

    std::atomic<std::uint64_t> expansions{0};

    /** Per-worker accounted bytes (relaxed; budget enforcement). */
    std::vector<std::atomic<std::uint64_t>> memBytes;

    Shared(const Workload &workload, const AStarConfig &config)
        : w(workload), cfg(config), evaluator(workload)
    {
    }
};

void
raiseStop(Shared &sh, AStarStop cause)
{
    int expected = 0;
    sh.stop.compare_exchange_strong(expected,
                                    static_cast<int>(cause),
                                    std::memory_order_relaxed);
}

double
secondsSince(const Clock::time_point &t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Update worker memory peaks; raise the Memory stop on overrun. */
void
account(Shared &sh, Worker &me, std::uint32_t self)
{
    const std::uint64_t arena_mem = me.arena.size() * sh.nodeBytes;
    me.openHighWater = std::max(me.openHighWater, me.open.size());
    const std::uint64_t open_mem =
        me.openHighWater * sizeof(OpenEntry);
    const std::uint64_t table_mem = sh.dedup ? me.table.bytes() : 0;
    me.peakArena = std::max(me.peakArena, arena_mem);
    me.peakOpen = std::max(me.peakOpen, open_mem);
    me.peakTable = std::max(me.peakTable, table_mem);
    const std::uint64_t mine = arena_mem + open_mem + table_mem;
    sh.memBytes[self].store(mine, std::memory_order_relaxed);

    std::uint64_t total = 0;
    for (const auto &b : sh.memBytes)
        total += b.load(std::memory_order_relaxed);
    if (total > sh.cfg.memoryBudget)
        raiseStop(sh, AStarStop::Memory);
}

/**
 * Deliver one generated node into the owner's structures: duplicate
 * and incumbent checks, then store + enqueue.  Runs on the owning
 * worker only.  The caller has already counted the node in sh.live;
 * pruning releases that count here.
 */
void
receiveNode(Shared &sh, Worker &me, std::uint32_t self,
            const PrefixSimState &state, const LevelSig *sig,
            Tick f, CompileEvent event, std::int32_t parent_worker,
            std::int64_t parent_index, std::uint32_t uncompiled)
{
    if (f >= sh.incumbentF.load(std::memory_order_relaxed)) {
        ++me.prunedInc;
        sh.live.fetch_sub(1, std::memory_order_acq_rel);
        return;
    }
    if (sh.dedup && me.table.seen(state, sig)) {
        ++me.prunedDup;
        sh.live.fetch_sub(1, std::memory_order_acq_rel);
        return;
    }
    const auto idx = static_cast<std::int64_t>(me.arena.size());
    me.arena.push_back(
        ParNode{parent_worker, parent_index, event, f});
    me.states.push_back(state);
    me.sigs.insert(me.sigs.end(), sig, sig + sh.numF);
    me.uncompiled.push_back(uncompiled);
    me.open.push({f, idx});
    ++me.generated;
    account(sh, me, self);
}

/** Record a closed leaf that beats the incumbent (raced re-check). */
void
tryImprove(Shared &sh, std::uint32_t self, std::int64_t node_index,
           Tick total)
{
    std::lock_guard<std::mutex> g(sh.incMutex);
    if (total >= sh.incumbentF.load(std::memory_order_relaxed))
        return;
    sh.incumbentF.store(total, std::memory_order_relaxed);
    sh.bestWorker = static_cast<std::int32_t>(self);
    sh.bestIndex = node_index;
    ++sh.improvements;
    sh.trail.push_back({secondsSince(sh.t0), sh.lb + total,
                        static_cast<std::uint32_t>(self)});
}

void
expandNode(Shared &sh, Worker &me, std::uint32_t self,
           std::int64_t idx, std::vector<LevelSig> &sig_scratch,
           std::vector<LevelSig> &child_sig)
{
    ++me.expanded;
    const std::uint64_t total_expanded =
        sh.expansions.fetch_add(1, std::memory_order_relaxed) + 1;
    if (sh.cfg.maxExpansions != 0 &&
        total_expanded > sh.cfg.maxExpansions)
        raiseStop(sh, AStarStop::Expansions);

    // Copies: self-delivered children below reallocate the vectors.
    const PrefixSimState pstate = me.states[idx];
    const std::uint32_t uncompiled = me.uncompiled[idx];
    sig_scratch.assign(
        me.sigs.begin() + idx * static_cast<std::int64_t>(sh.numF),
        me.sigs.begin() +
            (idx + 1) * static_cast<std::int64_t>(sh.numF));

    // Closing evaluation: leaves are priced inline and never stored
    // — an improvement tightens the global incumbent immediately,
    // which is what makes the search anytime.
    if (uncompiled == 0) {
        ++me.evals;
        const Tick total =
            sh.evaluator.complete(pstate, sig_scratch.data());
        if (total < sh.incumbentF.load(std::memory_order_relaxed))
            tryImprove(sh, self, idx, total);
        else
            ++me.prunedInc;
    }

    const Workload &w = sh.w;
    for (std::size_t i = 0; i < sh.numF; ++i) {
        const auto func = static_cast<FuncId>(i);
        if (w.callCount(func) == 0)
            continue;
        const auto &prof = w.function(func);
        for (int l = sig_scratch[i] + 1;
             l < static_cast<int>(prof.numLevels()); ++l) {
            const CompileEvent ev{func, static_cast<Level>(l)};
            ++me.evals;
            const PrefixStep step =
                sh.evaluator.append(pstate, sig_scratch.data(), ev);
            if (step.f >=
                sh.incumbentF.load(std::memory_order_relaxed)) {
                ++me.prunedInc;
                continue;
            }
            child_sig = sig_scratch;
            child_sig[i] = static_cast<LevelSig>(l);
            const std::uint32_t child_unc =
                uncompiled - (sig_scratch[i] < 0 ? 1u : 0u);
            const std::uint32_t owner = static_cast<std::uint32_t>(
                DuplicateTable::stateHash(step.state,
                                          child_sig.data(), sh.numF) %
                sh.numWorkers);

            // Count the child live BEFORE delivering it (and before
            // this parent's own decrement) — the termination
            // counter's core invariant.
            sh.live.fetch_add(1, std::memory_order_acq_rel);
            if (owner == self) {
                receiveNode(sh, me, self, step.state,
                            child_sig.data(), step.f, ev,
                            static_cast<std::int32_t>(self), idx,
                            child_unc);
            } else {
                sh.inboxes[owner]->push(
                    NodeMsg{step.state, child_sig, step.f, ev,
                            static_cast<std::int32_t>(self), idx,
                            child_unc});
                ++me.routed;
                me.maxInboxDepth = std::max<std::uint64_t>(
                    me.maxInboxDepth, sh.inboxes[owner]->depth());
            }
        }
    }

    // The expanded node is no longer live; its children are.
    sh.live.fetch_sub(1, std::memory_order_acq_rel);
}

void
workerMain(Shared &sh, std::uint32_t self)
{
    Worker &me = *sh.workers[self];
    MpscQueue<NodeMsg> &inbox = *sh.inboxes[self];
    std::vector<LevelSig> sig_scratch(sh.numF);
    std::vector<LevelSig> child_sig(sh.numF);
    NodeMsg msg;

    const bool deadline_set = sh.cfg.anytimeDeadlineMs > 0;
    const Clock::time_point deadline =
        sh.t0 +
        std::chrono::milliseconds(
            deadline_set ? sh.cfg.anytimeDeadlineMs : 0);

    for (;;) {
        // Drain the inbox first so the open list always reflects
        // every delivered node before the next best-first pop.
        while (inbox.pop(msg)) {
            receiveNode(sh, me, self, msg.state, msg.sig.data(),
                        msg.f, msg.event, msg.parentWorker,
                        msg.parentIndex, msg.uncompiled);
        }

        if (sh.stop.load(std::memory_order_relaxed) != 0)
            return;
        if (deadline_set && Clock::now() >= deadline) {
            raiseStop(sh, AStarStop::Deadline);
            return;
        }

        if (me.open.empty()) {
            // Quiescent?  live == 0 can only be read after every
            // in-flight child was delivered and pruned/expanded, so
            // a zero here is global and final.
            if (sh.live.load(std::memory_order_acquire) == 0)
                return;
            std::this_thread::yield();
            continue;
        }

        // The whole open list is dominated by the incumbent: the
        // top is the minimum, so every entry has f >= incumbent and
        // none can lead to an improvement.  Drop them all — this is
        // how a pruned search quiesces.
        const Tick inc =
            sh.incumbentF.load(std::memory_order_relaxed);
        if (me.open.top().f >= inc) {
            const auto dropped =
                static_cast<std::int64_t>(me.open.size());
            me.prunedInc += static_cast<std::uint64_t>(dropped);
            me.open = {};
            sh.live.fetch_sub(dropped, std::memory_order_acq_rel);
            continue;
        }

        const std::int64_t idx = me.open.top().index;
        me.open.pop();
        expandNode(sh, me, self, idx, sig_scratch, child_sig);
    }
}

} // anonymous namespace

AStarResult
aStarParallel(const Workload &w, const AStarConfig &cfg)
{
    if (w.numCalls() == 0)
        JITSCHED_FATAL("aStarParallel: empty call sequence");

    std::size_t num_workers = cfg.threads;
    if (num_workers == 0) {
        num_workers = std::thread::hardware_concurrency();
        if (num_workers == 0)
            num_workers = 1;
    }

    Shared sh(w, cfg);
    sh.numWorkers = num_workers;
    sh.numF = w.numFunctions();
    sh.dedup = cfg.duplicateDetection &&
               sh.numF <= cfg.duplicateMaxFunctions;
    sh.nodeBytes = sizeof(ParNode) + sizeof(PrefixSimState) +
                   sizeof(std::uint32_t) +
                   sh.numF * sizeof(LevelSig) + 16;
    sh.t0 = Clock::now();

    const std::vector<Tick> &best_exec = sh.evaluator.bestExec();
    for (const FuncId f : w.calls())
        sh.lb += best_exec[f];

    AStarResult res;
    res.bytesPerNode = sh.nodeBytes;

    // Incumbent seed: the IAR schedule priced through the search's
    // own cost model, so f units match exactly.
    IarBound seed = iarUpperBound(w);
    const Tick seed_f =
        evalComplete(w, seed.schedule.events(), best_exec);
    sh.incumbentF.store(seed_f, std::memory_order_relaxed);
    sh.trail.push_back({0.0, sh.lb + seed_f, 0});
    res.evaluations = 1;

    sh.workers.reserve(num_workers);
    sh.inboxes.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
        sh.workers.push_back(
            std::make_unique<Worker>(sh.dedup ? sh.numF : 0));
        sh.inboxes.push_back(
            std::make_unique<MpscQueue<NodeMsg>>());
    }
    sh.memBytes =
        std::vector<std::atomic<std::uint64_t>>(num_workers);

    // Root (empty prefix) lives on worker 0 at index 0 — the one
    // node reconstruction recognizes as event-less.
    {
        Worker &w0 = *sh.workers[0];
        w0.arena.push_back(ParNode{-1, -1, CompileEvent{}, 0});
        w0.states.push_back(sh.evaluator.rootState());
        w0.sigs.assign(sh.numF, LevelSig{-1});
        w0.uncompiled.push_back(
            static_cast<std::uint32_t>(w.numCalledFunctions()));
        w0.open.push({0, 0});
        w0.generated = 1;
        account(sh, w0, 0);
    }
    sh.live.store(1, std::memory_order_relaxed);

    {
        std::vector<std::thread> threads;
        threads.reserve(num_workers);
        for (std::size_t i = 0; i < num_workers; ++i)
            threads.emplace_back(
                workerMain, std::ref(sh),
                static_cast<std::uint32_t>(i));
        for (std::thread &t : threads)
            t.join();
    }

    // ---- Single-threaded epilogue (joins synchronize all state).

    const Tick incumbent_f =
        sh.incumbentF.load(std::memory_order_relaxed);
    const auto stop_cause =
        static_cast<AStarStop>(sh.stop.load(
            std::memory_order_relaxed));

    // Remaining frontier: open lists plus undelivered messages.
    // Every unexplored complete schedule sits below one of these
    // nodes (or below an incumbent-pruned node, bounded by the
    // incumbent itself), so min-alive f bounds the optimum from
    // below.
    Tick min_alive = maxTick;
    for (std::size_t i = 0; i < num_workers; ++i) {
        Worker &wk = *sh.workers[i];
        if (!wk.open.empty())
            min_alive = std::min(min_alive, wk.open.top().f);
        NodeMsg msg;
        while (sh.inboxes[i]->pop(msg))
            min_alive = std::min(min_alive, msg.f);
    }
    min_alive = std::min(min_alive, incumbent_f);

    if (stop_cause == AStarStop::None) {
        res.status = AStarStatus::Optimal;
        res.gapBound = 0;
    } else {
        res.status = AStarStatus::Incumbent;
        res.gapBound = incumbent_f - min_alive;
    }
    res.stopCause = stop_cause;
    res.makespan = sh.lb + incumbent_f;

    if (sh.bestWorker < 0) {
        // No leaf beat the seed: the IAR schedule is the answer.
        res.schedule = std::move(seed.schedule);
    } else {
        std::vector<CompileEvent> events;
        std::int32_t wk = sh.bestWorker;
        std::int64_t ix = sh.bestIndex;
        while (!(wk == 0 && ix == 0)) {
            const ParNode &n =
                sh.workers[static_cast<std::size_t>(wk)]
                    ->arena[static_cast<std::size_t>(ix)];
            events.push_back(n.event);
            wk = n.parentWorker;
            ix = n.parentIndex;
        }
        std::reverse(events.begin(), events.end());
        res.schedule = Schedule(std::move(events));
    }

    res.incumbentImprovements = sh.improvements;
    res.incumbentTrail = std::move(sh.trail);
    res.workerExpansions.resize(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
        const Worker &wk = *sh.workers[i];
        res.workerExpansions[i] = wk.expanded;
        res.nodesExpanded += wk.expanded;
        res.nodesGenerated += wk.generated;
        res.nodesPruned += wk.prunedDup;
        res.nodesPrunedIncumbent += wk.prunedInc;
        res.nodesRouted += wk.routed;
        res.evaluations += wk.evals;
        res.maxInboxDepth =
            std::max(res.maxInboxDepth, wk.maxInboxDepth);
        res.peakArenaBytes += wk.peakArena;
        res.peakOpenBytes += wk.peakOpen;
        res.peakTableBytes += wk.peakTable;
    }
    // Sum of per-worker peaks: a (slight) over-estimate of the true
    // simultaneous high-water mark, consistent with what the budget
    // check enforces.
    res.peakMemory =
        res.peakArenaBytes + res.peakOpenBytes + res.peakTableBytes;

#ifndef JITSCHED_OBS_DISABLED
    {
        obs::SolverMetrics &m = obs::SolverMetrics::get();
        m.astarParSearches.add();
        m.astarParNodesExpanded.add(res.nodesExpanded);
        m.astarParNodesGenerated.add(res.nodesGenerated);
        m.astarParNodesPruned.add(res.nodesPruned);
        m.astarParNodesPrunedIncumbent.add(res.nodesPrunedIncumbent);
        m.astarParNodesRouted.add(res.nodesRouted);
        m.astarParIncumbentImprovements.add(
            res.incumbentImprovements);
        m.astarParEvaluations.add(res.evaluations);
        m.astarParPeakMemoryBytes.setMax(
            static_cast<std::int64_t>(res.peakMemory));
        m.astarParMaxInboxDepth.setMax(
            static_cast<std::int64_t>(res.maxInboxDepth));
        m.astarParWorkers.set(
            static_cast<std::int64_t>(num_workers));
    }
#endif

    return res;
}

} // namespace jitsched
