/**
 * @file
 * Single-level approximations (Sec. 5.1, "Single-Level
 * Approximation").
 *
 * When every function is compiled exactly once and no recompilation
 * happens, the best schedule orders the compilations by first
 * appearance in the call sequence.  Two variants are studied:
 *  - base level only ("base-level" in Fig. 5): everything at its most
 *    responsive level;
 *  - optimizing level only ("optimizing-level" in Fig. 5): everything
 *    at its cost-effective candidate level.
 */

#ifndef JITSCHED_CORE_SINGLE_LEVEL_HH
#define JITSCHED_CORE_SINGLE_LEVEL_HH

#include <vector>

#include "core/candidate_levels.hh"
#include "core/schedule.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Every called function once at candidate `low`, first-call order. */
Schedule baseLevelSchedule(const Workload &w,
                           const std::vector<CandidatePair> &cands);

/** Every called function once at candidate `high`, first-call order. */
Schedule optimizingLevelSchedule(const Workload &w,
                                 const std::vector<CandidatePair> &cands);

/**
 * Every called function once at a fixed level (clamped to the
 * function's highest), first-call order.
 */
Schedule uniformLevelSchedule(const Workload &w, Level level);

} // namespace jitsched

#endif // JITSCHED_CORE_SINGLE_LEVEL_HH
