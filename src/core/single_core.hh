/**
 * @file
 * Optimal scheduling for the single-core case (Sec. 4.1, Theorem 1).
 *
 * With one core, compilation and execution serialize, so the
 * make-span is simply total compile time plus total execution time.
 * Any schedule that compiles every called function exactly once at
 * its most cost-effective level minimizes that sum; order is
 * irrelevant.  This module builds such a schedule and evaluates the
 * single-core make-span of arbitrary schedules so the theorem can be
 * checked empirically.
 */

#ifndef JITSCHED_CORE_SINGLE_CORE_HH
#define JITSCHED_CORE_SINGLE_CORE_HH

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * Theorem-1 schedule: every called function once, at its most
 * cost-effective level (true times), in first-appearance order (any
 * order would do; first-appearance matches on-demand compilation).
 */
Schedule singleCoreOptimalSchedule(const Workload &w);

/**
 * Make-span of a schedule when compilation and execution share one
 * core: the machine is always busy, so the make-span is the sum of
 * all compile times plus the execution time of every call under the
 * "latest compilation wins" rule, with compilations inserted
 * on-demand: a compile event runs immediately before the first call
 * that could use it.
 *
 * For the purposes of Theorem 1 the placement detail does not matter
 * — any valid interleaving has the same sum — so this evaluates the
 * sum directly, using for each call the best version the schedule
 * prefix up to that call's position provides.  With single-compile
 * schedules this is exactly c(l_f) summed once per function plus
 * e(l_f) per call.
 */
Tick singleCoreMakespan(const Workload &w, const Schedule &s);

} // namespace jitsched

#endif // JITSCHED_CORE_SINGLE_CORE_HH
