#include "core/brute_force.hh"

#include <algorithm>

#include "core/prefix_sim.hh"
#include "core/search_util.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

class Searcher
{
  public:
    Searcher(const Workload &w, const BruteForceConfig &cfg)
        : w_(w), cfg_(cfg), eval_(w)
    {
        lb_ = 0;
        for (const FuncId f : w.calls())
            lb_ += eval_.bestExec()[f];
    }

    BruteForceResult
    run()
    {
        // Seed the incumbent with a trivial valid schedule so pruning
        // has a bound from the start: everything at the highest
        // level, first-call order.
        std::vector<CompileEvent> seed;
        for (const FuncId f : w_.firstAppearanceOrder())
            seed.push_back({f, w_.function(f).highestLevel()});
        best_cost_ = evalComplete(w_, seed, eval_.bestExec());
        best_ = seed;

        sig_.assign(w_.numFunctions(), -1);
        prefix_.clear();
        uncompiled_ = w_.numCalledFunctions();
        truncated_ = false;
        dfs(eval_.rootState(), eval_.rootF());

        BruteForceResult res;
        res.complete = !truncated_;
        res.schedule = Schedule(best_);
        res.makespan = lb_ + best_cost_;
        res.nodesVisited = nodes_;
        return res;
    }

  private:
    void
    dfs(const PrefixSimState &state, Tick f_value)
    {
        ++nodes_;
        if (cfg_.maxNodes != 0 && nodes_ > cfg_.maxNodes) {
            truncated_ = true;
            return;
        }

        // Committed cost of this prefix bounds every completion.
        if (f_value >= best_cost_)
            return;

        // This node doubles as a leaf when every called function has
        // been compiled: evaluate the complete schedule.
        if (uncompiled_ == 0) {
            const Tick total = eval_.complete(state, sig_.data());
            if (total < best_cost_) {
                best_cost_ = total;
                best_ = prefix_;
            }
        }

        // Expand: any function at any level above its last compile.
        // Each child's cost resumes the committed walk from this
        // node's saved state instead of replaying the call sequence.
        for (std::size_t i = 0; i < w_.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (w_.callCount(f) == 0)
                continue;
            const auto &prof = w_.function(f);
            const int from = sig_[i] + 1;
            for (int l = from;
                 l < static_cast<int>(prof.numLevels()); ++l) {
                const CompileEvent ev{f, static_cast<Level>(l)};
                const PrefixStep step =
                    eval_.append(state, sig_.data(), ev);

                const LevelSig saved = sig_[i];
                sig_[i] = static_cast<LevelSig>(l);
                if (saved < 0)
                    --uncompiled_;
                prefix_.push_back(ev);

                dfs(step.state, step.f);

                prefix_.pop_back();
                sig_[i] = saved;
                if (saved < 0)
                    ++uncompiled_;
                if (truncated_)
                    return;
            }
        }
    }

    const Workload &w_;
    const BruteForceConfig &cfg_;
    PrefixEvaluator eval_;
    Tick lb_ = 0;

    std::vector<CompileEvent> prefix_;
    std::vector<LevelSig> sig_;
    std::size_t uncompiled_ = 0;

    std::vector<CompileEvent> best_;
    Tick best_cost_ = 0;
    std::uint64_t nodes_ = 0;
    bool truncated_ = false;
};

} // anonymous namespace

BruteForceResult
bruteForceOptimal(const Workload &w, const BruteForceConfig &cfg)
{
    if (w.numCalls() == 0)
        JITSCHED_FATAL("bruteForceOptimal: empty call sequence");
    return Searcher(w, cfg).run();
}

} // namespace jitsched
