/**
 * @file
 * Incremental evaluation of compile-sequence prefixes.
 *
 * The exact solvers (A* and brute force) spend nearly all of their
 * time in evalPrefix(), which replays the whole call sequence from
 * t = 0 for every child of every expanded node — O(|window| + depth)
 * work plus one heap-allocated version table per evaluation.  This
 * module exploits the structure search_util.cc already establishes:
 * committed costs are monotone along a path, and the calls that start
 * strictly before the prefix's compile window never change when the
 * prefix is extended (an appended event completes strictly later than
 * every event before it).  A node therefore only needs to remember
 * *where the committed walk stopped* — a compact PrefixSimState — and
 * appending one CompileEvent resumes the walk from that position
 * instead of replaying it.
 *
 * The key simplification that makes the resumed walk allocation-free:
 * every call processed during a resume starts at or after the parent
 * prefix's compile end (the parent's walk stopped at the first call
 * that did not), so *all* of the parent's compiled versions are
 * already available to it.  The resumed walk thus never needs the
 * per-version completion times — only the per-function last compiled
 * level (the signature the searches maintain anyway) and the single
 * appended event.  Along one root-to-leaf path the total work drops
 * from O(|calls| * depth) to O(|calls| + depth).
 *
 * On top of the state, DuplicateTable implements exact
 * duplicate-state pruning for A*: two prefixes with the same
 * signature, resume position, pinned resume clock and compile end
 * have *identical* sets of completion costs, so only the first needs
 * to be kept.  See DESIGN.md ("Incremental prefix evaluation") for
 * why the stronger <=-dominance rule is unsound in this model.
 */

#ifndef JITSCHED_CORE_PREFIX_SIM_HH
#define JITSCHED_CORE_PREFIX_SIM_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * Resumable state of the committed-cost walk over one prefix.
 *
 * Invariants (established by PrefixEvaluator::append):
 *  - calls [0, resumeCall) started strictly before compileEnd and
 *    their bubble/extra-execution costs are folded into bubbles and
 *    extraExec; extending the prefix can never change them;
 *  - `now` is the execution clock after the last processed call;
 *  - when the resume call's function is compiled by the prefix,
 *    `nextStart` is its pinned start time max(now, first version
 *    ready) — later compiles cannot make the first version available
 *    sooner, so the start is committed even though the call is not;
 *  - when the resume call's function is *not* compiled (or the walk
 *    consumed every call), nextStart == now.
 */
struct PrefixSimState
{
    /** Index of the first call not committed by this prefix. */
    std::uint32_t resumeCall = 0;

    /** Execution clock after the last committed call. */
    Tick now = 0;

    /** Pinned start of the resume call (see invariants above). */
    Tick nextStart = 0;

    /** Bubble time committed by the processed calls. */
    Tick bubbles = 0;

    /** Extra execution time committed by the processed calls. */
    Tick extraExec = 0;

    /** End of the prefix's compilations (single compile core). */
    Tick compileEnd = 0;

    bool operator==(const PrefixSimState &) const = default;
};

/** Result of appending one compile event to a prefix. */
struct PrefixStep
{
    /** Committed state of the extended prefix. */
    PrefixSimState state;

    /**
     * f(v) = b(v) + e(v) of the extended prefix, including the
     * committed-wait strengthening of search_util.cc — bit-identical
     * to evalPrefix(events + {event}).f().
     */
    Tick f = 0;
};

/**
 * Per-function last compiled level of a prefix, -1 for "never
 * compiled".  The searches maintain this signature incrementally; the
 * evaluator only reads it.
 */
using LevelSig = std::int16_t;

/**
 * Incremental prefix evaluator over one workload.
 *
 * Stateless between calls (append() and complete() are const and
 * allocation-free), so one instance can serve concurrent child
 * evaluations fanned out over a thread pool.
 */
class PrefixEvaluator
{
  public:
    /** @param w workload; must outlive the evaluator */
    explicit PrefixEvaluator(const Workload &w);

    /** State of the empty prefix. */
    PrefixSimState rootState() const { return {}; }

    /**
     * f() of the empty prefix: the committed wait of the first call
     * for the cheapest possible compile of its function
     * (evalPrefix(w, {}, best).f()).
     */
    Tick rootF() const;

    /**
     * Evaluate the prefix obtained by appending `event` to the prefix
     * described by (`parent`, `sig`).
     *
     * @param parent committed state of the parent prefix
     * @param sig    parent signature (WITHOUT `event` applied),
     *               indexed by FuncId over all functions
     * @param event  appended compile event; event.level must be
     *               strictly above sig[event.func] (not checked — the
     *               searches construct children that way)
     */
    PrefixStep append(const PrefixSimState &parent, const LevelSig *sig,
                      CompileEvent event) const;

    /**
     * Total cost (bubbles + extra execution over the whole run) of
     * the *complete* prefix described by (`state`, `sig`) —
     * bit-identical to evalComplete() on its event list.  Every
     * called function must be compiled (sig >= 0); panics otherwise.
     */
    Tick complete(const PrefixSimState &state, const LevelSig *sig) const;

    /** Per-function execution times at the highest level. */
    const std::vector<Tick> &bestExec() const { return best_exec_; }

    const Workload &workload() const { return *w_; }

  private:
    const Workload *w_;
    std::vector<Tick> best_exec_;
};

/**
 * Exact duplicate-state table for the A* search.
 *
 * Key: (per-function last-level signature, resume call index, pinned
 * resume clock, compile end).  Two generated nodes with equal keys
 * have equal f values and identical completion-cost sets — any
 * schedule reachable from one is matched, tick for tick, by a
 * schedule reachable from the other — so dropping every instance
 * after the first preserves optimality unconditionally.  (The
 * committed bubbles/extraExec split may differ between duplicates,
 * but their sum at every completion is equal; see DESIGN.md.)
 */
class DuplicateTable
{
  public:
    /** @param num_functions signature width, in functions */
    explicit DuplicateTable(std::size_t num_functions);

    /**
     * Record a generated state; returns true when an identical state
     * was already recorded (the caller should discard the node).
     *
     * @param s   committed state of the generated prefix
     * @param sig its signature (WITH the generating event applied)
     */
    bool seen(const PrefixSimState &s, const LevelSig *sig);

    /**
     * Hash of the exact dedup key (signature, resume call, pinned
     * resume clock, compile end) — the same function the table uses
     * internally.  The parallel search (core/astar_par.cc) routes
     * each generated node to the worker owning this hash, which is
     * what makes per-worker duplicate tables exact: two duplicates
     * always hash to, and are deduplicated by, the same worker.
     */
    static std::uint64_t stateHash(const PrefixSimState &s,
                                   const LevelSig *sig,
                                   std::size_t num_functions);

    /** Number of distinct states recorded. */
    std::size_t size() const { return entries_.size(); }

    /** Accounted memory footprint in bytes. */
    std::uint64_t bytes() const;

  private:
    struct Entry
    {
        std::uint32_t resumeCall;
        Tick clock; ///< nextStart (== now when not pinned)
        Tick compileEnd;
        std::vector<LevelSig> sig;

        bool
        operator==(const Entry &o) const
        {
            return resumeCall == o.resumeCall && clock == o.clock &&
                   compileEnd == o.compileEnd && sig == o.sig;
        }
    };

    struct EntryHash
    {
        std::size_t operator()(const Entry &e) const;
    };

    std::size_t num_functions_;
    std::unordered_set<Entry, EntryHash> entries_;
};

} // namespace jitsched

#endif // JITSCHED_CORE_PREFIX_SIM_HH
