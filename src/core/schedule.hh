/**
 * @file
 * Compilation schedules: the object the whole study is about.
 *
 * A Schedule is an ordered list of compilation events (function,
 * level).  The compilation thread(s) process the events in this order;
 * the order thus determines when each compiled version of each
 * function becomes available to the execution thread (Sec. 3).
 */

#ifndef JITSCHED_CORE_SCHEDULE_HH
#define JITSCHED_CORE_SCHEDULE_HH

#include <string>
#include <vector>

#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** One compilation event: compile function `func` at level `level`. */
struct CompileEvent
{
    FuncId func = invalidFuncId;
    Level level = 0;

    bool operator==(const CompileEvent &) const = default;
};

/**
 * An ordered compilation schedule.
 *
 * Thin wrapper over a vector of CompileEvents with the helpers every
 * scheduler needs.  A schedule is *valid* for a workload when
 *  - every event names an existing function and level,
 *  - every called function is compiled at least once, and
 *  - per function, levels appear in strictly increasing order (a
 *    lower-level compile after a higher-level one can never be part
 *    of an optimal schedule under the paper's assumptions, and the
 *    paper's search tree forbids it; we treat it as malformed).
 */
class Schedule
{
  public:
    Schedule() = default;
    explicit Schedule(std::vector<CompileEvent> events)
        : events_(std::move(events))
    {
    }

    const std::vector<CompileEvent> &events() const { return events_; }
    std::vector<CompileEvent> &events() { return events_; }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    const CompileEvent &operator[](std::size_t i) const
    {
        return events_[i];
    }

    void append(FuncId f, Level l) { events_.push_back({f, l}); }

    /**
     * Validate against a workload.
     * @param error if non-null, receives a description of the first
     *              problem found.
     * @return true when the schedule is valid.
     */
    bool validate(const Workload &w, std::string *error = nullptr) const;

    /** Sum of all compilation times (single-core compile makespan). */
    Tick totalCompileTime(const Workload &w) const;

    /** Render as e.g. "C1(f0) C0(f2) ..." for diagnostics. */
    std::string toString(const Workload &w) const;

    bool operator==(const Schedule &) const = default;

  private:
    std::vector<CompileEvent> events_;
};

} // namespace jitsched

#endif // JITSCHED_CORE_SCHEDULE_HH
