#include "core/prefix_sim.hh"

#include <algorithm>

#include "core/search_util.hh"
#include "support/logging.hh"

namespace jitsched {

PrefixEvaluator::PrefixEvaluator(const Workload &w)
    : w_(&w), best_exec_(bestExecTimes(w))
{
}

Tick
PrefixEvaluator::rootF() const
{
    if (w_->numCalls() == 0)
        return 0;
    const FuncId f = w_->calls().front();
    return std::max<Tick>(0, w_->function(f).compileTime(0));
}

PrefixStep
PrefixEvaluator::append(const PrefixSimState &parent,
                        const LevelSig *sig, CompileEvent event) const
{
    PrefixStep out;
    PrefixSimState &s = out.state;
    s = parent;
    s.compileEnd = parent.compileEnd +
                   w_->function(event.func).compileTime(event.level);

    const std::vector<FuncId> &calls = w_->calls();
    const auto n = static_cast<std::uint32_t>(calls.size());
    Tick penalty = 0;

    std::uint32_t i = s.resumeCall;
    for (; i < n; ++i) {
        const FuncId f = calls[i];
        const LevelSig base = sig[f];

        if (base < 0 && f != event.func) {
            // Still uncompiled: any extension compiles f no earlier
            // than the new compile end plus f's cheapest compile
            // time, so at least that much wait is committed.
            penalty = std::max<Tick>(
                0, s.compileEnd + w_->function(f).compileTime(0) -
                       s.now);
            s.nextStart = s.now;
            break;
        }

        Tick start;
        if (base < 0) {
            // f == event.func receiving its first version, which
            // completes exactly at the new compile end.
            start = std::max(s.now, s.compileEnd);
        } else if (i == parent.resumeCall) {
            // The parent already pinned this call's start (later
            // compiles cannot make the first version available
            // sooner).
            start = parent.nextStart;
        } else {
            // Every call processed during a resume starts at or
            // after the parent's compile end, so all of the prefix's
            // versions are ready: the start is just the clock.
            start = s.now;
        }

        if (start >= s.compileEnd) {
            // Starts outside the committed window, but the start
            // itself is already determined by the prefix: its wait
            // is committed as well.
            penalty = start - s.now;
            s.nextStart = start;
            break;
        }

        s.bubbles += start - s.now;
        const Tick dur =
            w_->function(f).execTime(static_cast<Level>(base));
        s.extraExec += dur - best_exec_[f];
        s.now = start + dur;
    }
    if (i == n)
        s.nextStart = s.now;

    s.resumeCall = i;
    out.f = s.bubbles + s.extraExec + penalty;
    return out;
}

Tick
PrefixEvaluator::complete(const PrefixSimState &state,
                          const LevelSig *sig) const
{
    PrefixSimState s = state;
    const std::vector<FuncId> &calls = w_->calls();
    const auto n = static_cast<std::uint32_t>(calls.size());
    for (std::uint32_t i = s.resumeCall; i < n; ++i) {
        const FuncId f = calls[i];
        const LevelSig base = sig[f];
        if (base < 0)
            JITSCHED_PANIC("PrefixEvaluator::complete: function ", f,
                           " was never compiled");
        const Tick start =
            i == state.resumeCall ? state.nextStart : s.now;
        s.bubbles += start - s.now;
        const Tick dur =
            w_->function(f).execTime(static_cast<Level>(base));
        s.extraExec += dur - best_exec_[f];
        s.now = start + dur;
    }
    return s.bubbles + s.extraExec;
}

DuplicateTable::DuplicateTable(std::size_t num_functions)
    : num_functions_(num_functions)
{
}

namespace {

/** FNV-1a over the dedup-key fields; shared by table and router. */
std::uint64_t
dedupKeyHash(std::uint32_t resume_call, Tick clock, Tick compile_end,
             const LevelSig *sig, std::size_t num_functions)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(resume_call);
    mix(static_cast<std::uint64_t>(clock));
    mix(static_cast<std::uint64_t>(compile_end));
    for (std::size_t i = 0; i < num_functions; ++i)
        mix(static_cast<std::uint16_t>(sig[i]));
    return h;
}

} // anonymous namespace

std::size_t
DuplicateTable::EntryHash::operator()(const Entry &e) const
{
    return static_cast<std::size_t>(
        dedupKeyHash(e.resumeCall, e.clock, e.compileEnd,
                     e.sig.data(), e.sig.size()));
}

std::uint64_t
DuplicateTable::stateHash(const PrefixSimState &s, const LevelSig *sig,
                          std::size_t num_functions)
{
    return dedupKeyHash(s.resumeCall, s.nextStart, s.compileEnd, sig,
                        num_functions);
}

bool
DuplicateTable::seen(const PrefixSimState &s, const LevelSig *sig)
{
    // The resume clock is nextStart in every case: for a pinned
    // resume call it is the committed start, and append() sets
    // nextStart = now at uncompiled-function breaks and at complete
    // walks, where `now` is the part of the state the future depends
    // on.
    Entry e{s.resumeCall, s.nextStart, s.compileEnd,
            std::vector<LevelSig>(sig, sig + num_functions_)};
    return !entries_.insert(std::move(e)).second;
}

std::uint64_t
DuplicateTable::bytes() const
{
    // Entry + its signature heap block + hash-set node overhead.
    const std::uint64_t per =
        sizeof(Entry) + num_functions_ * sizeof(LevelSig) + 32;
    return entries_.size() * per;
}

} // namespace jitsched
