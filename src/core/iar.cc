#include "core/iar.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "obs/instruments.hh"
#include "sim/makespan.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

/** Per-function view of the two candidate levels' true costs. */
struct FuncCosts
{
    Tick cl = 0, ch = 0; ///< compile time at low / high level
    Tick el = 0, eh = 0; ///< execution time at low / high level
    std::uint64_t n = 0; ///< total calls in the sequence
    bool upgradable = false; ///< high level differs from low
};

std::vector<FuncCosts>
gatherCosts(const Workload &w, const std::vector<CandidatePair> &cands)
{
    std::vector<FuncCosts> out(w.numFunctions());
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto f = static_cast<FuncId>(i);
        const auto &prof = w.function(f);
        const CandidatePair &c = cands[i];
        out[i].cl = prof.compileTime(c.low);
        out[i].ch = prof.compileTime(c.high);
        out[i].el = prof.execTime(c.low);
        out[i].eh = prof.execTime(c.high);
        out[i].n = w.callCount(f);
        out[i].upgradable = c.high > c.low;
    }
    return out;
}

/**
 * Observer collecting the per-function timeline facts the IAR steps
 * need: first-call start times, and call counts before / at-or-after
 * the end of the compile sequence.  The simulator reports every
 * compilation before the first call, so the threshold (the compile
 * end) can be frozen lazily at the first onCall — one simulation
 * pass suffices.
 */
class TimelineObserver : public SimObserver
{
  public:
    TimelineObserver(std::size_t num_funcs, std::size_t num_events)
    {
        first_call_start.assign(num_funcs, maxTick);
        calls_before.assign(num_funcs, 0);
        calls_after.assign(num_funcs, 0);
        event_completion.assign(num_events, 0);
    }

    void
    onCompiled(std::size_t event_index, const CompileEvent &,
               Tick completion) override
    {
        event_completion[event_index] = completion;
        threshold_ = std::max(threshold_, completion);
    }

    void
    onCall(std::size_t, FuncId f, Tick start, Tick, Level) override
    {
        if (first_call_start[f] == maxTick)
            first_call_start[f] = start;
        if (start < threshold_)
            ++calls_before[f];
        else
            ++calls_after[f];
    }

    std::vector<Tick> first_call_start;
    std::vector<std::uint64_t> calls_before;
    std::vector<std::uint64_t> calls_after;
    std::vector<Tick> event_completion;

  private:
    Tick threshold_ = 0;
};

/** Run the simulator once, collecting the IAR timeline facts. */
SimResult
timeSchedule(const Workload &w, const Schedule &s,
             TimelineObserver *&observer_out,
             std::vector<std::unique_ptr<TimelineObserver>> &storage)
{
    storage.push_back(std::make_unique<TimelineObserver>(
        w.numFunctions(), s.size()));
    TimelineObserver &obs = *storage.back();
    const SimResult res = simulate(w, s, SimOptions{}, obs);
    observer_out = &obs;
    return res;
}

} // anonymous namespace

IarResult
iarSchedule(const Workload &w, const std::vector<CandidatePair> &cands,
            const IarConfig &cfg)
{
    if (cands.size() != w.numFunctions())
        JITSCHED_PANIC("iarSchedule: candidate table has ",
                       cands.size(), " functions, workload has ",
                       w.numFunctions());

    IarResult result;
    const std::vector<FuncCosts> costs = gatherCosts(w, cands);
    std::vector<std::unique_ptr<TimelineObserver>> observers;

    // ---------------------------------------------------------------
    // Step 1 (init): low-level compiles in first-appearance order.
    // ---------------------------------------------------------------
    Schedule cseq;
    for (const FuncId f : w.firstAppearanceOrder())
        cseq.append(f, cands[f].low);
    const std::size_t init_len = cseq.size();

    // Time the initial schedule; n1 = calls before its compile end.
    // Keep the schedule and its make-span: step 2 has no simulation
    // guard, so the refined result is checked against this baseline
    // at the end.
    const Schedule init_seq = cseq;
    TimelineObserver *t0 = nullptr;
    const SimResult init_res = timeSchedule(w, cseq, t0, observers);

    // ---------------------------------------------------------------
    // Step 2 (append & replace): classify by Formulas 1 and 2.
    // ---------------------------------------------------------------
    enum class Category { Other, Append, Replace };
    std::vector<Category> category(w.numFunctions(), Category::Other);
    std::vector<FuncId> append_set;

    for (const FuncId f : w.firstAppearanceOrder()) {
        const FuncCosts &fc = costs[f];
        // Formula 1: skip when the high level does not pay off.
        const __int128 high_total =
            static_cast<__int128>(fc.ch) +
            static_cast<__int128>(fc.n) * fc.eh;
        const __int128 low_total =
            static_cast<__int128>(fc.cl) +
            static_cast<__int128>(fc.n) * fc.el;
        if (!fc.upgradable || high_total > low_total) {
            ++result.numOther;
            continue;
        }
        // Formula 2: a costly recompile whose early benefit is small
        // goes to the back (Append); otherwise compile high up front
        // (Replace).  n1 = calls during the initial compile stage.
        const double n1 = static_cast<double>(t0->calls_before[f]);
        const double lhs = static_cast<double>(fc.ch - fc.cl);
        const double rhs =
            cfg.k * n1 * static_cast<double>(fc.el - fc.eh);
        if (lhs > rhs) {
            category[f] = Category::Append;
            append_set.push_back(f);
            ++result.numAppend;
        } else {
            category[f] = Category::Replace;
            ++result.numReplace;
        }
    }

    // Ascending sort on the high-level compile time: cheap
    // recompiles first, so one expensive recompile does not delay the
    // availability of good code for everyone else.
    std::sort(append_set.begin(), append_set.end(),
              [&](FuncId a, FuncId b) {
                  if (costs[a].ch != costs[b].ch)
                      return costs[a].ch < costs[b].ch;
                  return a < b;
              });

    // Replace in the initial segment; append after it.
    for (std::size_t i = 0; i < init_len; ++i) {
        CompileEvent &ev = cseq.events()[i];
        if (category[ev.func] == Category::Replace)
            ev.level = cands[ev.func].high;
    }
    // Track where a function's appended high compile lives so step 3
    // can delete it after an in-place upgrade.
    std::vector<std::int64_t> appended_pos(w.numFunctions(), -1);
    for (const FuncId f : append_set) {
        appended_pos[f] = static_cast<std::int64_t>(cseq.size());
        cseq.append(f, cands[f].high);
    }

    // ---------------------------------------------------------------
    // Step 3 (fill slack through replacement): upgrade initial
    // compiles where the compile thread is ahead of the execution.
    // ---------------------------------------------------------------
    if (cfg.fillSlack) {
        SimResult prev;
        TimelineObserver *tl = nullptr;
        prev = timeSchedule(w, cseq, tl, observers);

        for (std::size_t round = 0; round < cfg.maxSlackRounds;
             ++round) {
            // suffix_min[k] = min over initial-segment events j >= k
            // of (first call start of func_j - compile completion_j):
            // the tightest slack a delay inserted at position k eats.
            std::vector<Tick> suffix_min(init_len + 1, maxTick);
            for (std::size_t j = init_len; j-- > 0;) {
                const FuncId f = cseq[j].func;
                const Tick first_start = tl->first_call_start[f];
                Tick slack = maxTick;
                if (first_start != maxTick)
                    slack = first_start - tl->event_completion[j];
                suffix_min[j] = std::min(slack, suffix_min[j + 1]);
            }

            Schedule candidate = cseq;
            std::vector<FuncId> upgraded;
            Tick delay = 0;
            for (std::size_t k = 0; k < init_len; ++k) {
                CompileEvent &ev = candidate.events()[k];
                const FuncCosts &fc = costs[ev.func];
                if (!fc.upgradable ||
                    ev.level == cands[ev.func].high)
                    continue;
                const Tick delta = fc.ch - fc.cl;
                if (suffix_min[k] == maxTick ||
                    delay + delta > suffix_min[k])
                    continue;
                ev.level = cands[ev.func].high;
                delay += delta;
                upgraded.push_back(ev.func);
            }
            if (upgraded.empty())
                break;

            // Delete the now-redundant appended high compiles.
            std::vector<bool> drop(candidate.size(), false);
            for (const FuncId f : upgraded) {
                if (appended_pos[f] >= 0)
                    drop[static_cast<std::size_t>(appended_pos[f])] =
                        true;
            }
            std::vector<CompileEvent> kept;
            std::vector<std::int64_t> new_pos(w.numFunctions(), -1);
            kept.reserve(candidate.size());
            for (std::size_t i = 0; i < candidate.size(); ++i) {
                if (drop[i])
                    continue;
                if (i >= init_len)
                    new_pos[candidate[i].func] =
                        static_cast<std::int64_t>(kept.size());
                kept.push_back(candidate[i]);
            }
            candidate = Schedule(std::move(kept));

            // The condition above ignores that faster execution pulls
            // later first-calls earlier; verify and keep only if the
            // schedule did not get worse.
            TimelineObserver *tl2 = nullptr;
            const SimResult after =
                timeSchedule(w, candidate, tl2, observers);
            if (after.makespan > prev.makespan)
                break;
            cseq = std::move(candidate);
            appended_pos = std::move(new_pos);
            result.slackUpgrades += upgraded.size();
            prev = after;
            tl = tl2;
        }
    }

    // ---------------------------------------------------------------
    // Step 4 (append more to fill the ending gap): if all compiles
    // finish before the program does, spend the idle compile time on
    // high-level versions of still-unoptimized functions, preferring
    // the ones with the most calls left.
    // ---------------------------------------------------------------
    if (cfg.fillEndingGap) {
        TimelineObserver *tl = nullptr;
        const SimResult res = timeSchedule(w, cseq, tl, observers);
        Tick gap = res.execEnd - res.compileEnd;
        if (gap > 0) {
            std::vector<Level> scheduled_level(w.numFunctions(), 0);
            for (const CompileEvent &ev : cseq.events())
                scheduled_level[ev.func] =
                    std::max(scheduled_level[ev.func], ev.level);

            struct GapCand
            {
                FuncId func;
                std::uint64_t calls_after;
            };
            std::vector<GapCand> pool;
            for (const FuncId f : w.firstAppearanceOrder()) {
                if (!costs[f].upgradable)
                    continue;
                if (scheduled_level[f] >= cands[f].high)
                    continue;
                if (tl->calls_after[f] == 0)
                    continue;
                pool.push_back({f, tl->calls_after[f]});
            }
            std::sort(pool.begin(), pool.end(),
                      [](const GapCand &a, const GapCand &b) {
                          if (a.calls_after != b.calls_after)
                              return a.calls_after > b.calls_after;
                          return a.func < b.func;
                      });
            for (const GapCand &gc : pool) {
                const Tick ch = costs[gc.func].ch;
                if (ch > gap)
                    continue;
                cseq.append(gc.func, cands[gc.func].high);
                gap -= ch;
                ++result.gapAppends;
            }
        }
    }

    // Final guard: Formulas 1 and 2 classify each function in
    // isolation, so a Replace decision can delay another function's
    // first call by more than the upgrade saves.  One simulation
    // against the untouched init schedule turns "never worse than
    // base-only" from an empirical tendency into an invariant.
    if (cseq != init_seq) {
        const SimResult final_res = simulate(w, cseq, SimOptions{});
        if (final_res.makespan > init_res.makespan) {
            cseq = init_seq;
            result.refinementDiscarded = true;
        }
    }

    result.schedule = std::move(cseq);
    JITSCHED_OBS({
        obs::SolverMetrics &m = obs::SolverMetrics::get();
        m.iarRuns.add();
        m.iarSlackUpgrades.add(result.slackUpgrades);
        m.iarGapAppends.add(result.gapAppends);
    });
    return result;
}

IarResult
iarScheduleOracle(const Workload &w, const IarConfig &cfg)
{
    return iarSchedule(w, oracleCandidateLevels(w), cfg);
}

IarBound
iarUpperBound(const Workload &w, const IarConfig &cfg)
{
    IarBound bound;
    bound.schedule = iarScheduleOracle(w, cfg).schedule;
    bound.makespan = simulate(w, bound.schedule, SimOptions{}).makespan;
    return bound;
}

} // namespace jitsched
