/**
 * @file
 * Shared cost machinery for the exact solvers (A* and brute force).
 *
 * Both searches work on the paper's tree model (Fig. 4): a path is a
 * prefix of a compilation sequence, and the guiding function is
 * f(v) = b(v) + e(v), where b(v) is the bubble time incurred and e(v)
 * the extra execution time (relative to each function's fastest
 * level) incurred by calls that start within the compile window t(v)
 * of the prefix.  Those costs are *committed*: any extension of the
 * prefix compiles strictly after t(v) and cannot reduce them, so
 * f(v) never overestimates the final cost and grows monotonically
 * along a path.  The make-span of a complete schedule equals
 * lowerBoundAllLevels(w) + (total bubbles + total extra execution).
 */

#ifndef JITSCHED_CORE_SEARCH_UTIL_HH
#define JITSCHED_CORE_SEARCH_UTIL_HH

#include <vector>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Committed cost of a compile-sequence prefix. */
struct PrefixCost
{
    /** End of the prefix's compilations (single compile core). */
    Tick compileEnd = 0;

    /** Bubble time committed by calls starting before compileEnd. */
    Tick bubbles = 0;

    /** Extra execution time committed by those calls. */
    Tick extraExec = 0;

    /** b(v) + e(v): the A* guiding value. */
    Tick f() const { return bubbles + extraExec; }
};

/**
 * Evaluate the committed cost of a prefix.
 *
 * @param w workload
 * @param events the compile events of the prefix, in order; per
 *        function levels must be strictly increasing (not checked —
 *        the searches construct them that way)
 * @param best_exec per-function execution time at the fastest level
 *        the search may use (usually the highest level)
 */
PrefixCost evalPrefix(const Workload &w,
                      const std::vector<CompileEvent> &events,
                      const std::vector<Tick> &best_exec);

/**
 * Total cost (bubbles + extra execution over the whole run) of a
 * complete schedule; make-span = sum(best_exec over calls) + result.
 */
Tick evalComplete(const Workload &w,
                  const std::vector<CompileEvent> &events,
                  const std::vector<Tick> &best_exec);

/** Per-function execution times at the highest level. */
std::vector<Tick> bestExecTimes(const Workload &w);

} // namespace jitsched

#endif // JITSCHED_CORE_SEARCH_UTIL_HH
