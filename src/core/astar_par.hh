/**
 * @file
 * Shared-memory parallel anytime A* over the schedule-tree of Fig. 4
 * — an HDA*-style (hash-distributed A*) decomposition of
 * core/astar.cc.
 *
 * Each of T workers owns a private open list, node arena and
 * duplicate table.  A generated child is routed to the worker that
 * owns the hash of its exact duplicate-detection key — the
 * (signature, resume call, pinned resume clock, compile end) tuple of
 * core/prefix_sim.hh — via a lock-free MPSC inbox
 * (exec/mpsc_queue.hh).  Because duplicates share the key, they share
 * the hash, land on the same worker, and are deduplicated by its
 * private table: the distributed search prunes exactly the states the
 * sequential one does, with no shared hash table.
 *
 * The search is *anytime*: it seeds an incumbent upper bound from the
 * IAR schedule (core/iar.hh, iarUpperBound) and every worker prunes
 * generated nodes with f >= incumbent; closing a leaf below the bound
 * tightens the global incumbent (atomic).  Run to completion the
 * result cost is bit-identical to aStarOptimal(): pruned nodes cannot
 * beat the retained incumbent, and at quiescence no live node could
 * improve on it, so the incumbent *is* the optimum.  When a budget
 * trips first (wall-clock deadline, memory, expansion cap) the search
 * returns AStarStatus::Incumbent with the best schedule found and an
 * optimality-gap bound instead of failing.
 *
 * Termination detection: a single atomic live-node counter.  Sending
 * a child increments it *before* the expanded parent decrements
 * itself, so the counter can never transiently read zero while work
 * exists; once it reaches zero it stays zero, and every worker
 * observes quiescence.  A worker whose open-list minimum reaches the
 * incumbent drops its whole list (all entries are provably unable to
 * improve), which is what lets pruned searches quiesce early.
 *
 * Determinism: the final cost (and with threads == 1, every counter)
 * is deterministic; with T > 1 the expansion order, node counts and
 * which optimal-cost schedule is returned may vary run to run.
 */

#ifndef JITSCHED_CORE_ASTAR_PAR_HH
#define JITSCHED_CORE_ASTAR_PAR_HH

#include "core/astar.hh"

namespace jitsched {

/**
 * Hash-distributed parallel anytime A*.
 *
 * Honors AStarConfig::{threads, memoryBudget, maxExpansions,
 * anytimeDeadlineMs, duplicateDetection, duplicateMaxFunctions};
 * incumbent pruning is always on (it is what makes the anytime
 * contract possible), and evaluation is always incremental.
 * cfg.pool / cfg.minParallelChildren / cfg.incrementalEval /
 * cfg.incumbentPruning are ignored.
 *
 * @returns status Optimal with the proven-optimal schedule, or
 *          Incumbent with the best-so-far schedule, its make-span and
 *          res.gapBound (see AStarResult) when a budget tripped.
 */
AStarResult aStarParallel(const Workload &w,
                          const AStarConfig &cfg = {});

} // namespace jitsched

#endif // JITSCHED_CORE_ASTAR_PAR_HH
