#include "core/single_level.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

namespace {

Schedule
firstCallOrderSchedule(const Workload &w,
                       const std::vector<CandidatePair> &cands,
                       bool use_high)
{
    if (cands.size() != w.numFunctions())
        JITSCHED_PANIC("single-level schedule: candidate table has ",
                       cands.size(), " functions, workload has ",
                       w.numFunctions());
    Schedule s;
    for (const FuncId f : w.firstAppearanceOrder())
        s.append(f, use_high ? cands[f].high : cands[f].low);
    return s;
}

} // anonymous namespace

Schedule
baseLevelSchedule(const Workload &w,
                  const std::vector<CandidatePair> &cands)
{
    return firstCallOrderSchedule(w, cands, false);
}

Schedule
optimizingLevelSchedule(const Workload &w,
                        const std::vector<CandidatePair> &cands)
{
    return firstCallOrderSchedule(w, cands, true);
}

Schedule
uniformLevelSchedule(const Workload &w, Level level)
{
    Schedule s;
    for (const FuncId f : w.firstAppearanceOrder()) {
        const auto &prof = w.function(f);
        s.append(f, std::min<Level>(level, prof.highestLevel()));
    }
    return s;
}

} // namespace jitsched
