#include "core/single_core.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

Schedule
singleCoreOptimalSchedule(const Workload &w)
{
    Schedule s;
    for (const FuncId f : w.firstAppearanceOrder()) {
        const auto &prof = w.function(f);
        s.append(f, prof.mostCostEffectiveLevel(w.callCount(f)));
    }
    return s;
}

Tick
singleCoreMakespan(const Workload &w, const Schedule &s)
{
    std::string err;
    if (!s.validate(w, &err))
        JITSCHED_PANIC("singleCoreMakespan: invalid schedule: ", err);

    // Evaluate the schedule under its most favorable single-core
    // interleaving: every compile event charged once, every call
    // running the deepest version the schedule provides for its
    // function.  This lower-bounds any actual single-core run of the
    // same schedule, which makes Theorem-1 optimality checks
    // conservative.
    Tick total = 0;
    std::vector<int> best_level(w.numFunctions(), -1);
    for (const CompileEvent &ev : s.events()) {
        total += w.function(ev.func).compileTime(ev.level);
        best_level[ev.func] =
            std::max(best_level[ev.func], static_cast<int>(ev.level));
    }
    for (const FuncId f : w.calls())
        total += w.function(f).execTime(
            static_cast<Level>(best_level[f]));
    return total;
}

} // namespace jitsched
