#include "core/lower_bound.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

Tick
lowerBoundAllLevels(const Workload &w)
{
    Tick total = 0;
    for (const FuncId f : w.calls())
        total += w.function(f).execTime(w.function(f).highestLevel());
    return total;
}

Tick
lowerBoundCandidates(const Workload &w,
                     const std::vector<CandidatePair> &cands)
{
    if (cands.size() != w.numFunctions())
        JITSCHED_PANIC("lowerBoundCandidates: candidate table has ",
                       cands.size(), " functions, workload has ",
                       w.numFunctions());
    Tick total = 0;
    for (const FuncId f : w.calls()) {
        const auto &prof = w.function(f);
        const Tick e_low = prof.execTime(cands[f].low);
        const Tick e_high = prof.execTime(cands[f].high);
        total += std::min(e_low, e_high);
    }
    return total;
}

} // namespace jitsched
