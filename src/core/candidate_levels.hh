/**
 * @file
 * Candidate-level selection (end of Sec. 5.1).
 *
 * The IAR algorithm works on two levels per function:
 *  - the *most responsive* level: cheapest to compile (lowest level);
 *  - the *most cost-effective* level: the level l minimizing
 *    c(l) + n * e(l) over all levels, where n is the function's call
 *    count.  In the paper this level comes from the JIT's cost-benefit
 *    model, which estimates the times; an oracle model uses measured
 *    times (Sec. 6.2.2).
 *
 * The model's (possibly wrong) view of the times is passed in as a
 * TimeEstimates table, so this module stays independent of any
 * particular cost-benefit model implementation.
 */

#ifndef JITSCHED_CORE_CANDIDATE_LEVELS_HH
#define JITSCHED_CORE_CANDIDATE_LEVELS_HH

#include <vector>

#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * A model's view of per-function, per-level compile/execute times.
 * Indexed [function][level]; same shape as the workload's true table.
 */
struct TimeEstimates
{
    std::vector<std::vector<LevelCosts>> perFunc;

    const LevelCosts &
    at(FuncId f, Level l) const
    {
        return perFunc[f][l];
    }
};

/** The two levels the IAR algorithm considers for one function. */
struct CandidatePair
{
    Level low = 0;  ///< most responsive level
    Level high = 0; ///< most cost-effective level (may equal low)

    bool operator==(const CandidatePair &) const = default;
};

/** Estimates that simply mirror the true profile times (oracle). */
TimeEstimates oracleEstimates(const Workload &w);

/**
 * Pick candidate levels for every function.
 *
 * The cost-effective level is chosen with the *estimated* times but
 * the function's true call count from the trace (the paper uses the
 * profiled hotness).  Ties break toward the lower level.
 */
std::vector<CandidatePair>
chooseCandidateLevels(const Workload &w, const TimeEstimates &est);

/**
 * Candidate selection from estimates and *expected* call counts
 * alone (no workload needed) — the online-scheduler variant, where
 * hotness comes from cross-run profiles rather than the actual trace.
 */
std::vector<CandidatePair>
chooseCandidateLevels(const TimeEstimates &est,
                      const std::vector<double> &expected_counts);

/** Convenience: candidates under the oracle model. */
std::vector<CandidatePair> oracleCandidateLevels(const Workload &w);

} // namespace jitsched

#endif // JITSCHED_CORE_CANDIDATE_LEVELS_HH
