#include "service/protocol.hh"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "exec/eval_cache.hh"
#include "obs/span.hh"
#include "support/logging.hh"
#include "support/strutil.hh"
#include "trace/trace_io.hh"

namespace jitsched {

namespace {

/** Strip comments and surrounding whitespace from one line. */
std::string
cleanLine(const std::string &line)
{
    const std::size_t hash = line.find('#');
    const std::string_view body =
        hash == std::string::npos
            ? std::string_view(line)
            : std::string_view(line).substr(0, hash);
    return std::string(trim(body));
}

/** Next non-empty cleaned line, or nullopt at EOF. */
std::optional<std::string>
nextLine(std::istream &is)
{
    std::string raw;
    while (std::getline(is, raw)) {
        std::string line = cleanLine(raw);
        if (!line.empty())
            return line;
    }
    return std::nullopt;
}

bool
parseFail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = "protocol parse error: " + msg;
    return false;
}

/** splitmix64 finalizer — the repo's standard bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t v)
{
    return mix64(seed ^ mix64(v));
}

/** Serialize a double so that it round-trips through parseDouble. */
void
writeDouble(std::ostream &os, double v)
{
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << v;
    os << tmp.str();
}

} // anonymous namespace

bool
isFrameEnd(std::string_view raw_line)
{
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string_view::npos)
        raw_line = raw_line.substr(0, hash);
    return trim(raw_line) == "end";
}

void
writeRequest(std::ostream &os, const ServiceRequest &req)
{
    os << "jitsched-request " << req.id << "\n";
    os << "policy " << req.policy << "\n";
    const ServiceOptions &o = req.options;
    os << "option compile-cores " << o.compileCores << "\n";
    os << "option model "
       << (o.model == ModelKind::Oracle ? "oracle" : "default")
       << "\n";
    if (o.jitterSigma != 0.0) {
        os << "option jitter-sigma ";
        writeDouble(os, o.jitterSigma);
        os << "\n";
        os << "option jitter-seed " << o.jitterSeed << "\n";
    }
    os << "option astar-max-expansions " << o.astarMaxExpansions
       << "\n";
    os << "option astar-memory-mb " << o.astarMemoryMb << "\n";
    // Serialized only when set: requests that never mention threads
    // stay byte-identical to what pre-astar-par builds emitted.
    if (o.astarThreads != 0)
        os << "option threads " << o.astarThreads << "\n";
    if (o.deadlineMs >= 0)
        os << "option deadline-ms " << o.deadlineMs << "\n";
    // Like threads: untraced requests stay byte-identical to what
    // pre-tracing builds emitted.
    if (req.traceId != 0)
        os << "option trace-id " << obs::traceIdHex(req.traceId)
           << "\n";
    os << "payload\n";
    writeWorkload(os, req.workload);
    os << "end\n";
}

std::string
requestText(const ServiceRequest &req)
{
    std::ostringstream os;
    writeRequest(os, req);
    return os.str();
}

namespace {

/** Apply one `option <key> <value>` line; false + error on failure. */
bool
applyOption(ServiceRequest &req, const std::string &key,
            const std::string &value, std::string *error)
{
    ServiceOptions &o = req.options;
    const auto asInt = [&]() { return parseInt(value); };

    if (key == "compile-cores") {
        const auto v = asInt();
        if (!v || *v < 1)
            return parseFail(error, "option compile-cores must be an "
                             "integer >= 1, got '" + value + "'");
        o.compileCores = static_cast<std::size_t>(*v);
        return true;
    }
    if (key == "model") {
        if (value == "oracle")
            o.model = ModelKind::Oracle;
        else if (value == "default")
            o.model = ModelKind::Default;
        else
            return parseFail(error, "option model must be 'oracle' or "
                             "'default', got '" + value + "'");
        return true;
    }
    if (key == "jitter-sigma") {
        const auto v = parseDouble(value);
        if (!v || *v < 0.0)
            return parseFail(error, "option jitter-sigma must be a "
                             "number >= 0, got '" + value + "'");
        o.jitterSigma = *v;
        return true;
    }
    if (key == "jitter-seed") {
        const auto v = asInt();
        if (!v || *v < 0)
            return parseFail(error, "option jitter-seed must be a "
                             "non-negative integer, got '" + value +
                             "'");
        o.jitterSeed = static_cast<std::uint64_t>(*v);
        return true;
    }
    if (key == "astar-max-expansions") {
        const auto v = asInt();
        if (!v || *v < 0)
            return parseFail(error, "option astar-max-expansions must "
                             "be a non-negative integer, got '" +
                             value + "'");
        o.astarMaxExpansions = static_cast<std::uint64_t>(*v);
        return true;
    }
    if (key == "astar-memory-mb") {
        const auto v = asInt();
        if (!v || *v < 1)
            return parseFail(error, "option astar-memory-mb must be "
                             "an integer >= 1, got '" + value + "'");
        o.astarMemoryMb = static_cast<std::uint64_t>(*v);
        return true;
    }
    if (key == "threads") {
        const auto v = asInt();
        if (!v || *v < 1)
            return parseFail(error, "option threads must be an "
                             "integer >= 1, got '" + value + "'");
        o.astarThreads = static_cast<std::size_t>(*v);
        return true;
    }
    if (key == "deadline-ms") {
        const auto v = asInt();
        if (!v || *v < 0)
            return parseFail(error, "option deadline-ms must be a "
                             "non-negative integer, got '" + value +
                             "'");
        o.deadlineMs = *v;
        return true;
    }
    if (key == "trace-id") {
        const auto v = obs::parseTraceIdHex(value);
        if (!v)
            return parseFail(error, "option trace-id must be 1-16 "
                             "hex digits and nonzero, got '" + value +
                             "'");
        req.traceId = *v;
        return true;
    }
    return parseFail(error, "unknown option '" + key + "'");
}

} // anonymous namespace

std::optional<ServiceRequest>
tryReadRequest(std::istream &is, std::string *error)
{
    ServiceRequest req;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty request frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-request") {
            parseFail(error, "expected 'jitsched-request <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad request id '" + id_tok + "'");
            return std::nullopt;
        }
        req.id = static_cast<std::uint64_t>(*id);
    }

    // Preamble: policy and options, up to the payload marker.
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "request truncated before payload");
            return std::nullopt;
        }
        if (*line == "payload")
            break;
        if (*line == "end") {
            parseFail(error, "request has no payload");
            return std::nullopt;
        }
        std::istringstream ls(*line);
        std::string key;
        ls >> key;
        if (key == "policy") {
            ls >> req.policy;
            if (req.policy.empty()) {
                parseFail(error, "policy line names no policy");
                return std::nullopt;
            }
        } else if (key == "option") {
            std::string opt_key, opt_value;
            ls >> opt_key >> opt_value;
            if (opt_key.empty() || opt_value.empty()) {
                parseFail(error,
                          "option line needs a key and a value");
                return std::nullopt;
            }
            if (!applyOption(req, opt_key, opt_value, error))
                return std::nullopt;
        } else {
            parseFail(error, "unknown directive '" + key +
                      "' before payload");
            return std::nullopt;
        }
    }

    if (req.policy.empty()) {
        parseFail(error, "request names no policy");
        return std::nullopt;
    }

    std::string wl_error;
    auto w = tryReadWorkload(is, &wl_error, "end");
    if (!w) {
        if (error != nullptr)
            *error = wl_error;
        return std::nullopt;
    }
    req.workload = *std::move(w);
    return req;
}

void
writeResponse(std::ostream &os, const ServiceResponse &resp,
              bool include_stats)
{
    os << "jitsched-response " << resp.id << "\n";
    if (resp.ok) {
        os << "status ok\n";
    } else {
        os << "status error "
           << (resp.code.empty() ? errcode::unavailable : resp.code)
           << "\n";
        os << "error " << resp.error << "\n";
    }
    if (!resp.policy.empty())
        os << "policy " << resp.policy << "\n";
    if (resp.ok) {
        os << "lower-bound " << resp.lowerBound << "\n";
        if (resp.hasSim) {
            const SimResult &s = resp.sim;
            os << "makespan " << s.makespan << "\n";
            os << "compile-end " << s.compileEnd << "\n";
            os << "exec-end " << s.execEnd << "\n";
            os << "total-bubble " << s.totalBubble << "\n";
            os << "bubble-count " << s.bubbleCount << "\n";
            os << "total-exec " << s.totalExec << "\n";
            os << "total-compile " << s.totalCompile << "\n";
            if (!s.callsAtLevel.empty()) {
                os << "calls-at-level";
                for (const std::uint64_t n : s.callsAtLevel)
                    os << ' ' << n;
                os << "\n";
            }
        }
        if (resp.hasSchedule) {
            os << "schedule " << resp.schedule.size() << "\n";
            for (const CompileEvent &ev : resp.schedule)
                os << ev.func << ' ' << static_cast<int>(ev.level)
                   << "\n";
        }
    }
    if (include_stats)
        writeStatsLine(os, resp.stats);
    os << "end\n";
}

void
writeStatsLine(std::ostream &os, const ServiceStats &stats)
{
    os << "stats cache-hits " << stats.cacheHits << " cache-misses "
       << stats.cacheMisses << " queue-ns " << stats.queueNs
       << " solve-ns " << stats.solveNs;
    // Emitted only when the result cache served the response: a
    // cache-off daemon's frames stay byte-identical to pre-cache
    // builds.
    if (stats.resultCache != 0)
        os << " result-cache " << stats.resultCache;
    if (stats.traceId != 0)
        os << " trace-id " << obs::traceIdHex(stats.traceId);
    os << "\n";
}

std::string
responseText(const ServiceResponse &resp, bool include_stats)
{
    std::ostringstream os;
    writeResponse(os, resp, include_stats);
    return os.str();
}

namespace {

/** Parse `<key> <int>` tails of the response grammar. */
bool
intField(std::istringstream &ls, const char *what, std::int64_t *out,
         std::string *error)
{
    std::string tok;
    ls >> tok;
    const auto v = parseInt(tok);
    if (!v)
        return parseFail(error, std::string("bad ") + what + " '" +
                         tok + "'");
    *out = *v;
    return true;
}

} // anonymous namespace

std::optional<ServiceResponse>
tryReadResponse(std::istream &is, std::string *error)
{
    ServiceResponse resp;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty response frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-response") {
            parseFail(error,
                      "expected 'jitsched-response <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad response id '" + id_tok + "'");
            return std::nullopt;
        }
        resp.id = static_cast<std::uint64_t>(*id);
    }

    bool saw_status = false;
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "response truncated (no 'end')");
            return std::nullopt;
        }
        if (*line == "end")
            break;

        std::istringstream ls(*line);
        std::string key;
        ls >> key;
        std::int64_t v = 0;

        if (key == "status") {
            std::string st;
            ls >> st;
            if (st == "ok") {
                resp.ok = true;
            } else if (st == "error") {
                resp.ok = false;
                ls >> resp.code;
                if (resp.code.empty()) {
                    parseFail(error, "status error carries no code");
                    return std::nullopt;
                }
            } else {
                parseFail(error, "bad status '" + st + "'");
                return std::nullopt;
            }
            saw_status = true;
        } else if (key == "error") {
            // The message is the rest of the line.
            constexpr std::size_t skip = sizeof("error ") - 1;
            resp.error = line->size() > skip ? line->substr(skip) : "";
        } else if (key == "policy") {
            ls >> resp.policy;
        } else if (key == "lower-bound") {
            if (!intField(ls, "lower-bound", &v, error))
                return std::nullopt;
            resp.lowerBound = v;
        } else if (key == "makespan") {
            if (!intField(ls, "makespan", &v, error))
                return std::nullopt;
            resp.sim.makespan = v;
            resp.hasSim = true;
        } else if (key == "compile-end") {
            if (!intField(ls, "compile-end", &v, error))
                return std::nullopt;
            resp.sim.compileEnd = v;
        } else if (key == "exec-end") {
            if (!intField(ls, "exec-end", &v, error))
                return std::nullopt;
            resp.sim.execEnd = v;
        } else if (key == "total-bubble") {
            if (!intField(ls, "total-bubble", &v, error))
                return std::nullopt;
            resp.sim.totalBubble = v;
        } else if (key == "bubble-count") {
            if (!intField(ls, "bubble-count", &v, error))
                return std::nullopt;
            resp.sim.bubbleCount = static_cast<std::uint64_t>(v);
        } else if (key == "total-exec") {
            if (!intField(ls, "total-exec", &v, error))
                return std::nullopt;
            resp.sim.totalExec = v;
        } else if (key == "total-compile") {
            if (!intField(ls, "total-compile", &v, error))
                return std::nullopt;
            resp.sim.totalCompile = v;
        } else if (key == "calls-at-level") {
            std::string tok;
            while (ls >> tok) {
                const auto n = parseInt(tok);
                if (!n || *n < 0) {
                    parseFail(error, "bad calls-at-level entry '" +
                              tok + "'");
                    return std::nullopt;
                }
                resp.sim.callsAtLevel.push_back(
                    static_cast<std::uint64_t>(*n));
            }
        } else if (key == "schedule") {
            if (!intField(ls, "schedule size", &v, error))
                return std::nullopt;
            if (v < 0) {
                parseFail(error, "negative schedule size");
                return std::nullopt;
            }
            resp.hasSchedule = true;
            // The declared size is foreign input: cap the reserve so
            // an absurd header cannot throw length_error/bad_alloc;
            // push_back below grows past the cap if the events really
            // arrive, and a short frame fails "schedule truncated".
            resp.schedule.reserve(
                std::min(static_cast<std::size_t>(v),
                         std::size_t(1) << 20));
            for (std::int64_t i = 0; i < v; ++i) {
                const auto ev_line = nextLine(is);
                if (!ev_line) {
                    parseFail(error, "schedule truncated");
                    return std::nullopt;
                }
                std::istringstream es(*ev_line);
                std::string f_tok, l_tok;
                es >> f_tok >> l_tok;
                const auto f = parseInt(f_tok);
                const auto l = parseInt(l_tok);
                if (!f || *f < 0 || !l || *l < 0) {
                    parseFail(error, "bad schedule event '" +
                              *ev_line + "'");
                    return std::nullopt;
                }
                resp.schedule.push_back(
                    {static_cast<FuncId>(*f),
                     static_cast<Level>(*l)});
            }
        } else if (key == "stats") {
            std::string k, val;
            while (ls >> k >> val) {
                // trace-id is hex, not an integer — handle it before
                // the generic numeric path.
                if (k == "trace-id") {
                    const auto t = obs::parseTraceIdHex(val);
                    if (!t) {
                        parseFail(error, "bad stats trace-id '" + val +
                                  "'");
                        return std::nullopt;
                    }
                    resp.stats.traceId = *t;
                    continue;
                }
                const auto n = parseInt(val);
                if (!n) {
                    parseFail(error, "bad stats value '" + val + "'");
                    return std::nullopt;
                }
                if (k == "cache-hits")
                    resp.stats.cacheHits =
                        static_cast<std::uint64_t>(*n);
                else if (k == "cache-misses")
                    resp.stats.cacheMisses =
                        static_cast<std::uint64_t>(*n);
                else if (k == "queue-ns")
                    resp.stats.queueNs = *n;
                else if (k == "solve-ns")
                    resp.stats.solveNs = *n;
                else if (k == "result-cache")
                    resp.stats.resultCache =
                        static_cast<std::uint64_t>(*n);
                // Unknown stats keys are ignored (forward compat).
            }
        } else {
            parseFail(error, "unknown response directive '" + key +
                      "'");
            return std::nullopt;
        }
    }

    if (!saw_status) {
        parseFail(error, "response carries no status");
        return std::nullopt;
    }
    return resp;
}

ServiceResponse
makeErrorResponse(std::uint64_t id, const std::string &code,
                  const std::string &message)
{
    ServiceResponse resp;
    resp.id = id;
    resp.ok = false;
    resp.code = code;
    resp.error = message;
    return resp;
}

void
writeStatsRequest(std::ostream &os, const StatsRequest &req)
{
    os << "jitsched-stats " << req.id;
    if (req.prom)
        os << " prom";
    os << "\n";
    os << "end\n";
}

std::string
statsRequestText(const StatsRequest &req)
{
    std::ostringstream os;
    writeStatsRequest(os, req);
    return os.str();
}

std::optional<StatsRequest>
tryReadStatsRequest(std::istream &is, std::string *error)
{
    StatsRequest req;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty stats-request frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok, arg;
        hs >> tag >> id_tok;
        if (tag != "jitsched-stats") {
            parseFail(error, "expected 'jitsched-stats <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad stats-request id '" + id_tok + "'");
            return std::nullopt;
        }
        req.id = static_cast<std::uint64_t>(*id);
        if (hs >> arg) {
            if (arg != "prom") {
                parseFail(error, "bad stats-request argument '" +
                          arg + "' (only 'prom' is known)");
                return std::nullopt;
            }
            req.prom = true;
        }
    }

    const auto tail = nextLine(is);
    if (!tail || *tail != "end") {
        parseFail(error, "stats request carries a body (expected "
                  "'end')");
        return std::nullopt;
    }
    return req;
}

void
writeStatsResponse(std::ostream &os, const StatsResponse &resp)
{
    os << "jitsched-stats-response " << resp.id << "\n";
    if (resp.ok) {
        os << "status ok\n";
        if (resp.prom)
            os << "format prom\n";
        os << "snapshot " << resp.lines.size() << "\n";
        for (const std::string &line : resp.lines)
            os << line << "\n";
    } else {
        os << "status error "
           << (resp.code.empty() ? errcode::unavailable : resp.code)
           << "\n";
        os << "error " << resp.error << "\n";
    }
    os << "end\n";
}

std::string
statsResponseText(const StatsResponse &resp)
{
    std::ostringstream os;
    writeStatsResponse(os, resp);
    return os.str();
}

std::optional<StatsResponse>
tryReadStatsResponse(std::istream &is, std::string *error)
{
    StatsResponse resp;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty stats-response frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-stats-response") {
            parseFail(error,
                      "expected 'jitsched-stats-response <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad stats-response id '" + id_tok + "'");
            return std::nullopt;
        }
        resp.id = static_cast<std::uint64_t>(*id);
    }

    bool saw_status = false;
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "stats response truncated (no 'end')");
            return std::nullopt;
        }
        if (*line == "end")
            break;

        std::istringstream ls(*line);
        std::string key;
        ls >> key;

        if (key == "status") {
            std::string st;
            ls >> st;
            if (st == "ok") {
                resp.ok = true;
            } else if (st == "error") {
                resp.ok = false;
                ls >> resp.code;
                if (resp.code.empty()) {
                    parseFail(error, "status error carries no code");
                    return std::nullopt;
                }
            } else {
                parseFail(error, "bad status '" + st + "'");
                return std::nullopt;
            }
            saw_status = true;
        } else if (key == "error") {
            constexpr std::size_t skip = sizeof("error ") - 1;
            resp.error = line->size() > skip ? line->substr(skip) : "";
        } else if (key == "format") {
            std::string fmt;
            ls >> fmt;
            if (fmt != "prom") {
                parseFail(error, "unknown snapshot format '" + fmt +
                          "'");
                return std::nullopt;
            }
            resp.prom = true;
        } else if (key == "snapshot") {
            std::int64_t v = 0;
            if (!intField(ls, "snapshot size", &v, error))
                return std::nullopt;
            if (v < 0) {
                parseFail(error, "negative snapshot size");
                return std::nullopt;
            }
            // The N snapshot lines are counted payload, not grammar:
            // read them raw.  Prometheus exposition has '#' comment
            // lines the cleaning reader would swallow, desyncing the
            // declared count.
            resp.lines.reserve(
                std::min(static_cast<std::size_t>(v),
                         std::size_t(1) << 16));
            std::string raw;
            for (std::int64_t i = 0; i < v; ++i) {
                if (!std::getline(is, raw)) {
                    parseFail(error, "snapshot truncated");
                    return std::nullopt;
                }
                resp.lines.push_back(raw);
            }
        } else {
            parseFail(error, "unknown stats-response directive '" +
                      key + "'");
            return std::nullopt;
        }
    }

    if (!saw_status) {
        parseFail(error, "stats response carries no status");
        return std::nullopt;
    }
    return resp;
}

StatsResponse
makeStatsResponse(std::uint64_t id, const std::string &snapshot_text,
                  bool prom)
{
    StatsResponse resp;
    resp.id = id;
    resp.ok = true;
    resp.prom = prom;
    std::istringstream is(snapshot_text);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            resp.lines.push_back(line);
    }
    return resp;
}

void
writeDumpRequest(std::ostream &os, const DumpRequest &req)
{
    os << "jitsched-dump " << req.id << "\n";
    os << "end\n";
}

std::string
dumpRequestText(const DumpRequest &req)
{
    std::ostringstream os;
    writeDumpRequest(os, req);
    return os.str();
}

std::optional<DumpRequest>
tryReadDumpRequest(std::istream &is, std::string *error)
{
    DumpRequest req;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty dump-request frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-dump") {
            parseFail(error, "expected 'jitsched-dump <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad dump-request id '" + id_tok + "'");
            return std::nullopt;
        }
        req.id = static_cast<std::uint64_t>(*id);
    }

    const auto tail = nextLine(is);
    if (!tail || *tail != "end") {
        parseFail(error, "dump request carries a body (expected "
                  "'end')");
        return std::nullopt;
    }
    return req;
}

void
writeDumpResponse(std::ostream &os, const DumpResponse &resp)
{
    os << "jitsched-dump-response " << resp.id << "\n";
    if (resp.ok) {
        os << "status ok\n";
        os << "records " << resp.records.size() << "\n";
        for (const obs::FlightRecord &r : resp.records)
            os << "record " << obs::FlightRecorder::recordLine(r)
               << "\n";
    } else {
        os << "status error "
           << (resp.code.empty() ? errcode::unavailable : resp.code)
           << "\n";
        os << "error " << resp.error << "\n";
    }
    os << "end\n";
}

std::string
dumpResponseText(const DumpResponse &resp)
{
    std::ostringstream os;
    writeDumpResponse(os, resp);
    return os.str();
}

namespace {

/** Parse one `record ...` line's key/value tail. */
bool
parseRecordLine(std::istringstream &ls, obs::FlightRecord *out,
                std::string *error)
{
    std::string k, val;
    while (ls >> k >> val) {
        if (k == "trace") {
            if (val == "0") {
                out->traceId = 0;
                continue;
            }
            const auto t = obs::parseTraceIdHex(val);
            if (!t)
                return parseFail(error, "bad record trace id '" + val +
                                 "'");
            out->traceId = *t;
        } else if (k == "policy") {
            out->policy = val == "-" ? "" : val;
        } else if (k == "status") {
            out->status = val == "-" ? "" : val;
        } else {
            const auto n = parseInt(val);
            if (!n)
                return parseFail(error, "bad record value '" + val +
                                 "' for '" + k + "'");
            if (k == "request")
                out->requestId = static_cast<std::uint64_t>(*n);
            else if (k == "queue-ns")
                out->queueNs = *n;
            else if (k == "solve-ns")
                out->solveNs = *n;
            else if (k == "bytes")
                out->bytes = static_cast<std::uint64_t>(*n);
            else if (k == "hops")
                out->hops = static_cast<std::uint32_t>(*n);
            else if (k == "cached")
                out->cached = *n != 0;
            // Unknown numeric keys are ignored (forward compat).
        }
    }
    return true;
}

} // anonymous namespace

std::optional<DumpResponse>
tryReadDumpResponse(std::istream &is, std::string *error)
{
    DumpResponse resp;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty dump-response frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-dump-response") {
            parseFail(error,
                      "expected 'jitsched-dump-response <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad dump-response id '" + id_tok + "'");
            return std::nullopt;
        }
        resp.id = static_cast<std::uint64_t>(*id);
    }

    bool saw_status = false;
    std::int64_t declared = -1;
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "dump response truncated (no 'end')");
            return std::nullopt;
        }
        if (*line == "end")
            break;

        std::istringstream ls(*line);
        std::string key;
        ls >> key;

        if (key == "status") {
            std::string st;
            ls >> st;
            if (st == "ok") {
                resp.ok = true;
            } else if (st == "error") {
                resp.ok = false;
                ls >> resp.code;
                if (resp.code.empty()) {
                    parseFail(error, "status error carries no code");
                    return std::nullopt;
                }
            } else {
                parseFail(error, "bad status '" + st + "'");
                return std::nullopt;
            }
            saw_status = true;
        } else if (key == "error") {
            constexpr std::size_t skip = sizeof("error ") - 1;
            resp.error = line->size() > skip ? line->substr(skip) : "";
        } else if (key == "records") {
            if (!intField(ls, "records size", &declared, error))
                return std::nullopt;
            if (declared < 0) {
                parseFail(error, "negative records size");
                return std::nullopt;
            }
            // Foreign input: cap the reserve like schedule/snapshot.
            resp.records.reserve(
                std::min(static_cast<std::size_t>(declared),
                         std::size_t(1) << 16));
        } else if (key == "record") {
            obs::FlightRecord r;
            if (!parseRecordLine(ls, &r, error))
                return std::nullopt;
            resp.records.push_back(std::move(r));
        } else {
            parseFail(error, "unknown dump-response directive '" +
                      key + "'");
            return std::nullopt;
        }
    }

    if (!saw_status) {
        parseFail(error, "dump response carries no status");
        return std::nullopt;
    }
    if (resp.ok && declared >= 0 &&
        static_cast<std::size_t>(declared) != resp.records.size()) {
        parseFail(error, "dump response declared " +
                  std::to_string(declared) + " records but carried " +
                  std::to_string(resp.records.size()));
        return std::nullopt;
    }
    return resp;
}

DumpResponse
makeDumpResponse(std::uint64_t id,
                 const std::vector<obs::FlightRecord> &records)
{
    DumpResponse resp;
    resp.id = id;
    resp.ok = true;
    resp.records = records;
    return resp;
}

void
writeSnapshotRequest(std::ostream &os, const SnapshotRequest &req)
{
    os << "jitsched-snapshot " << req.id << "\n";
    os << "end\n";
}

std::string
snapshotRequestText(const SnapshotRequest &req)
{
    std::ostringstream os;
    writeSnapshotRequest(os, req);
    return os.str();
}

std::optional<SnapshotRequest>
tryReadSnapshotRequest(std::istream &is, std::string *error)
{
    SnapshotRequest req;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty snapshot-request frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-snapshot") {
            parseFail(error,
                      "expected 'jitsched-snapshot <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad snapshot-request id '" + id_tok +
                      "'");
            return std::nullopt;
        }
        req.id = static_cast<std::uint64_t>(*id);
    }

    const auto tail = nextLine(is);
    if (!tail || *tail != "end") {
        parseFail(error, "snapshot request carries a body (expected "
                  "'end')");
        return std::nullopt;
    }
    return req;
}

void
writeSnapshotResponse(std::ostream &os, const SnapshotResponse &resp)
{
    os << "jitsched-snapshot-response " << resp.id << "\n";
    if (resp.ok) {
        os << "status ok\n";
        os << "entries " << resp.entries << "\n";
        os << "bytes " << resp.bytes << "\n";
    } else {
        os << "status error "
           << (resp.code.empty() ? errcode::unavailable : resp.code)
           << "\n";
        os << "error " << resp.error << "\n";
    }
    os << "end\n";
}

std::string
snapshotResponseText(const SnapshotResponse &resp)
{
    std::ostringstream os;
    writeSnapshotResponse(os, resp);
    return os.str();
}

std::optional<SnapshotResponse>
tryReadSnapshotResponse(std::istream &is, std::string *error)
{
    SnapshotResponse resp;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty snapshot-response frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-snapshot-response") {
            parseFail(
                error,
                "expected 'jitsched-snapshot-response <id>', got '" +
                *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad snapshot-response id '" + id_tok +
                      "'");
            return std::nullopt;
        }
        resp.id = static_cast<std::uint64_t>(*id);
    }

    bool saw_status = false;
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "snapshot response truncated (no 'end')");
            return std::nullopt;
        }
        if (*line == "end")
            break;

        std::istringstream ls(*line);
        std::string key;
        ls >> key;
        std::int64_t v = 0;

        if (key == "status") {
            std::string st;
            ls >> st;
            if (st == "ok") {
                resp.ok = true;
            } else if (st == "error") {
                resp.ok = false;
                ls >> resp.code;
                if (resp.code.empty()) {
                    parseFail(error, "status error carries no code");
                    return std::nullopt;
                }
            } else {
                parseFail(error, "bad status '" + st + "'");
                return std::nullopt;
            }
            saw_status = true;
        } else if (key == "error") {
            constexpr std::size_t skip = sizeof("error ") - 1;
            resp.error = line->size() > skip ? line->substr(skip) : "";
        } else if (key == "entries") {
            if (!intField(ls, "entries", &v, error))
                return std::nullopt;
            resp.entries = static_cast<std::uint64_t>(v);
        } else if (key == "bytes") {
            if (!intField(ls, "bytes", &v, error))
                return std::nullopt;
            resp.bytes = static_cast<std::uint64_t>(v);
        } else {
            parseFail(error, "unknown snapshot-response directive '" +
                      key + "'");
            return std::nullopt;
        }
    }

    if (!saw_status) {
        parseFail(error, "snapshot response carries no status");
        return std::nullopt;
    }
    return resp;
}

SnapshotResponse
makeSnapshotResponse(std::uint64_t id, std::uint64_t entries,
                     std::uint64_t bytes)
{
    SnapshotResponse resp;
    resp.id = id;
    resp.ok = true;
    resp.entries = entries;
    resp.bytes = bytes;
    return resp;
}

void
writePingRequest(std::ostream &os, const PingRequest &req)
{
    os << "jitsched-ping " << req.id << "\n";
    os << "end\n";
}

std::string
pingRequestText(const PingRequest &req)
{
    std::ostringstream os;
    writePingRequest(os, req);
    return os.str();
}

std::optional<PingRequest>
tryReadPingRequest(std::istream &is, std::string *error)
{
    PingRequest req;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty ping frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-ping") {
            parseFail(error, "expected 'jitsched-ping <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad ping id '" + id_tok + "'");
            return std::nullopt;
        }
        req.id = static_cast<std::uint64_t>(*id);
    }

    const auto tail = nextLine(is);
    if (!tail || *tail != "end") {
        parseFail(error, "ping carries a body (expected 'end')");
        return std::nullopt;
    }
    return req;
}

void
writePongResponse(std::ostream &os, const PongResponse &resp)
{
    os << "jitsched-pong " << resp.id << "\n";
    if (resp.ok) {
        os << "status ok\n";
    } else {
        os << "status error "
           << (resp.code.empty() ? errcode::unavailable : resp.code)
           << "\n";
        os << "error " << resp.error << "\n";
    }
    os << "end\n";
}

std::string
pongResponseText(const PongResponse &resp)
{
    std::ostringstream os;
    writePongResponse(os, resp);
    return os.str();
}

std::optional<PongResponse>
tryReadPongResponse(std::istream &is, std::string *error)
{
    PongResponse resp;

    const auto header = nextLine(is);
    if (!header) {
        parseFail(error, "empty pong frame");
        return std::nullopt;
    }
    {
        std::istringstream hs(*header);
        std::string tag, id_tok;
        hs >> tag >> id_tok;
        if (tag != "jitsched-pong") {
            parseFail(error, "expected 'jitsched-pong <id>', got '" +
                      *header + "'");
            return std::nullopt;
        }
        const auto id = parseInt(id_tok);
        if (!id || *id < 0) {
            parseFail(error, "bad pong id '" + id_tok + "'");
            return std::nullopt;
        }
        resp.id = static_cast<std::uint64_t>(*id);
    }

    bool saw_status = false;
    for (;;) {
        const auto line = nextLine(is);
        if (!line) {
            parseFail(error, "pong truncated (no 'end')");
            return std::nullopt;
        }
        if (*line == "end")
            break;

        std::istringstream ls(*line);
        std::string key;
        ls >> key;

        if (key == "status") {
            std::string st;
            ls >> st;
            if (st == "ok") {
                resp.ok = true;
            } else if (st == "error") {
                resp.ok = false;
                ls >> resp.code;
                if (resp.code.empty()) {
                    parseFail(error, "status error carries no code");
                    return std::nullopt;
                }
            } else {
                parseFail(error, "bad status '" + st + "'");
                return std::nullopt;
            }
            saw_status = true;
        } else if (key == "error") {
            constexpr std::size_t skip = sizeof("error ") - 1;
            resp.error = line->size() > skip ? line->substr(skip) : "";
        } else {
            parseFail(error, "unknown pong directive '" + key + "'");
            return std::nullopt;
        }
    }

    if (!saw_status) {
        parseFail(error, "pong carries no status");
        return std::nullopt;
    }
    return resp;
}

PongResponse
makePongResponse(std::uint64_t id)
{
    PongResponse resp;
    resp.id = id;
    resp.ok = true;
    return resp;
}

namespace {

/** First whitespace token of a frame's first meaningful line. */
std::string
frameTag(const std::string &frame)
{
    std::istringstream is(frame);
    const auto first = nextLine(is);
    if (!first)
        return {};
    std::istringstream hs(*first);
    std::string tag;
    hs >> tag;
    return tag;
}

} // anonymous namespace

bool
isStatsRequestFrame(const std::string &frame)
{
    return frameTag(frame) == "jitsched-stats";
}

bool
isPingRequestFrame(const std::string &frame)
{
    return frameTag(frame) == "jitsched-ping";
}

bool
isDumpRequestFrame(const std::string &frame)
{
    return frameTag(frame) == "jitsched-dump";
}

bool
isSnapshotRequestFrame(const std::string &frame)
{
    return frameTag(frame) == "jitsched-snapshot";
}

std::uint64_t
requestFingerprint(const ServiceRequest &req)
{
    std::uint64_t h = hashWorkload(req.workload);
    h = hashCombine(h, std::hash<std::string>{}(req.policy));
    const ServiceOptions &o = req.options;
    h = hashCombine(h, o.compileCores);
    h = hashCombine(h, o.model == ModelKind::Oracle ? 1 : 0);
    std::uint64_t sigma_bits = 0;
    static_assert(sizeof(sigma_bits) == sizeof(o.jitterSigma));
    std::memcpy(&sigma_bits, &o.jitterSigma, sizeof(sigma_bits));
    h = hashCombine(h, sigma_bits);
    h = hashCombine(h, o.jitterSeed);
    h = hashCombine(h, o.astarMaxExpansions);
    h = hashCombine(h, o.astarMemoryMb);
    return h;
}

} // namespace jitsched
