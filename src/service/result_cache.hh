/**
 * @file
 * Request-level result cache with singleflight collapsing and
 * warm-restart snapshots.
 *
 * The solvers are deterministic: the same (policy, options, workload)
 * always produces the same response body, yet ServiceEngine re-runs
 * the full solve — up to a multi-second A* search — for every
 * byte-identical repeat.  The cluster layer already routes repeats to
 * the same backend via requestFingerprint(); this cache is the final
 * step: a repeat costs one hash lookup plus a serialize, not a solve.
 *
 * What is stored: the *serialized response body* — every line of the
 * response frame between the `jitsched-response <id>` header and the
 * volatile `stats` line.  The protocol documents everything above
 * `stats` as a pure function of the request, so a hit rewrites only
 * the id (header) and trace-id/stats fields and is otherwise
 * byte-identical to a fresh solve.  Only ok responses are admitted.
 *
 * Keying: a canonical key material string — the request re-serialized
 * in writeRequest()'s normalized option order with the non-semantic
 * fields (id, deadline-ms, trace-id) dropped and jitter-seed
 * canonicalized to writeRequest()'s omit-when-sigma-is-zero rule —
 * hashed with the repo's standard splitmix64 chain.  The hash indexes
 * a sharded LRU; every hit compares the full key material, so hash
 * collisions degrade to misses, never to wrong answers.  `threads`
 * stays in the key: the parallel A* guarantees cost determinism
 * across worker counts, not schedule identity, and the cache promises
 * byte identity.
 *
 * Singleflight: N concurrent identical requests collapse onto one
 * solve.  The first prober becomes the *leader* (Kind::Leader) and
 * solves through the normal admission path; later identical probers
 * become *followers* (Kind::Follower) that block on the leader's
 * flight — with their own deadline still respected — and are answered
 * from its published body.  The waiter list is bounded; overflow
 * probers fall back to an independent solve (Kind::Bypass) so a
 * thundering herd can degrade to today's behavior but never queue
 * unboundedly behind one flight.
 *
 * Snapshots: a versioned, checksummed, size-capped file of the cached
 * entries, written on clean shutdown and on demand (SNAPSHOT wire
 * verb), loaded at startup behind strict validation — corrupt,
 * truncated, or version-skewed files are rejected wholesale and the
 * cache starts cold.  Format (entry bytes are raw, length-prefixed):
 *
 *   jitsched-result-cache v1
 *   entries <N>
 *   entry <key-bytes> <body-bytes>      (N times, MRU first)
 *   <key bytes><body bytes>
 *   checksum <16 hex digits>
 *   end
 *
 * A capacity of 0 disables everything: begin() answers Bypass without
 * touching the request, so a cache-off server is byte-for-byte
 * today's server.
 */

#ifndef JITSCHED_SERVICE_RESULT_CACHE_HH
#define JITSCHED_SERVICE_RESULT_CACHE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/protocol.hh"

namespace jitsched {

/** Knobs of the result cache. */
struct ResultCacheConfig
{
    /** Total body+key budget in bytes; 0 disables the cache. */
    std::size_t capacityBytes = 0;

    /** Shard count (clamped to [1, 64]); per-shard budget is
     * capacityBytes / shards. */
    std::size_t shards = 8;

    /**
     * Followers allowed to wait on one in-flight solve; probers past
     * the bound solve independently instead of queueing.
     */
    std::size_t maxWaiters = 64;

    /**
     * Largest single entry admitted (key + body bytes); 0 derives
     * capacityBytes / 8.  Oversized results are still served and
     * published to followers, just never stored.
     */
    std::size_t maxEntryBytes = 0;
};

/**
 * One in-flight solve that identical requests collapse onto.  done /
 * ok / body are guarded by `mutex`; `waiters` is guarded by the
 * owning shard's mutex (admission decisions happen there).
 */
struct ResultCacheFlight
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string body;
    std::size_t waiters = 0;
};

class ResultCache
{
  public:
    /** Monotone counters (see counters()). */
    struct Counters
    {
        std::uint64_t hits = 0;        ///< begin() served from store
        std::uint64_t misses = 0;      ///< begin() found nothing
        std::uint64_t collapsed = 0;   ///< followers answered by a leader
        std::uint64_t collapseTimeouts = 0; ///< followers that hit their deadline
        std::uint64_t insertions = 0;  ///< bodies admitted to the store
        std::uint64_t evictions = 0;   ///< entries evicted by LRU
        std::uint64_t oversized = 0;   ///< bodies rejected: too large
        std::uint64_t waiterOverflow = 0; ///< probers past maxWaiters
        std::uint64_t snapshotSaves = 0;  ///< successful saveSnapshot()
        std::uint64_t snapshotLoads = 0;  ///< successful loadSnapshot()
    };

    /** What one begin() probe resolved to. */
    struct Probe
    {
        enum class Kind
        {
            Bypass,   ///< cache off / waiter overflow: solve normally
            Hit,      ///< `body` is the cached response body
            Leader,   ///< solve, then publish() the body
            Follower, ///< waitFollower() for the leader's body
        };

        Kind kind = Kind::Bypass;
        std::string body; ///< Hit only
        std::string key;  ///< canonical key material (Leader/Follower)
        std::uint64_t hash = 0;
        std::shared_ptr<ResultCacheFlight> flight;
    };

    /** Why a follower's wait ended. */
    enum class WaitOutcome
    {
        Ready,   ///< leader published; *ok / *body are filled
        Timeout, ///< the follower's own deadline expired first
    };

    explicit ResultCache(ResultCacheConfig cfg = {});

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** True when capacityBytes > 0. */
    bool enabled() const { return cfg_.capacityBytes > 0; }

    /**
     * Probe for @p req.  Hit returns the stored body; Miss makes the
     * caller the leader of a new flight (it MUST publish() exactly
     * once) or a follower of an existing one (it MUST waitFollower()).
     */
    Probe begin(const ServiceRequest &req);

    /**
     * Leader hand-off: wake every follower with (@p ok, @p body) and
     * admit the body to the store when @p ok.  @p probe must be the
     * Leader probe begin() returned.
     */
    void publish(const Probe &probe, bool ok, std::string body);

    /**
     * Block until the leader publishes or @p deadline (when set)
     * expires.  On Ready, *ok and *body receive the leader's result.
     */
    WaitOutcome
    waitFollower(const Probe &probe,
                 std::optional<std::chrono::steady_clock::time_point>
                     deadline,
                 bool *ok, std::string *body);

    /**
     * Write every cached entry to @p path (MRU first), versioned and
     * checksummed.  @return true on success; false with *error set.
     */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr,
                      std::size_t *entries_out = nullptr,
                      std::size_t *bytes_out = nullptr);

    /**
     * Load a snapshot written by saveSnapshot().  Strict: a corrupt,
     * truncated, or version-skewed file is rejected wholesale (false,
     * *error set) and the cache is left unchanged.  Entries beyond
     * the configured capacity are skipped, MRU-first surviving.
     */
    bool loadSnapshot(const std::string &path,
                      std::string *error = nullptr,
                      std::size_t *entries_out = nullptr);

    std::size_t entries() const;

    /** Charged bytes currently stored (keys + bodies + overhead). */
    std::size_t bytes() const;

    Counters counters() const;

    /** Drop every entry and in-flight record (counters survive). */
    void clear();

    /**
     * Canonical key material: the request re-serialized without id,
     * deadline-ms, or trace-id, with jitter-seed omitted when
     * jitter-sigma is 0 (writeRequest()'s own normalization).  Two
     * requests with equal material are answered from one entry.
     */
    static std::string keyMaterial(const ServiceRequest &req);

    /** splitmix64-chain hash of key material. */
    static std::uint64_t keyHash(const std::string &material);

  private:
    struct Entry
    {
        std::string key;
        std::string body;
        std::uint64_t hash = 0;
    };

    using Lru = std::list<Entry>;

    struct Shard
    {
        mutable std::mutex mutex;
        Lru lru; ///< front = most recently used
        /** hash -> colliding entries; hits compare the full key. */
        std::unordered_map<std::uint64_t, std::vector<Lru::iterator>>
            index;
        std::unordered_map<std::string,
                           std::shared_ptr<ResultCacheFlight>>
            flights;
        std::size_t bytes = 0;
    };

    /** Fixed per-entry accounting overhead (list/map nodes). */
    static constexpr std::size_t kEntryOverhead = 64;

    Shard &shardFor(std::uint64_t hash);
    std::size_t shardCapacity() const;
    std::size_t maxEntryBytes() const;
    Lru::iterator findLocked(Shard &shard, std::uint64_t hash,
                             const std::string &material);
    void insertLocked(Shard &shard, std::string key, std::string body,
                      std::uint64_t hash, bool count_insertion);
    void eraseIndexLocked(Shard &shard, Lru::iterator it);

    const ResultCacheConfig cfg_;
    const std::size_t nshards_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex counters_mutex_;
    Counters counters_;
};

/**
 * The deterministic block of a response: every serialized line
 * between the `jitsched-response <id>` header and the `stats` line —
 * exactly what the result cache stores.
 */
std::string responseBodyText(const ServiceResponse &resp);

/**
 * Assemble a full response frame from a cached body: header for
 * @p id, the body verbatim, then a fresh volatile stats line.
 */
std::string cachedResponseText(std::uint64_t id,
                               const std::string &body,
                               const ServiceStats &stats);

/**
 * Parse a JITSCHED_RESULT_CACHE_MB value.  Strict like
 * JITSCHED_SLOW_MS: unset or empty means disabled (returns 0); a
 * non-negative integer is the capacity in MiB; anything else is
 * fatal() — a typo must not silently disable the cache.
 */
std::size_t parseResultCacheMbEnv(const char *env);

} // namespace jitsched

#endif // JITSCHED_SERVICE_RESULT_CACHE_HH
