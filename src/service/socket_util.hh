/**
 * @file
 * Thin POSIX TCP helpers for the service daemon and client: bind and
 * listen on loopback, connect, retrying whole-buffer writes, and a
 * buffered line reader — just enough socket for the line-oriented
 * wire protocol, with errors reported as strings (a daemon must not
 * fatal() on a misbehaving peer).
 */

#ifndef JITSCHED_SERVICE_SOCKET_UTIL_HH
#define JITSCHED_SERVICE_SOCKET_UTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace jitsched {

/**
 * Create, bind and listen on a TCP socket.
 * @param address IPv4 dotted quad, e.g. "127.0.0.1"
 * @param port port to bind; 0 picks an ephemeral port
 * @param backlog listen(2) backlog
 * @param error receives a description on failure
 * @return the listening fd, or -1 on failure
 */
int listenTcp(const std::string &address, std::uint16_t port,
              int backlog, std::string *error);

/** Port a bound socket actually landed on (resolves port 0). */
std::uint16_t boundPort(int fd);

/**
 * Connect to a TCP endpoint.
 * @return the connected fd, or -1 on failure
 */
int connectTcp(const std::string &address, std::uint16_t port,
               std::string *error);

/**
 * Connect with a deadline: the socket is put into non-blocking mode,
 * the three-way handshake is awaited with poll(2), and the socket is
 * returned to blocking mode on success.  A peer that silently drops
 * SYNs (a hung or firewalled backend) fails in @p timeout_ms instead
 * of the kernel's minutes-long default.
 *
 * @param timeout_ms connect deadline; < 0 means block indefinitely
 *        (identical to connectTcp)
 * @return the connected fd, or -1 on failure/timeout
 */
int connectTcpTimeout(const std::string &address, std::uint16_t port,
                      int timeout_ms, std::string *error);

/**
 * Arm SO_RCVTIMEO / SO_SNDTIMEO on a connected socket.  A value < 0
 * leaves that direction untouched; 0 disables the timeout.  With a
 * receive timeout armed, LineReader::readLine() returns nullopt on
 * expiry with timedOut() set — how a client tells a hung server from
 * a closed one.
 */
void setIoTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms);

/** Write the whole buffer, retrying on partial writes and EINTR. */
bool writeAll(int fd, std::string_view data);

/** Close an fd, ignoring EINTR; no-op for fd < 0. */
void closeFd(int fd);

/**
 * Buffered reader returning one '\n'-terminated line at a time
 * (terminator stripped, trailing '\r' tolerated).  A final unterminated
 * line before EOF is returned as-is.
 *
 * Lines are capped at @p max_line_bytes: a peer streaming bytes
 * without ever sending a newline would otherwise grow the buffer
 * without bound.  On overflow readLine() returns nullopt and
 * overflowed() reports why, so the caller can tell a hostile peer
 * from a clean EOF.
 */
class LineReader
{
  public:
    explicit LineReader(int fd,
                        std::size_t max_line_bytes = std::size_t(1)
                                                     << 20)
        : fd_(fd), max_line_(max_line_bytes)
    {
    }

    /** Next line, or nullopt at EOF / read error / oversized line. */
    std::optional<std::string> readLine();

    /** True once a line exceeded the construction-time cap. */
    bool overflowed() const { return overflowed_; }

    /**
     * True once a read expired against the socket's SO_RCVTIMEO
     * (see setIoTimeouts).  Distinguishes "the peer is hung" from
     * "the peer hung up" after a nullopt readLine().
     */
    bool timedOut() const { return timed_out_; }

  private:
    int fd_;
    std::size_t max_line_;
    std::string buffer_;
    std::size_t pos_ = 0;
    bool eof_ = false;
    bool overflowed_ = false;
    bool timed_out_ = false;
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_SOCKET_UTIL_HH
