#include "service/admission.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/instruments.hh"
#include "obs/span.hh"

namespace jitsched {

AdmissionQueue::AdmissionQueue(ServiceEngine &engine,
                               AdmissionConfig cfg)
    : engine_(engine), cfg_(cfg)
{
    worker_ = std::thread([this] { workerLoop(); });
}

AdmissionQueue::~AdmissionQueue()
{
    stop();
}

std::future<ServiceResponse>
AdmissionQueue::submit(ServiceRequest req)
{
    Pending p;
    p.admitted = Clock::now();
    if (req.options.deadlineMs >= 0) {
        p.deadline = p.admitted +
                     std::chrono::milliseconds(req.options.deadlineMs);
        p.has_deadline = true;
    }
    p.fingerprint = requestFingerprint(req);
    p.req = std::move(req);
    std::future<ServiceResponse> future = p.promise.get_future();

    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stop_) {
            ServiceResponse resp = makeErrorResponse(
                p.req.id, errcode::unavailable,
                "service is shutting down");
            resp.stats.traceId = p.req.traceId;
            p.promise.set_value(std::move(resp));
            return future;
        }
        if (queue_.size() >= cfg_.maxDepth) {
            ++shed_;
            JITSCHED_OBS(
                obs::ServiceMetrics::get().requestsShed.add());
            ServiceResponse resp = makeErrorResponse(
                p.req.id, errcode::resourceExhausted,
                "admission queue full (" +
                    std::to_string(cfg_.maxDepth) +
                    " pending requests); retry later");
            resp.stats.traceId = p.req.traceId;
            p.promise.set_value(std::move(resp));
            return future;
        }
        ++accepted_;
        queue_.push_back(std::move(p));
        JITSCHED_OBS({
            obs::ServiceMetrics &m = obs::ServiceMetrics::get();
            m.requestsAccepted.add();
            m.queueDepth.set(
                static_cast<std::int64_t>(queue_.size()));
        });
    }
    wake_cv_.notify_one();
    return future;
}

void
AdmissionQueue::answer(Pending &p, ServiceResponse resp)
{
    // Error paths (shed, expired, shutdown) build their response via
    // makeErrorResponse, which never saw the request's trace id.
    resp.stats.traceId = p.req.traceId;
    resp.stats.queueNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - p.admitted)
            .count() -
        resp.stats.solveNs;
    if (resp.stats.queueNs < 0)
        resp.stats.queueNs = 0;
    JITSCHED_OBS(obs::ServiceMetrics::get().queueWaitNs.observe(
        resp.stats.queueNs));
    p.promise.set_value(std::move(resp));
}

void
AdmissionQueue::workerLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_cv_.wait(lk,
                          [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty() && stop_)
                return;
            while (!queue_.empty() && batch.size() < cfg_.maxBatch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            JITSCHED_OBS(obs::ServiceMetrics::get().queueDepth.set(
                static_cast<std::int64_t>(queue_.size())));
        }

        if (cfg_.discipline == AdmissionDiscipline::CachedFirst) {
            // Stable: cache-backed requests first, arrival order
            // preserved within each class (mirrors the
            // first-compile-first queues of vm/compile_manager.hh).
            std::stable_partition(
                batch.begin(), batch.end(), [&](const Pending &p) {
                    return served_fingerprints_.count(p.fingerprint) >
                           0;
                });
        }

        for (Pending &p : batch) {
            if (p.has_deadline && Clock::now() > p.deadline) {
                {
                    std::lock_guard<std::mutex> lk(mutex_);
                    ++expired_;
                }
                JITSCHED_OBS(
                    obs::ServiceMetrics::get().requestsExpired.add());
                answer(p, makeErrorResponse(
                              p.req.id, errcode::deadlineExceeded,
                              "request waited past its " +
                                  std::to_string(
                                      p.req.options.deadlineMs) +
                                  " ms deadline"));
                continue;
            }
            // The admission-wait span covers submit() -> this moment;
            // the solve span nests inside engine_.serve().
            obs::SpanCollector::global().recordBetween(
                p.req.traceId, "service.admission_wait", p.admitted,
                Clock::now());
            ServiceResponse resp = engine_.serve(p.req);
            if (served_fingerprints_.size() >=
                cfg_.maxServedFingerprints)
                served_fingerprints_.clear();
            served_fingerprints_.insert(p.fingerprint);
            {
                std::lock_guard<std::mutex> lk(mutex_);
                ++processed_;
            }
            JITSCHED_OBS(
                obs::ServiceMetrics::get().requestsProcessed.add());
            answer(p, std::move(resp));
        }
    }
}

void
AdmissionQueue::stop()
{
    std::deque<Pending> orphans;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stop_ && !worker_.joinable())
            return;
        stop_ = true;
        orphans.swap(queue_);
    }
    wake_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    for (Pending &p : orphans)
        p.promise.set_value(makeErrorResponse(
            p.req.id, errcode::unavailable,
            "service stopped before the request was served"));
}

void
AdmissionQueue::restart()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!stop_)
            return; // never stopped (or already restarted)
        stop_ = false;
    }
    // stop() joined the old worker before clearing any path here, so
    // the thread object is safe to reuse.
    worker_ = std::thread([this] { workerLoop(); });
}

std::uint64_t
AdmissionQueue::accepted() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return accepted_;
}

std::uint64_t
AdmissionQueue::shed() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return shed_;
}

std::uint64_t
AdmissionQueue::expired() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return expired_;
}

std::uint64_t
AdmissionQueue::processed() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return processed_;
}

} // namespace jitsched
