#include "service/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/instruments.hh"
#include "support/logging.hh"
#include "support/strutil.hh"
#include "trace/trace_io.hh"

namespace jitsched {

namespace {

/** SplitMix64 finalizer: the avalanche step used throughout. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Order-sensitive hash chain over raw bytes. */
std::uint64_t
chainBytes(std::uint64_t state, const std::string &bytes)
{
    state = mix64(state ^ mix64(bytes.size()));
    std::uint64_t word = 0;
    std::size_t filled = 0;
    for (const char c : bytes) {
        word |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(c))
                << (8 * filled);
        if (++filled == 8) {
            state = mix64(state ^ mix64(word));
            word = 0;
            filled = 0;
        }
    }
    if (filled != 0)
        state = mix64(state ^ mix64(word));
    return state;
}

/** Serialize a double exactly like protocol.cc's writeDouble. */
void
writeDouble(std::ostream &os, double v)
{
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << v;
    os << tmp.str();
}

bool
snapshotFail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = "result-cache snapshot: " + msg;
    return false;
}

constexpr const char *kSnapshotMagic = "jitsched-result-cache v1";

/** Running checksum over the snapshot's entry stream. */
std::uint64_t
snapshotChecksum(const std::vector<std::pair<std::string,
                                             std::string>> &entries)
{
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    state = mix64(state ^ mix64(entries.size()));
    for (const auto &[key, body] : entries) {
        state = chainBytes(state, key);
        state = chainBytes(state, body);
    }
    return state;
}

} // anonymous namespace

ResultCache::ResultCache(ResultCacheConfig cfg)
    : cfg_(cfg),
      nshards_(std::clamp<std::size_t>(cfg.shards, 1, 64))
{
    shards_.reserve(nshards_);
    for (std::size_t i = 0; i < nshards_; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(std::uint64_t hash)
{
    // The canonical hash is already mixed; its low bits shard.
    return *shards_[hash % nshards_];
}

std::size_t
ResultCache::shardCapacity() const
{
    return std::max<std::size_t>(cfg_.capacityBytes / nshards_, 1);
}

std::size_t
ResultCache::maxEntryBytes() const
{
    if (cfg_.maxEntryBytes != 0)
        return cfg_.maxEntryBytes;
    return std::max<std::size_t>(cfg_.capacityBytes / 8, 1);
}

std::string
ResultCache::keyMaterial(const ServiceRequest &req)
{
    // Mirrors writeRequest()'s normalized option order with the
    // non-semantic fields dropped: no id, no deadline-ms, no
    // trace-id.  jitter-seed follows the writer's rule — omitted
    // when sigma is 0, where the simulator never reads it — so
    // requests differing only in a dormant seed share one entry.
    std::ostringstream os;
    os << "policy " << req.policy << "\n";
    const ServiceOptions &o = req.options;
    os << "option compile-cores " << o.compileCores << "\n";
    os << "option model "
       << (o.model == ModelKind::Oracle ? "oracle" : "default")
       << "\n";
    if (o.jitterSigma != 0.0) {
        os << "option jitter-sigma ";
        writeDouble(os, o.jitterSigma);
        os << "\n";
        os << "option jitter-seed " << o.jitterSeed << "\n";
    }
    os << "option astar-max-expansions " << o.astarMaxExpansions
       << "\n";
    os << "option astar-memory-mb " << o.astarMemoryMb << "\n";
    // Kept in the key: the parallel search promises cost determinism
    // across worker counts, not schedule identity, and the cache
    // promises byte identity.
    if (o.astarThreads != 0)
        os << "option threads " << o.astarThreads << "\n";
    os << "payload\n";
    writeWorkload(os, req.workload);
    return os.str();
}

std::uint64_t
ResultCache::keyHash(const std::string &material)
{
    return chainBytes(0x9e3779b97f4a7c15ull, material);
}

ResultCache::Lru::iterator
ResultCache::findLocked(Shard &shard, std::uint64_t hash,
                        const std::string &material)
{
    const auto bucket = shard.index.find(hash);
    if (bucket == shard.index.end())
        return shard.lru.end();
    for (const Lru::iterator it : bucket->second)
        if (it->key == material) // full-key compare on hit
            return it;
    return shard.lru.end();
}

void
ResultCache::eraseIndexLocked(Shard &shard, Lru::iterator it)
{
    const auto bucket = shard.index.find(it->hash);
    if (bucket == shard.index.end())
        return;
    auto &chain = bucket->second;
    chain.erase(std::remove(chain.begin(), chain.end(), it),
                chain.end());
    if (chain.empty())
        shard.index.erase(bucket);
}

void
ResultCache::insertLocked(Shard &shard, std::string key,
                          std::string body, std::uint64_t hash,
                          bool count_insertion)
{
    const std::size_t charge =
        key.size() + body.size() + kEntryOverhead;
    if (charge > maxEntryBytes() || charge > shardCapacity()) {
        std::lock_guard<std::mutex> clk(counters_mutex_);
        ++counters_.oversized;
        return;
    }
    if (findLocked(shard, hash, key) != shard.lru.end())
        return; // a racing leader beat us; its body is identical

    std::uint64_t evicted = 0;
    while (shard.bytes + charge > shardCapacity() &&
           !shard.lru.empty()) {
        const Lru::iterator victim = std::prev(shard.lru.end());
        shard.bytes -= victim->key.size() + victim->body.size() +
                       kEntryOverhead;
        eraseIndexLocked(shard, victim);
        shard.lru.erase(victim);
        ++evicted;
    }

    shard.lru.push_front(Entry{std::move(key), std::move(body),
                               hash});
    shard.index[hash].push_back(shard.lru.begin());
    shard.bytes += charge;

    {
        std::lock_guard<std::mutex> clk(counters_mutex_);
        counters_.evictions += evicted;
        if (count_insertion)
            ++counters_.insertions;
    }
    // The size gauges are refreshed by the caller once the shard
    // lock is released: bytes()/entries() re-lock every shard, which
    // would self-deadlock here.
    JITSCHED_OBS({
        if (evicted != 0)
            obs::ServiceMetrics::get().resultCacheEvictions.add(
                evicted);
    });
}

ResultCache::Probe
ResultCache::begin(const ServiceRequest &req)
{
    Probe probe;
    if (!enabled())
        return probe; // Bypass: byte-for-byte today's behavior

    probe.key = keyMaterial(req);
    probe.hash = keyHash(probe.key);
    Shard &shard = shardFor(probe.hash);

    std::lock_guard<std::mutex> lk(shard.mutex);
    const Lru::iterator it = findLocked(shard, probe.hash, probe.key);
    if (it != shard.lru.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        probe.kind = Probe::Kind::Hit;
        probe.body = it->body;
        {
            std::lock_guard<std::mutex> clk(counters_mutex_);
            ++counters_.hits;
        }
        JITSCHED_OBS(
            obs::ServiceMetrics::get().resultCacheHits.add());
        return probe;
    }

    {
        std::lock_guard<std::mutex> clk(counters_mutex_);
        ++counters_.misses;
    }
    JITSCHED_OBS(obs::ServiceMetrics::get().resultCacheMisses.add());

    const auto flight = shard.flights.find(probe.key);
    if (flight != shard.flights.end()) {
        if (flight->second->waiters >= cfg_.maxWaiters) {
            // Bounded waiter list: overflow degrades to an
            // independent solve, never to an unbounded queue.
            {
                std::lock_guard<std::mutex> clk(counters_mutex_);
                ++counters_.waiterOverflow;
            }
            probe.kind = Probe::Kind::Bypass;
            return probe;
        }
        ++flight->second->waiters;
        probe.kind = Probe::Kind::Follower;
        probe.flight = flight->second;
        return probe;
    }

    probe.kind = Probe::Kind::Leader;
    probe.flight = std::make_shared<ResultCacheFlight>();
    shard.flights.emplace(probe.key, probe.flight);
    return probe;
}

void
ResultCache::publish(const Probe &probe, bool ok, std::string body)
{
    if (probe.flight == nullptr)
        return;
    Shard &shard = shardFor(probe.hash);
    {
        // Retire the flight first so late probers start a new one
        // instead of following a flight that already fired.
        std::lock_guard<std::mutex> lk(shard.mutex);
        shard.flights.erase(probe.key);
        if (ok)
            insertLocked(shard, probe.key, body, probe.hash,
                         /*count_insertion=*/true);
    }
    JITSCHED_OBS({
        obs::ServiceMetrics &m = obs::ServiceMetrics::get();
        m.resultCacheBytes.set(static_cast<std::int64_t>(bytes()));
        m.resultCacheEntries.set(
            static_cast<std::int64_t>(entries()));
    });
    {
        std::lock_guard<std::mutex> flk(probe.flight->mutex);
        probe.flight->done = true;
        probe.flight->ok = ok;
        probe.flight->body = std::move(body);
    }
    probe.flight->cv.notify_all();
}

ResultCache::WaitOutcome
ResultCache::waitFollower(
    const Probe &probe,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    bool *ok, std::string *body)
{
    ResultCacheFlight &flight = *probe.flight;
    bool ready = false;
    {
        std::unique_lock<std::mutex> lk(flight.mutex);
        const auto done = [&] { return flight.done; };
        if (deadline.has_value())
            ready = flight.cv.wait_until(lk, *deadline, done);
        else {
            flight.cv.wait(lk, done);
            ready = true;
        }
        if (ready) {
            *ok = flight.ok;
            *body = flight.body;
        }
    }
    {
        // The waiter slot frees under the shard lock that admitted it.
        Shard &shard = shardFor(probe.hash);
        std::lock_guard<std::mutex> lk(shard.mutex);
        if (probe.flight->waiters > 0)
            --probe.flight->waiters;
    }
    std::lock_guard<std::mutex> clk(counters_mutex_);
    if (ready) {
        ++counters_.collapsed;
        JITSCHED_OBS(
            obs::ServiceMetrics::get().resultCacheCollapsed.add());
        return WaitOutcome::Ready;
    }
    ++counters_.collapseTimeouts;
    return WaitOutcome::Timeout;
}

bool
ResultCache::saveSnapshot(const std::string &path, std::string *error,
                          std::size_t *entries_out,
                          std::size_t *bytes_out)
{
    // Collect MRU-first so a smaller restart capacity keeps the
    // hottest entries when the loader truncates the tail.
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard->mutex);
        for (const Entry &e : shard->lru)
            rows.emplace_back(e.key, e.body);
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return snapshotFail(error, "cannot open '" + path +
                            "' for writing");
    os << kSnapshotMagic << "\n";
    os << "entries " << rows.size() << "\n";
    std::size_t payload = 0;
    for (const auto &[key, body] : rows) {
        os << "entry " << key.size() << " " << body.size() << "\n";
        os.write(key.data(),
                 static_cast<std::streamsize>(key.size()));
        os.write(body.data(),
                 static_cast<std::streamsize>(body.size()));
        os << "\n";
        payload += key.size() + body.size();
    }
    os << "checksum "
       << strprintf("%016llx",
                    static_cast<unsigned long long>(
                        snapshotChecksum(rows)))
       << "\n";
    os << "end\n";
    os.flush();
    if (!os)
        return snapshotFail(error, "write to '" + path + "' failed");

    {
        std::lock_guard<std::mutex> clk(counters_mutex_);
        ++counters_.snapshotSaves;
    }
    JITSCHED_OBS(
        obs::ServiceMetrics::get().resultCacheSnapshotSaves.add());
    if (entries_out != nullptr)
        *entries_out = rows.size();
    if (bytes_out != nullptr)
        *bytes_out = payload;
    return true;
}

bool
ResultCache::loadSnapshot(const std::string &path, std::string *error,
                          std::size_t *entries_out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return snapshotFail(error, "cannot open '" + path + "'");

    std::string line;
    if (!std::getline(is, line) || line != kSnapshotMagic)
        return snapshotFail(error, "bad magic/version line '" + line +
                            "' (expected '" +
                            std::string(kSnapshotMagic) + "')");

    if (!std::getline(is, line))
        return snapshotFail(error, "truncated before entry count");
    std::uint64_t declared = 0;
    {
        std::istringstream ls(line);
        std::string key, count_tok;
        ls >> key >> count_tok;
        const auto n = parseInt(count_tok);
        if (key != "entries" || !n || *n < 0)
            return snapshotFail(error, "bad entries line '" + line +
                                "'");
        declared = static_cast<std::uint64_t>(*n);
    }
    // Entry-count sanity bound: a snapshot is size-capped at write
    // time, so an absurd count is corruption, not data.
    if (declared > (std::uint64_t(1) << 24))
        return snapshotFail(error, "implausible entry count " +
                            std::to_string(declared));

    // Validate everything before touching the cache: a corrupt tail
    // must not leave a half-loaded store behind.
    std::vector<std::pair<std::string, std::string>> rows;
    rows.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(declared, 1 << 16)));
    for (std::uint64_t i = 0; i < declared; ++i) {
        if (!std::getline(is, line))
            return snapshotFail(error, "truncated at entry " +
                                std::to_string(i));
        std::istringstream ls(line);
        std::string tag, key_tok, body_tok;
        ls >> tag >> key_tok >> body_tok;
        const auto key_len = parseInt(key_tok);
        const auto body_len = parseInt(body_tok);
        if (tag != "entry" || !key_len || *key_len < 0 || !body_len ||
            *body_len < 0)
            return snapshotFail(error, "bad entry header '" + line +
                                "'");
        constexpr std::int64_t kMaxLen = std::int64_t(1) << 26;
        if (*key_len > kMaxLen || *body_len > kMaxLen)
            return snapshotFail(error, "implausible entry length in '" +
                                line + "'");
        std::string key(static_cast<std::size_t>(*key_len), '\0');
        std::string body(static_cast<std::size_t>(*body_len), '\0');
        if (!is.read(key.data(),
                     static_cast<std::streamsize>(key.size())) ||
            !is.read(body.data(),
                     static_cast<std::streamsize>(body.size())))
            return snapshotFail(error, "truncated entry payload at "
                                "entry " + std::to_string(i));
        char nl = '\0';
        if (!is.get(nl) || nl != '\n')
            return snapshotFail(error, "entry " + std::to_string(i) +
                                " payload not newline-terminated");
        rows.emplace_back(std::move(key), std::move(body));
    }

    if (!std::getline(is, line))
        return snapshotFail(error, "truncated before checksum");
    {
        std::istringstream ls(line);
        std::string tag, hex;
        ls >> tag >> hex;
        if (tag != "checksum" || hex.size() != 16)
            return snapshotFail(error, "bad checksum line '" + line +
                                "'");
        const std::uint64_t stored =
            std::strtoull(hex.c_str(), nullptr, 16);
        if (stored != snapshotChecksum(rows))
            return snapshotFail(error, "checksum mismatch — the file "
                                "is corrupt");
    }
    if (!std::getline(is, line) || line != "end")
        return snapshotFail(error, "missing end trailer");

    // Replay MRU-first into an empty-tail position per shard: each
    // row lands at the LRU end, so file order becomes LRU order and
    // capacity overflow drops the coldest rows.
    std::size_t loaded = 0;
    for (auto &[key, body] : rows) {
        const std::uint64_t hash = keyHash(key);
        Shard &shard = shardFor(hash);
        std::lock_guard<std::mutex> lk(shard.mutex);
        const std::size_t charge =
            key.size() + body.size() + kEntryOverhead;
        if (charge > maxEntryBytes() ||
            shard.bytes + charge > shardCapacity())
            continue;
        if (findLocked(shard, hash, key) != shard.lru.end())
            continue;
        shard.lru.push_back(Entry{std::move(key), std::move(body),
                                  hash});
        shard.index[hash].push_back(std::prev(shard.lru.end()));
        shard.bytes += charge;
        ++loaded;
    }

    {
        std::lock_guard<std::mutex> clk(counters_mutex_);
        ++counters_.snapshotLoads;
    }
    JITSCHED_OBS({
        obs::ServiceMetrics &m = obs::ServiceMetrics::get();
        m.resultCacheSnapshotLoads.add();
        m.resultCacheBytes.set(static_cast<std::int64_t>(bytes()));
        m.resultCacheEntries.set(
            static_cast<std::int64_t>(entries()));
    });
    if (entries_out != nullptr)
        *entries_out = loaded;
    return true;
}

std::size_t
ResultCache::entries() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard->mutex);
        total += shard->lru.size();
    }
    return total;
}

std::size_t
ResultCache::bytes() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard->mutex);
        total += shard->bytes;
    }
    return total;
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> clk(counters_mutex_);
    return counters_;
}

void
ResultCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
        // Dropping a pending flight record only means later probers
        // lead their own solves; existing followers keep their
        // shared_ptr and are still released by their leader.
        shard->flights.clear();
        shard->bytes = 0;
    }
}

std::string
responseBodyText(const ServiceResponse &resp)
{
    // Everything writeResponse() emits between the header line and
    // the stats line: serialize without stats, then strip the header
    // and the trailing `end`.
    const std::string full = responseText(resp, /*include_stats=*/
                                          false);
    const std::size_t header_end = full.find('\n');
    if (header_end == std::string::npos)
        return {};
    constexpr std::size_t kEndLen = sizeof("end\n") - 1;
    if (full.size() < header_end + 1 + kEndLen)
        return {};
    return full.substr(header_end + 1,
                       full.size() - header_end - 1 - kEndLen);
}

std::string
cachedResponseText(std::uint64_t id, const std::string &body,
                   const ServiceStats &stats)
{
    std::ostringstream os;
    os << "jitsched-response " << id << "\n";
    os << body;
    writeStatsLine(os, stats);
    os << "end\n";
    return os.str();
}

std::size_t
parseResultCacheMbEnv(const char *env)
{
    if (env == nullptr || *env == '\0')
        return 0;
    const auto n = parseInt(trim(env));
    if (!n.has_value() || *n < 0)
        JITSCHED_FATAL("JITSCHED_RESULT_CACHE_MB must be a "
                       "non-negative integer (MiB), got '", env, "'");
    return static_cast<std::size_t>(*n);
}

} // namespace jitsched
