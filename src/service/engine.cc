#include "service/engine.hh"

#include <chrono>

#include "obs/instruments.hh"
#include "obs/span.hh"

namespace jitsched {

ServiceResponse
ServiceEngine::serve(const ServiceRequest &req)
{
    served_.fetch_add(1, std::memory_order_relaxed);

    const SchedulerPolicy *policy = registry_.find(req.policy);
    if (policy == nullptr) {
        std::string known;
        for (const std::string &n : registry_.names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        ServiceResponse resp = makeErrorResponse(
            req.id, errcode::invalidArgument,
            "unknown policy '" + req.policy + "' (known: " + known +
                ")");
        resp.stats.traceId = req.traceId;
        return resp;
    }
    if (req.workload.numCalls() == 0) {
        ServiceResponse resp =
            makeErrorResponse(req.id, errcode::invalidArgument,
                              "workload has no calls — nothing to "
                              "schedule");
        resp.stats.traceId = req.traceId;
        return resp;
    }

    // This request's own probe tally: an evaluator over the shared
    // pool and cache, counting into a local EvalCounters, so the
    // stats line attributes hits/misses correctly even when serves
    // overlap.
    EvalCounters counters;
    BatchEvaluator evaluator(pool_, &cache_, &counters);
    const auto t0 = std::chrono::steady_clock::now();

    PolicyOutcome outcome;
    {
        obs::ScopedSpan span(req.traceId, "service.solve");
        span.tag("policy", req.policy);
        outcome = policy->run(req.workload, req.options, evaluator);
    }

    const auto t1 = std::chrono::steady_clock::now();

    ServiceResponse resp;
    if (!outcome.ok) {
        resp = makeErrorResponse(req.id, errcode::solverLimit,
                                 outcome.error);
        resp.policy = req.policy;
    } else {
        resp.id = req.id;
        resp.ok = true;
        resp.policy = req.policy;
        resp.lowerBound = outcome.lowerBound;
        resp.hasSim = outcome.hasSim;
        resp.sim = outcome.sim;
        resp.hasSchedule = outcome.hasSchedule;
        resp.schedule = outcome.schedule.events();
    }
    resp.stats.cacheHits =
        counters.hits.load(std::memory_order_relaxed);
    resp.stats.cacheMisses =
        counters.misses.load(std::memory_order_relaxed);
    resp.stats.traceId = req.traceId;
    resp.stats.solveNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    // The per-policy latency histogram; resolved here (one registry
    // lookup per request) rather than per sample.
    JITSCHED_OBS(obs::ServiceMetrics::solveNsFor(req.policy)
                     .observe(resp.stats.solveNs));
    return resp;
}

} // namespace jitsched
