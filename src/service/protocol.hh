/**
 * @file
 * The scheduling service's request/response wire protocol.
 *
 * Text, line-oriented, built on the workload grammar of
 * trace/trace_io.hh so any trace a client can save to disk it can
 * also submit over a socket.  `#` comments and blank lines are
 * tolerated everywhere; every frame ends with a lone `end` line,
 * which is what lets a connection recover framing after a malformed
 * request.
 *
 * Request frame:
 *
 *   jitsched-request <id>
 *   policy <name>
 *   option <key> <value>        (zero or more)
 *   payload
 *   <workload text grammar>     (trace/trace_io.hh)
 *   end
 *
 * Option keys: compile-cores, model (oracle|default), jitter-sigma,
 * jitter-seed, astar-max-expansions, astar-memory-mb, deadline-ms,
 * trace-id (1..16 hex digits, nonzero — the request's distributed
 * trace id, minted at first contact by jitsched-cli or the router
 * and deliberately excluded from requestFingerprint(), so tracing a
 * request never changes cache merging or cluster affinity).
 *
 * Response frame:
 *
 *   jitsched-response <id>
 *   status ok                   | status error <CODE>
 *   error <message>             (error frames only)
 *   policy <name>
 *   lower-bound <ticks>
 *   makespan <ticks>            ┐
 *   compile-end <ticks>         │
 *   exec-end <ticks>            │
 *   total-bubble <ticks>        │ present when the policy
 *   bubble-count <n>            │ evaluated a schedule
 *   total-exec <ticks>          │
 *   total-compile <ticks>       │
 *   calls-at-level <n0> <n1> …  ┘
 *   schedule <K>                present when a schedule exists,
 *   <func> <level>              followed by K event lines
 *   stats cache-hits <h> cache-misses <m> queue-ns <q> solve-ns <s>
 *     [result-cache <r>] [trace-id <hex>]
 *   end
 *
 * Everything above the `stats` line is a pure function of the request
 * — byte-identical to a direct library call.  The `stats` line is the
 * only volatile part (cache behaviour, queueing, wall time, and the
 * echoed trace id when the request carried one), so clients
 * comparing results strip exactly that line.  `result-cache` appears
 * only when the response came out of the request-level result cache
 * (1 = served from the store, 2 = collapsed onto a concurrent
 * identical solve); a cache-off daemon never emits the token, so its
 * frames are byte-identical to pre-cache builds.
 *
 * Besides scheduling requests, a connection can scrape the daemon's
 * metrics registry (obs/metrics.hh) with a STATS frame:
 *
 *   jitsched-stats <id> [prom]
 *   end
 *
 * answered by
 *
 *   jitsched-stats-response <id>
 *   status ok                   | status error <CODE>
 *   [format prom]               (prom requests only)
 *   snapshot <N>                followed by N raw snapshot lines in
 *   <type> <name> <values...>   MetricsRegistry::snapshotText() form
 *   end
 *
 * With the `prom` argument the N snapshot lines are instead
 * MetricsRegistry::snapshotProm() Prometheus text exposition.
 * Because exposition comment lines start with '#', the N lines after
 * `snapshot` are read raw (no comment stripping) — they are counted,
 * not grammar.
 *
 * The server answers STATS frames inline on the connection handler,
 * bypassing the admission queue — scrapes keep working while the
 * queue is shedding load, which is exactly when they matter.
 *
 * The in-memory flight recorder (obs/flight_recorder.hh) is scraped
 * with a DUMP frame, also answered inline:
 *
 *   jitsched-dump <id>
 *   end
 *
 * answered by
 *
 *   jitsched-dump-response <id>
 *   status ok                   | status error <CODE>
 *   error <message>             (error frames only)
 *   records <N>                 followed by N record lines:
 *   record trace <hex> request <id> policy <p> status <s>
 *     queue-ns <q> solve-ns <n> bytes <b> hops <h> cached <0|1>
 *   end
 *
 * The result cache (service/result_cache.hh) is snapshotted to its
 * configured file on demand with a SNAPSHOT frame, also answered
 * inline:
 *
 *   jitsched-snapshot <id>
 *   end
 *
 * answered by
 *
 *   jitsched-snapshot-response <id>
 *   status ok                   | status error <CODE>
 *   error <message>             (error frames only)
 *   entries <N>                 entries written
 *   bytes <B>                   key+body payload bytes written
 *   end
 *
 * A daemon without a result cache or snapshot path answers
 * `status error INVALID_ARGUMENT` — the verb reports the
 * misconfiguration instead of silently writing nothing.
 *
 * Liveness is probed with a PING frame:
 *
 *   jitsched-ping <id>
 *   end
 *
 * answered by
 *
 *   jitsched-pong <id>
 *   status ok                   | status error <CODE>
 *   error <message>             (error frames only)
 *   end
 *
 * Like STATS, PING is answered inline on the connection handler and
 * bypasses the admission queue: a health check must answer while the
 * daemon is shedding load — a loaded backend is still a live
 * backend.  The cluster router's health-state machine
 * (cluster/backend.hh) is driven entirely by this verb.
 */

#ifndef JITSCHED_SERVICE_PROTOCOL_HH
#define JITSCHED_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/schedule.hh"
#include "obs/flight_recorder.hh"
#include "service/policy.hh"
#include "sim/makespan.hh"
#include "trace/workload.hh"

namespace jitsched {

/** One scheduling query. */
struct ServiceRequest
{
    /** Client-chosen id, echoed in the response. */
    std::uint64_t id = 0;

    /** Policy name (see service/policy.hh). */
    std::string policy;

    /** Solver options. */
    ServiceOptions options;

    /**
     * Distributed trace id; 0 means untraced.  Carried as the
     * optional `option trace-id <hex>` line, lives outside
     * ServiceOptions on purpose: requestFingerprint() and
     * ServiceOptions::operator== must never see it (tracing a
     * request must not split the EvalCache or move it to another
     * backend).
     */
    std::uint64_t traceId = 0;

    /** The OCSP instance to schedule. */
    Workload workload;
};

/** Machine-readable error codes carried on `status error` lines. */
namespace errcode {
inline constexpr const char *invalidArgument = "INVALID_ARGUMENT";
inline constexpr const char *deadlineExceeded = "DEADLINE_EXCEEDED";
inline constexpr const char *resourceExhausted = "RESOURCE_EXHAUSTED";
inline constexpr const char *solverLimit = "SOLVER_LIMIT";
inline constexpr const char *unavailable = "UNAVAILABLE";
} // namespace errcode

/** Volatile per-request serving statistics (the `stats` line). */
struct ServiceStats
{
    std::uint64_t cacheHits = 0;   ///< EvalCache hits this request
    std::uint64_t cacheMisses = 0; ///< EvalCache misses this request
    std::int64_t queueNs = 0;      ///< admission -> processing start
    std::int64_t solveNs = 0;      ///< processing wall time

    /**
     * How the result cache served this response: 0 = not served from
     * it (miss, or cache off — the token is then omitted from the
     * wire), 1 = answered from the store, 2 = collapsed onto a
     * concurrent identical solve (singleflight follower).
     */
    std::uint64_t resultCache = 0;

    std::uint64_t traceId = 0;     ///< echoed trace id; 0 untraced
};

/** One scheduling answer. */
struct ServiceResponse
{
    std::uint64_t id = 0;

    bool ok = false;

    /** Error code (errcode::*); empty on ok. */
    std::string code;

    /** Human-readable error message; empty on ok. */
    std::string error;

    /** Policy that served the request (empty if never resolved). */
    std::string policy;

    Tick lowerBound = 0;

    /** Whether `sim` is populated. */
    bool hasSim = false;

    /** Make-span evaluation (subset of SimResult serialized). */
    SimResult sim;

    /** Whether `schedule` is populated. */
    bool hasSchedule = false;

    /** The compilation schedule, as bare events. */
    std::vector<CompileEvent> schedule;

    /** Volatile serving statistics. */
    ServiceStats stats;
};

/** A metrics scrape: no payload, just the echoed id. */
struct StatsRequest
{
    std::uint64_t id = 0;

    /** Ask for Prometheus text exposition instead of snapshotText. */
    bool prom = false;
};

/** A registry snapshot, one raw snapshot line per entry. */
struct StatsResponse
{
    std::uint64_t id = 0;

    bool ok = false;

    /** Error code (errcode::*); empty on ok. */
    std::string code;

    /** Human-readable error message; empty on ok. */
    std::string error;

    /** Lines are snapshotProm() exposition, not snapshotText(). */
    bool prom = false;

    /** Snapshot lines, e.g. `counter exec.cache.hits 12`. */
    std::vector<std::string> lines;
};

/** Serialize a request frame. */
void writeRequest(std::ostream &os, const ServiceRequest &req);

/** Request frame as a string (what the client sends). */
std::string requestText(const ServiceRequest &req);

/**
 * Parse one request frame, consuming through its `end` line.
 * @param error receives a description of the first problem
 * @return the request, or nullopt on malformed input
 */
std::optional<ServiceRequest>
tryReadRequest(std::istream &is, std::string *error = nullptr);

/**
 * Serialize a response frame.
 * @param include_stats when false the volatile `stats` line is
 *        omitted — the deterministic block clients compare on
 */
void writeResponse(std::ostream &os, const ServiceResponse &resp,
                   bool include_stats = true);

/** Response frame as a string. */
std::string responseText(const ServiceResponse &resp,
                         bool include_stats = true);

/**
 * Serialize just the volatile `stats ...` line (newline included) —
 * what writeResponse() appends and what the result cache stitches
 * onto a stored body to rebuild a full frame.
 */
void writeStatsLine(std::ostream &os, const ServiceStats &stats);

/** Parse one response frame, consuming through its `end` line. */
std::optional<ServiceResponse>
tryReadResponse(std::istream &is, std::string *error = nullptr);

/** Build an error response. */
ServiceResponse makeErrorResponse(std::uint64_t id,
                                  const std::string &code,
                                  const std::string &message);

/** A liveness probe: no payload, just the echoed id. */
struct PingRequest
{
    std::uint64_t id = 0;
};

/** The probe's answer. */
struct PongResponse
{
    std::uint64_t id = 0;

    bool ok = false;

    /** Error code (errcode::*); empty on ok. */
    std::string code;

    /** Human-readable error message; empty on ok. */
    std::string error;
};

/** Serialize a stats-request frame. */
void writeStatsRequest(std::ostream &os, const StatsRequest &req);

/** Stats-request frame as a string. */
std::string statsRequestText(const StatsRequest &req);

/** Parse one stats-request frame, consuming through `end`. */
std::optional<StatsRequest>
tryReadStatsRequest(std::istream &is, std::string *error = nullptr);

/** Serialize a stats-response frame. */
void writeStatsResponse(std::ostream &os, const StatsResponse &resp);

/** Stats-response frame as a string. */
std::string statsResponseText(const StatsResponse &resp);

/** Parse one stats-response frame, consuming through `end`. */
std::optional<StatsResponse>
tryReadStatsResponse(std::istream &is, std::string *error = nullptr);

/**
 * Build an ok stats response from snapshotText() or (@p prom)
 * snapshotProm() output.
 */
StatsResponse makeStatsResponse(std::uint64_t id,
                                const std::string &snapshot_text,
                                bool prom = false);

/** A flight-recorder scrape: no payload, just the echoed id. */
struct DumpRequest
{
    std::uint64_t id = 0;
};

/** The flight recorder's retained records, oldest first. */
struct DumpResponse
{
    std::uint64_t id = 0;

    bool ok = false;

    /** Error code (errcode::*); empty on ok. */
    std::string code;

    /** Human-readable error message; empty on ok. */
    std::string error;

    /** Retained records (seq is not carried over the wire). */
    std::vector<obs::FlightRecord> records;
};

/** Serialize a dump-request frame. */
void writeDumpRequest(std::ostream &os, const DumpRequest &req);

/** Dump-request frame as a string. */
std::string dumpRequestText(const DumpRequest &req);

/** Parse one dump-request frame, consuming through `end`. */
std::optional<DumpRequest>
tryReadDumpRequest(std::istream &is, std::string *error = nullptr);

/** Serialize a dump-response frame. */
void writeDumpResponse(std::ostream &os, const DumpResponse &resp);

/** Dump-response frame as a string. */
std::string dumpResponseText(const DumpResponse &resp);

/** Parse one dump-response frame, consuming through `end`. */
std::optional<DumpResponse>
tryReadDumpResponse(std::istream &is, std::string *error = nullptr);

/** Build an ok dump response from a recorder snapshot. */
DumpResponse
makeDumpResponse(std::uint64_t id,
                 const std::vector<obs::FlightRecord> &records);

/** A result-cache snapshot trigger: no payload, just the echoed id. */
struct SnapshotRequest
{
    std::uint64_t id = 0;
};

/** What the snapshot wrote. */
struct SnapshotResponse
{
    std::uint64_t id = 0;

    bool ok = false;

    /** Error code (errcode::*); empty on ok. */
    std::string code;

    /** Human-readable error message; empty on ok. */
    std::string error;

    /** Entries written to the snapshot file. */
    std::uint64_t entries = 0;

    /** Key + body payload bytes written. */
    std::uint64_t bytes = 0;
};

/** Serialize a snapshot-request frame. */
void writeSnapshotRequest(std::ostream &os, const SnapshotRequest &req);

/** Snapshot-request frame as a string. */
std::string snapshotRequestText(const SnapshotRequest &req);

/** Parse one snapshot-request frame, consuming through `end`. */
std::optional<SnapshotRequest>
tryReadSnapshotRequest(std::istream &is, std::string *error = nullptr);

/** Serialize a snapshot-response frame. */
void writeSnapshotResponse(std::ostream &os,
                           const SnapshotResponse &resp);

/** Snapshot-response frame as a string. */
std::string snapshotResponseText(const SnapshotResponse &resp);

/** Parse one snapshot-response frame, consuming through `end`. */
std::optional<SnapshotResponse>
tryReadSnapshotResponse(std::istream &is, std::string *error = nullptr);

/** Build an ok snapshot response. */
SnapshotResponse makeSnapshotResponse(std::uint64_t id,
                                      std::uint64_t entries,
                                      std::uint64_t bytes);

/** Serialize a ping frame. */
void writePingRequest(std::ostream &os, const PingRequest &req);

/** Ping frame as a string. */
std::string pingRequestText(const PingRequest &req);

/** Parse one ping frame, consuming through `end`. */
std::optional<PingRequest>
tryReadPingRequest(std::istream &is, std::string *error = nullptr);

/** Serialize a pong frame. */
void writePongResponse(std::ostream &os, const PongResponse &resp);

/** Pong frame as a string. */
std::string pongResponseText(const PongResponse &resp);

/** Parse one pong frame, consuming through `end`. */
std::optional<PongResponse>
tryReadPongResponse(std::istream &is, std::string *error = nullptr);

/** Build an ok pong for @p id. */
PongResponse makePongResponse(std::uint64_t id);

/**
 * True when the frame's first meaningful line is a `jitsched-stats`
 * header — how the connection handler routes a frame to the scrape
 * path without attempting a full request parse.
 */
bool isStatsRequestFrame(const std::string &frame);

/** Same routing test for `jitsched-ping` frames. */
bool isPingRequestFrame(const std::string &frame);

/** Same routing test for `jitsched-dump` frames. */
bool isDumpRequestFrame(const std::string &frame);

/** Same routing test for `jitsched-snapshot` frames. */
bool isSnapshotRequestFrame(const std::string &frame);

/**
 * True when @p raw_line (after comment/whitespace stripping) is the
 * `end` frame terminator — the framing test connection handlers use.
 */
bool isFrameEnd(std::string_view raw_line);

/**
 * Content fingerprint of a request: policy + options + workload.
 * Identical requests — the ones whose evaluations the cache merges —
 * have identical fingerprints.  The trace id is deliberately NOT
 * hashed: tracing is an observer, and an observed request must cache
 * and route exactly like an unobserved one.
 */
std::uint64_t requestFingerprint(const ServiceRequest &req);

} // namespace jitsched

#endif // JITSCHED_SERVICE_PROTOCOL_HH
