/**
 * @file
 * jitschedd — the scheduling-as-a-service daemon.
 *
 * Binds a loopback TCP port, prints the bound address, and serves
 * scheduling requests until SIGINT/SIGTERM.  All the interesting
 * machinery lives in the library (service/server.hh); this file is
 * argument parsing and signal plumbing.
 *
 * Usage:
 *   jitschedd [--address A] [--port P] [--handlers N]
 *             [--queue-depth D] [--batch B] [--discipline fifo|cached-first]
 *             [--result-cache-mb M] [--snapshot-file FILE]
 *             [--trace-out FILE]
 */

#include <signal.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/instruments.hh"
#include "obs/span.hh"
#include "obs/trace_event.hh"
#include "service/server.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

using namespace jitsched;

namespace {

[[noreturn]] void
usage(int rc)
{
    std::cerr <<
        "usage: jitschedd [options]\n"
        "  --address A          bind address (default 127.0.0.1)\n"
        "  --port P             bind port; 0 = ephemeral (default 0)\n"
        "  --handlers N         connection handler threads (default 4)\n"
        "  --queue-depth D      admission queue depth (default 64)\n"
        "  --batch B            max requests per worker batch (default 16)\n"
        "  --discipline D       fifo | cached-first (default cached-first)\n"
        "  --result-cache-mb M  request-level result cache budget in MiB;\n"
        "                       0 disables (default: JITSCHED_RESULT_CACHE_MB,\n"
        "                       else 0)\n"
        "  --snapshot-file FILE warm-restart snapshot: loaded at startup,\n"
        "                       written on clean shutdown and on the\n"
        "                       SNAPSHOT verb (default:\n"
        "                       JITSCHED_RESULT_CACHE_SNAPSHOT, else none)\n"
        "  --trace-out FILE     at shutdown, write collected request\n"
        "                       spans as Chrome/Perfetto trace JSON\n"
        "  --help               this text\n";
    std::exit(rc);
}

std::uint64_t
intArg(const std::string &flag, const std::string &value)
{
    const auto v = parseInt(value);
    if (!v || *v < 0)
        JITSCHED_FATAL(flag, " needs a non-negative integer, got '",
                       value, "'");
    return static_cast<std::uint64_t>(*v);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    // Env defaults first; flags below override.
    cfg.resultCacheBytes =
        parseResultCacheMbEnv(std::getenv("JITSCHED_RESULT_CACHE_MB"))
        << 20;
    if (const char *snap =
            std::getenv("JITSCHED_RESULT_CACHE_SNAPSHOT"))
        cfg.snapshotPath = snap;
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                JITSCHED_FATAL(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--address") {
            cfg.bindAddress = next();
        } else if (arg == "--port") {
            cfg.port = static_cast<std::uint16_t>(
                intArg(arg, next()));
        } else if (arg == "--handlers") {
            cfg.handlerThreads =
                static_cast<std::size_t>(intArg(arg, next()));
            if (cfg.handlerThreads == 0)
                JITSCHED_FATAL("--handlers must be >= 1");
        } else if (arg == "--queue-depth") {
            cfg.admission.maxDepth =
                static_cast<std::size_t>(intArg(arg, next()));
        } else if (arg == "--batch") {
            cfg.admission.maxBatch =
                static_cast<std::size_t>(intArg(arg, next()));
        } else if (arg == "--discipline") {
            const std::string d = next();
            if (d == "fifo")
                cfg.admission.discipline = AdmissionDiscipline::Fifo;
            else if (d == "cached-first")
                cfg.admission.discipline =
                    AdmissionDiscipline::CachedFirst;
            else
                JITSCHED_FATAL("--discipline must be fifo or "
                               "cached-first, got '", d, "'");
        } else if (arg == "--result-cache-mb") {
            cfg.resultCacheBytes =
                static_cast<std::size_t>(intArg(arg, next())) << 20;
        } else if (arg == "--snapshot-file") {
            cfg.snapshotPath = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else {
            std::cerr << "jitschedd: unknown option '" << arg
                      << "'\n";
            usage(2);
        }
    }

    // Block the shutdown signals before any thread exists so every
    // thread the server spawns inherits the mask and only the main
    // thread's sigwait() sees them.
    sigset_t wait_set;
    sigemptyset(&wait_set);
    sigaddset(&wait_set, SIGINT);
    sigaddset(&wait_set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &wait_set, nullptr);

    ServiceEngine engine;
    // Pre-create the standard instrument inventory so a STATS scrape
    // of a fresh daemon already carries the complete key set.
    obs::registerStandardInstruments(engine.registry().names());
    ServiceServer server(engine, cfg);
    std::string error;
    if (!server.start(&error))
        JITSCHED_FATAL("cannot start: ", error);

    // One line on stdout so scripts can scrape the ephemeral port.
    std::cout << "jitschedd listening on " << server.bindAddress()
              << ":" << server.port() << std::endl;
    if (cfg.resultCacheBytes > 0)
        std::cout << "result-cache: " << (cfg.resultCacheBytes >> 20)
                  << " MiB"
                  << (cfg.snapshotPath.empty()
                          ? std::string()
                          : ", snapshot " + cfg.snapshotPath)
                  << std::endl;
    {
        const auto &pols = engine.registry().names();
        std::cout << "policies:";
        for (const std::string &p : pols)
            std::cout << " " << p;
        std::cout << std::endl;
    }

    int sig = 0;
    while (sigwait(&wait_set, &sig) != 0) {
    }

    std::cout << "jitschedd: shutting down ("
              << server.framesServed() << " frames over "
              << server.connectionsAccepted() << " connections)"
              << std::endl;
    server.stop();

    if (!trace_out.empty()) {
        // Stopped first, so every in-flight request's spans landed.
        // An idle daemon writes nothing: --trace-smoke only checks
        // files that exist.
        obs::SpanCollector &spans = obs::SpanCollector::global();
        if (spans.snapshot().empty()) {
            std::cout << "jitschedd: no spans collected; skipping "
                      << trace_out << std::endl;
        } else {
            obs::TraceEventSink sink;
            spans.exportTo(sink);
            sink.writeFile(trace_out);
            std::cout << "jitschedd: wrote " << sink.size()
                      << " trace events to " << trace_out
                      << std::endl;
        }
    }
    return 0;
}
