#include "service/socket_util.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace jitsched {

namespace {

bool
sockFail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what + ": " + std::strerror(errno);
    return false;
}

/** Build a sockaddr_in; false on an unparsable address. */
bool
makeAddr(const std::string &address, std::uint16_t port,
         sockaddr_in *out, std::string *error)
{
    std::memset(out, 0, sizeof(*out));
    out->sin_family = AF_INET;
    out->sin_port = htons(port);
    if (inet_pton(AF_INET, address.c_str(), &out->sin_addr) != 1) {
        if (error != nullptr)
            *error = "bad IPv4 address '" + address + "'";
        return false;
    }
    return true;
}

} // anonymous namespace

int
listenTcp(const std::string &address, std::uint16_t port, int backlog,
          std::string *error)
{
    sockaddr_in addr;
    if (!makeAddr(address, port, &addr, error))
        return -1;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        sockFail(error, "socket()");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        sockFail(error, "bind(" + address + ":" +
                 std::to_string(port) + ")");
        closeFd(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        sockFail(error, "listen()");
        closeFd(fd);
        return -1;
    }
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
connectTcpTimeout(const std::string &address, std::uint16_t port,
                  int timeout_ms, std::string *error)
{
    if (timeout_ms < 0)
        return connectTcp(address, port, error);

    sockaddr_in addr;
    if (!makeAddr(address, port, &addr, error))
        return -1;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        sockFail(error, "socket()");
        return -1;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        sockFail(error, "fcntl(O_NONBLOCK)");
        closeFd(fd);
        return -1;
    }

    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno != EINPROGRESS) {
        sockFail(error, "connect(" + address + ":" +
                 std::to_string(port) + ")");
        closeFd(fd);
        return -1;
    }
    if (rc != 0) {
        // Handshake in flight: await writability within the deadline,
        // then read the real outcome from SO_ERROR.
        pollfd pfd{fd, POLLOUT, 0};
        int pr;
        do {
            pr = ::poll(&pfd, 1, timeout_ms);
        } while (pr < 0 && errno == EINTR);
        if (pr == 0) {
            if (error != nullptr)
                *error = "connect(" + address + ":" +
                         std::to_string(port) + ") timed out after " +
                         std::to_string(timeout_ms) + " ms";
            closeFd(fd);
            return -1;
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (pr < 0 ||
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error,
                         &len) != 0 ||
            so_error != 0) {
            if (so_error != 0)
                errno = so_error;
            sockFail(error, "connect(" + address + ":" +
                     std::to_string(port) + ")");
            closeFd(fd);
            return -1;
        }
    }

    if (::fcntl(fd, F_SETFL, flags) != 0) {
        sockFail(error, "fcntl(restore flags)");
        closeFd(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

void
setIoTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms)
{
    const auto toTimeval = [](int ms) {
        timeval tv{};
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return tv;
    };
    if (recv_timeout_ms >= 0) {
        const timeval tv = toTimeval(recv_timeout_ms);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (send_timeout_ms >= 0) {
        const timeval tv = toTimeval(send_timeout_ms);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
}

int
connectTcp(const std::string &address, std::uint16_t port,
           std::string *error)
{
    sockaddr_in addr;
    if (!makeAddr(address, port, &addr, error))
        return -1;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        sockFail(error, "socket()");
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        sockFail(error, "connect(" + address + ":" +
                 std::to_string(port) + ")");
        closeFd(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
writeAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE,
        // not kill the daemon with SIGPIPE.
        const ssize_t n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

std::optional<std::string>
LineReader::readLine()
{
    for (;;) {
        const std::size_t nl = buffer_.find('\n', pos_);
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(pos_, nl - pos_);
            pos_ = nl + 1;
            // Compact the consumed prefix occasionally so a
            // long-lived connection does not grow the buffer forever.
            if (pos_ > 64 * 1024) {
                buffer_.erase(0, pos_);
                pos_ = 0;
            }
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        if (eof_) {
            if (pos_ < buffer_.size()) {
                std::string line = buffer_.substr(pos_);
                pos_ = buffer_.size();
                return line;
            }
            return std::nullopt;
        }
        if (buffer_.size() - pos_ > max_line_) {
            overflowed_ = true;
            return std::nullopt;
        }

        char chunk[4096];
        ssize_t n;
        do {
            n = ::read(fd_, chunk, sizeof(chunk));
        } while (n < 0 && errno == EINTR);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // SO_RCVTIMEO expired (setIoTimeouts): the peer is hung,
            // not gone.  Surface it distinctly so a client can retry
            // elsewhere instead of mistaking it for a clean close.
            timed_out_ = true;
            return std::nullopt;
        }
        if (n <= 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace jitsched
