#include "service/server.hh"

#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/flight_recorder.hh"
#include "obs/instruments.hh"
#include "obs/span.hh"
#include "service/socket_util.hh"
#include "support/logging.hh"

namespace jitsched {

ServiceServer::ServiceServer(ServiceEngine &engine, ServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)),
      queue_(engine_, cfg_.admission),
      rcache_(ResultCacheConfig{cfg_.resultCacheBytes})
{
    // Any panic from here on dumps the last-N-requests ring.
    obs::installPanicDump();
}

ServiceServer::~ServiceServer()
{
    stop();
}

bool
ServiceServer::start(std::string *error)
{
    if (started_) {
        if (error != nullptr)
            *error = "server is already running";
        return false;
    }
    // Restarts stick to the first bind's port: an ephemeral-port
    // server that bounces must come back where its clients (and the
    // cluster router's backend table) expect it.
    const std::uint16_t bind_port = port_ != 0 ? port_ : cfg_.port;
    listen_fd_ = listenTcp(cfg_.bindAddress, bind_port,
                           cfg_.acceptBacklog, error);
    if (listen_fd_ < 0)
        return false;
    port_ = boundPort(listen_fd_);

    // Warm restart: load the result-cache snapshot before the first
    // connection is accepted.  Strictly validated — a corrupt,
    // truncated, or version-skewed file is rejected wholesale and the
    // cache starts cold (a warning, never a refusal to start: a bad
    // snapshot must not keep a backend down).
    if (rcache_.enabled() && !cfg_.snapshotPath.empty() &&
        ::access(cfg_.snapshotPath.c_str(), F_OK) == 0) {
        std::string snap_error;
        std::size_t loaded = 0;
        if (rcache_.loadSnapshot(cfg_.snapshotPath, &snap_error,
                                 &loaded))
            inform("jitschedd: result cache warmed with ", loaded,
                   " snapshot entr", loaded == 1 ? "y" : "ies",
                   " from ", cfg_.snapshotPath);
        else
            warn("jitschedd: starting cold — ", snap_error);
    }

    queue_.restart();
    stopping_.store(false, std::memory_order_release);
    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    const std::size_t handlers =
        cfg_.handlerThreads > 0 ? cfg_.handlerThreads : 1;
    handlers_.reserve(handlers);
    for (std::size_t i = 0; i < handlers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
ServiceServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            // Transient accept failures (EINTR, aborted handshakes)
            // must not kill the daemon; persistent ones (EMFILE,
            // ENFILE) must not busy-spin it at 100% CPU either.
            // Every backoff is a client the daemon failed to serve:
            // count it, and log the first plus every 100th so a
            // persistent EMFILE is visible without flooding the log
            // at the backoff rate.
            if (errno != EINTR && errno != ECONNABORTED) {
                const int err = errno;
                const std::uint64_t n =
                    dropped_.fetch_add(1, std::memory_order_relaxed) +
                    1;
                JITSCHED_OBS(obs::ServiceMetrics::get()
                                 .connectionsDropped.add());
                if (n == 1 || n % 100 == 0)
                    warn("jitschedd: accept() failed (errno ", err,
                         "), backing off — ", n,
                         " connection(s) dropped since start");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            continue;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(
            obs::ServiceMetrics::get().connectionsAccepted.add());
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            conn_queue_.push_back(fd);
        }
        conn_cv_.notify_one();
    }
}

void
ServiceServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(conn_mutex_);
            conn_cv_.wait(lk, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !conn_queue_.empty();
            });
            // On stop, leave even with connections still queued —
            // stop() closes them.  Registering the fd under the same
            // lock as the stopping_ check guarantees stop() either
            // sees it in active_fds_ (and shuts it down) or we never
            // start serving it.
            if (stopping_.load(std::memory_order_acquire))
                return;
            fd = conn_queue_.front();
            conn_queue_.pop_front();
            active_fds_.insert(fd);
        }
        handleConnection(fd);
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            active_fds_.erase(fd);
        }
        closeFd(fd);
    }
}

void
ServiceServer::handleConnection(int fd)
{
    LineReader reader(fd, cfg_.maxFrameBytes);
    for (;;) {
        // Accumulate one frame: every line up to and including
        // `end`.  Framing lives here, not in the parser, so a
        // malformed frame body cannot desynchronize the connection.
        std::string frame;
        bool got_end = false;
        bool oversized = false;
        while (auto line = reader.readLine()) {
            if (frame.size() + line->size() + 1 > cfg_.maxFrameBytes) {
                oversized = true;
                break;
            }
            frame += *line;
            frame += '\n';
            if (isFrameEnd(*line)) {
                got_end = true;
                break;
            }
        }
        JITSCHED_OBS(
            obs::ServiceMetrics::get().bytesIn.add(frame.size()));
        if (oversized || reader.overflowed()) {
            // No `end` in sight within the budget: resynchronizing
            // would mean reading an unbounded amount, so answer a
            // structured error and drop the connection.
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ServiceMetrics::get().framesServed.add());
            const std::string err_text =
                responseText(makeErrorResponse(
                    0, errcode::invalidArgument,
                    "request frame exceeds " +
                        std::to_string(cfg_.maxFrameBytes) +
                        " bytes"));
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                err_text.size()));
            writeAll(fd, err_text);
            // Half-close and briefly drain the peer's leftovers so
            // close() ends in FIN, not an RST that could discard the
            // error before the peer reads it.  Both the drained
            // volume and the poll waits are bounded — a peer that
            // keeps streaming cannot pin the handler.
            ::shutdown(fd, SHUT_WR);
            char discard[4096];
            pollfd pfd{fd, POLLIN, 0};
            std::size_t drained = 0;
            while (drained < (std::size_t(64) << 10)) {
                if (::poll(&pfd, 1, 100) <= 0)
                    break;
                const ssize_t n =
                    ::read(fd, discard, sizeof(discard));
                if (n <= 0)
                    break;
                drained += static_cast<std::size_t>(n);
            }
            return;
        }
        if (!got_end)
            return; // EOF (clean close or truncated frame)

        if (stopping_.load(std::memory_order_acquire))
            return;

        // PING frames are answered right here on the handler, like
        // STATS: a health probe must keep answering while the
        // admission queue is shedding load — a loaded backend is
        // still a live backend, and the cluster router must not
        // eject it for being busy.
        if (isPingRequestFrame(frame)) {
            std::istringstream pis(frame);
            std::string ping_error;
            PongResponse pong;
            if (const auto preq =
                    tryReadPingRequest(pis, &ping_error)) {
                pong = makePongResponse(preq->id);
            } else {
                pong.code = errcode::invalidArgument;
                pong.error = ping_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ServiceMetrics &m = obs::ServiceMetrics::get();
                m.framesServed.add();
                m.pingRequests.add();
            });
            const std::string pong_text = pongResponseText(pong);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                pong_text.size()));
            if (!writeAll(fd, pong_text))
                return;
            continue;
        }

        // STATS frames are answered right here on the handler,
        // bypassing the admission queue: a scrape must keep working
        // while the queue is shedding load — that is when operators
        // look at it.
        if (isStatsRequestFrame(frame)) {
            std::istringstream sis(frame);
            std::string stats_error;
            StatsResponse sresp;
            if (const auto sreq =
                    tryReadStatsRequest(sis, &stats_error)) {
                sresp = makeStatsResponse(
                    sreq->id,
                    sreq->prom
                        ? obs::MetricsRegistry::global()
                              .snapshotProm()
                        : obs::MetricsRegistry::global()
                              .snapshotText(),
                    sreq->prom);
            } else {
                sresp.code = errcode::invalidArgument;
                sresp.error = stats_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ServiceMetrics &m = obs::ServiceMetrics::get();
                m.framesServed.add();
                m.statsRequests.add();
            });
            const std::string stats_text = statsResponseText(sresp);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                stats_text.size()));
            if (!writeAll(fd, stats_text))
                return;
            continue;
        }

        // DUMP frames scrape the in-memory flight recorder, inline
        // like STATS: the recorder exists for exactly the moments
        // when the admission queue is the problem.
        if (isDumpRequestFrame(frame)) {
            std::istringstream dis(frame);
            std::string dump_error;
            DumpResponse dresp;
            if (const auto dreq =
                    tryReadDumpRequest(dis, &dump_error)) {
                dresp = makeDumpResponse(
                    dreq->id,
                    obs::FlightRecorder::global().snapshot());
            } else {
                dresp.code = errcode::invalidArgument;
                dresp.error = dump_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ServiceMetrics::get().framesServed.add());
            const std::string dump_text = dumpResponseText(dresp);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                dump_text.size()));
            if (!writeAll(fd, dump_text))
                return;
            continue;
        }

        // SNAPSHOT frames save the result cache to its configured
        // file, inline like STATS/DUMP — a warm-state save must work
        // while the admission queue is shedding.
        if (isSnapshotRequestFrame(frame)) {
            std::istringstream ss(frame);
            std::string snap_parse_error;
            SnapshotResponse snap;
            if (const auto sreq =
                    tryReadSnapshotRequest(ss, &snap_parse_error)) {
                snap.id = sreq->id;
                if (!rcache_.enabled()) {
                    snap.code = errcode::invalidArgument;
                    snap.error = "result cache is disabled "
                                 "(JITSCHED_RESULT_CACHE_MB / "
                                 "--result-cache-mb is 0)";
                } else if (cfg_.snapshotPath.empty()) {
                    snap.code = errcode::invalidArgument;
                    snap.error = "no snapshot file configured "
                                 "(--snapshot-file)";
                } else {
                    std::string save_error;
                    std::size_t entries = 0;
                    std::size_t bytes = 0;
                    if (rcache_.saveSnapshot(cfg_.snapshotPath,
                                             &save_error, &entries,
                                             &bytes))
                        snap = makeSnapshotResponse(sreq->id, entries,
                                                    bytes);
                    else {
                        snap.code = errcode::unavailable;
                        snap.error = save_error;
                    }
                }
            } else {
                snap.code = errcode::invalidArgument;
                snap.error = snap_parse_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ServiceMetrics::get().framesServed.add());
            const std::string snap_text = snapshotResponseText(snap);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                snap_text.size()));
            if (!writeAll(fd, snap_text))
                return;
            continue;
        }

        std::istringstream is(frame);
        std::string parse_error;
        auto req = tryReadRequest(is, &parse_error);

        ServiceResponse resp;
        std::string policy;
        std::string resp_text;  ///< the frame actually written
        std::string status;     ///< flight-record status
        ServiceStats stats;     ///< flight-record timing source
        std::uint64_t request_id = 0;
        bool from_cache = false; ///< hit or collapsed follower
        bool answered = false;   ///< resp already holds the answer
        if (!req) {
            // The id may not even have parsed; 0 is the documented
            // "unattributable" id.
            resp = makeErrorResponse(0, errcode::invalidArgument,
                                     parse_error);
            answered = true;
        } else {
            // First contact mints the trace id when the client (or
            // router) did not — every request through the server is
            // traceable.
            if (req->traceId == 0)
                req->traceId = obs::mintTraceId();
            policy = req->policy;
            request_id = req->id;

            // Result-cache fast path, probed before the admission
            // queue: a shed-under-load daemon keeps serving the
            // answers it already knows.
            ResultCache::Probe probe;
            if (rcache_.enabled()) {
                const auto c0 = std::chrono::steady_clock::now();
                bool cached_ok = false;
                std::string body;
                {
                    obs::ScopedSpan span(req->traceId,
                                         "service.result_cache");
                    probe = rcache_.begin(*req);
                }
                switch (probe.kind) {
                case ResultCache::Probe::Kind::Hit:
                    cached_ok = true;
                    body = std::move(probe.body);
                    stats.resultCache = 1;
                    break;
                case ResultCache::Probe::Kind::Follower: {
                    // Collapse onto the identical in-flight solve,
                    // honoring this waiter's own deadline.
                    std::optional<
                        std::chrono::steady_clock::time_point>
                        deadline;
                    if (req->options.deadlineMs >= 0)
                        deadline =
                            c0 + std::chrono::milliseconds(
                                     req->options.deadlineMs);
                    if (rcache_.waitFollower(probe, deadline,
                                             &cached_ok, &body) ==
                        ResultCache::WaitOutcome::Ready) {
                        stats.resultCache = 2;
                    } else {
                        resp = makeErrorResponse(
                            req->id, errcode::deadlineExceeded,
                            "deadline expired while waiting on an "
                            "identical in-flight request");
                        resp.stats.traceId = req->traceId;
                        answered = true;
                    }
                    break;
                }
                case ResultCache::Probe::Kind::Leader:
                case ResultCache::Probe::Kind::Bypass:
                    break;
                }
                if (stats.resultCache != 0) {
                    from_cache = true;
                    stats.traceId = req->traceId;
                    stats.solveNs =
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - c0)
                            .count();
                    // The stored body's own status line is the
                    // record's status: only ok results enter the
                    // store, but a follower can be fed an error.
                    status = "ok";
                    if (!cached_ok) {
                        std::istringstream bs(body);
                        std::string kw, st;
                        bs >> kw >> st >> status;
                        if (status.empty())
                            status = errcode::unavailable;
                    }
                    obs::ScopedSpan span(req->traceId,
                                         "service.serialize");
                    resp_text = cachedResponseText(req->id, body,
                                                   stats);
                }
            }

            if (!from_cache && !answered) {
                resp = queue_.submit(*std::move(req)).get();
                // The leader publishes unconditionally — even a
                // shed/expired answer releases the followers (the
                // admission queue answers every submit, so no flight
                // is ever abandoned).
                if (probe.kind == ResultCache::Probe::Kind::Leader)
                    rcache_.publish(probe, resp.ok,
                                    responseBodyText(resp));
            }
        }
        frames_.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(obs::ServiceMetrics::get().framesServed.add());
        if (!from_cache) {
            {
                obs::ScopedSpan span(resp.stats.traceId,
                                     "service.serialize");
                resp_text = responseText(resp);
            }
            stats = resp.stats;
            status = resp.ok ? "ok" : resp.code;
            request_id = resp.id;
        }
        // One slot write per completed request, always on.
        obs::FlightRecord record;
        record.traceId = stats.traceId;
        record.requestId = request_id;
        record.policy = policy;
        record.status = status;
        record.queueNs = stats.queueNs;
        record.solveNs = stats.solveNs;
        record.bytes = resp_text.size();
        record.hops = 0;
        record.cached = from_cache;
        obs::FlightRecorder::global().record(std::move(record));
        obs::noteRequestLatency(stats.traceId,
                                stats.queueNs + stats.solveNs,
                                "service");
        JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
            resp_text.size()));
        if (!writeAll(fd, resp_text))
            return; // peer went away
    }
}

void
ServiceServer::stop()
{
    if (!started_)
        return;
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;

    // Closing the listening socket kicks accept() out of its wait.
    ::shutdown(listen_fd_, SHUT_RDWR);
    closeFd(listen_fd_);
    if (acceptor_.joinable())
        acceptor_.join();

    // Handlers may be blocked in read(2) on an idle connection;
    // shutting the sockets down turns those reads into EOF so join
    // cannot hang on a client that simply never hangs up.
    {
        std::lock_guard<std::mutex> lk(conn_mutex_);
        for (const int fd : active_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();

    // Connections still queued but never picked up by a handler.
    for (const int fd : conn_queue_)
        closeFd(fd);
    conn_queue_.clear();

    queue_.stop();

    // Clean-shutdown warm-state save: handlers and the admission
    // worker have joined, so the cache is quiescent.
    if (rcache_.enabled() && !cfg_.snapshotPath.empty()) {
        std::string snap_error;
        if (!rcache_.saveSnapshot(cfg_.snapshotPath, &snap_error))
            warn("jitschedd: result-cache snapshot not saved — ",
                 snap_error);
    }

    // Leave the object restartable: everything joined and closed,
    // port_ remembered so the next start() rebinds it.
    handlers_.clear();
    listen_fd_ = -1;
    started_ = false;
}

} // namespace jitsched
