#include "service/server.hh"

#include <sstream>
#include <utility>

#include <sys/socket.h>

#include "service/socket_util.hh"

namespace jitsched {

ServiceServer::ServiceServer(ServiceEngine &engine, ServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)),
      queue_(engine_, cfg_.admission)
{
}

ServiceServer::~ServiceServer()
{
    stop();
}

bool
ServiceServer::start(std::string *error)
{
    listen_fd_ = listenTcp(cfg_.bindAddress, cfg_.port,
                           cfg_.acceptBacklog, error);
    if (listen_fd_ < 0)
        return false;
    port_ = boundPort(listen_fd_);

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    const std::size_t handlers =
        cfg_.handlerThreads > 0 ? cfg_.handlerThreads : 1;
    handlers_.reserve(handlers);
    for (std::size_t i = 0; i < handlers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
ServiceServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            // Transient accept failures (EINTR, aborted handshakes)
            // must not kill the daemon.
            continue;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            conn_queue_.push_back(fd);
        }
        conn_cv_.notify_one();
    }
}

void
ServiceServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(conn_mutex_);
            conn_cv_.wait(lk, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !conn_queue_.empty();
            });
            if (conn_queue_.empty())
                return; // stopping
            fd = conn_queue_.front();
            conn_queue_.pop_front();
        }
        handleConnection(fd);
        closeFd(fd);
    }
}

void
ServiceServer::handleConnection(int fd)
{
    LineReader reader(fd);
    for (;;) {
        // Accumulate one frame: every line up to and including
        // `end`.  Framing lives here, not in the parser, so a
        // malformed frame body cannot desynchronize the connection.
        std::string frame;
        bool got_end = false;
        while (auto line = reader.readLine()) {
            frame += *line;
            frame += '\n';
            if (isFrameEnd(*line)) {
                got_end = true;
                break;
            }
        }
        if (!got_end)
            return; // EOF (clean close or truncated frame)

        if (stopping_.load(std::memory_order_acquire))
            return;

        std::istringstream is(frame);
        std::string parse_error;
        auto req = tryReadRequest(is, &parse_error);

        ServiceResponse resp;
        if (!req) {
            // The id may not even have parsed; 0 is the documented
            // "unattributable" id.
            resp = makeErrorResponse(0, errcode::invalidArgument,
                                     parse_error);
        } else {
            resp = queue_.submit(*std::move(req)).get();
        }
        frames_.fetch_add(1, std::memory_order_relaxed);
        if (!writeAll(fd, responseText(resp)))
            return; // peer went away
    }
}

void
ServiceServer::stop()
{
    if (!started_)
        return;
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;

    // Closing the listening socket kicks accept() out of its wait.
    ::shutdown(listen_fd_, SHUT_RDWR);
    closeFd(listen_fd_);
    if (acceptor_.joinable())
        acceptor_.join();

    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();

    // Connections still queued but never picked up by a handler.
    for (const int fd : conn_queue_)
        closeFd(fd);
    conn_queue_.clear();

    queue_.stop();
}

} // namespace jitsched
