#include "service/server.hh"

#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/flight_recorder.hh"
#include "obs/instruments.hh"
#include "obs/span.hh"
#include "service/socket_util.hh"
#include "support/logging.hh"

namespace jitsched {

ServiceServer::ServiceServer(ServiceEngine &engine, ServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)),
      queue_(engine_, cfg_.admission)
{
    // Any panic from here on dumps the last-N-requests ring.
    obs::installPanicDump();
}

ServiceServer::~ServiceServer()
{
    stop();
}

bool
ServiceServer::start(std::string *error)
{
    if (started_) {
        if (error != nullptr)
            *error = "server is already running";
        return false;
    }
    // Restarts stick to the first bind's port: an ephemeral-port
    // server that bounces must come back where its clients (and the
    // cluster router's backend table) expect it.
    const std::uint16_t bind_port = port_ != 0 ? port_ : cfg_.port;
    listen_fd_ = listenTcp(cfg_.bindAddress, bind_port,
                           cfg_.acceptBacklog, error);
    if (listen_fd_ < 0)
        return false;
    port_ = boundPort(listen_fd_);

    queue_.restart();
    stopping_.store(false, std::memory_order_release);
    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    const std::size_t handlers =
        cfg_.handlerThreads > 0 ? cfg_.handlerThreads : 1;
    handlers_.reserve(handlers);
    for (std::size_t i = 0; i < handlers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
ServiceServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            // Transient accept failures (EINTR, aborted handshakes)
            // must not kill the daemon; persistent ones (EMFILE,
            // ENFILE) must not busy-spin it at 100% CPU either.
            // Every backoff is a client the daemon failed to serve:
            // count it, and log the first plus every 100th so a
            // persistent EMFILE is visible without flooding the log
            // at the backoff rate.
            if (errno != EINTR && errno != ECONNABORTED) {
                const int err = errno;
                const std::uint64_t n =
                    dropped_.fetch_add(1, std::memory_order_relaxed) +
                    1;
                JITSCHED_OBS(obs::ServiceMetrics::get()
                                 .connectionsDropped.add());
                if (n == 1 || n % 100 == 0)
                    warn("jitschedd: accept() failed (errno ", err,
                         "), backing off — ", n,
                         " connection(s) dropped since start");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            continue;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(
            obs::ServiceMetrics::get().connectionsAccepted.add());
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            conn_queue_.push_back(fd);
        }
        conn_cv_.notify_one();
    }
}

void
ServiceServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(conn_mutex_);
            conn_cv_.wait(lk, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !conn_queue_.empty();
            });
            // On stop, leave even with connections still queued —
            // stop() closes them.  Registering the fd under the same
            // lock as the stopping_ check guarantees stop() either
            // sees it in active_fds_ (and shuts it down) or we never
            // start serving it.
            if (stopping_.load(std::memory_order_acquire))
                return;
            fd = conn_queue_.front();
            conn_queue_.pop_front();
            active_fds_.insert(fd);
        }
        handleConnection(fd);
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            active_fds_.erase(fd);
        }
        closeFd(fd);
    }
}

void
ServiceServer::handleConnection(int fd)
{
    LineReader reader(fd, cfg_.maxFrameBytes);
    for (;;) {
        // Accumulate one frame: every line up to and including
        // `end`.  Framing lives here, not in the parser, so a
        // malformed frame body cannot desynchronize the connection.
        std::string frame;
        bool got_end = false;
        bool oversized = false;
        while (auto line = reader.readLine()) {
            if (frame.size() + line->size() + 1 > cfg_.maxFrameBytes) {
                oversized = true;
                break;
            }
            frame += *line;
            frame += '\n';
            if (isFrameEnd(*line)) {
                got_end = true;
                break;
            }
        }
        JITSCHED_OBS(
            obs::ServiceMetrics::get().bytesIn.add(frame.size()));
        if (oversized || reader.overflowed()) {
            // No `end` in sight within the budget: resynchronizing
            // would mean reading an unbounded amount, so answer a
            // structured error and drop the connection.
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ServiceMetrics::get().framesServed.add());
            const std::string err_text =
                responseText(makeErrorResponse(
                    0, errcode::invalidArgument,
                    "request frame exceeds " +
                        std::to_string(cfg_.maxFrameBytes) +
                        " bytes"));
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                err_text.size()));
            writeAll(fd, err_text);
            // Half-close and briefly drain the peer's leftovers so
            // close() ends in FIN, not an RST that could discard the
            // error before the peer reads it.  Both the drained
            // volume and the poll waits are bounded — a peer that
            // keeps streaming cannot pin the handler.
            ::shutdown(fd, SHUT_WR);
            char discard[4096];
            pollfd pfd{fd, POLLIN, 0};
            std::size_t drained = 0;
            while (drained < (std::size_t(64) << 10)) {
                if (::poll(&pfd, 1, 100) <= 0)
                    break;
                const ssize_t n =
                    ::read(fd, discard, sizeof(discard));
                if (n <= 0)
                    break;
                drained += static_cast<std::size_t>(n);
            }
            return;
        }
        if (!got_end)
            return; // EOF (clean close or truncated frame)

        if (stopping_.load(std::memory_order_acquire))
            return;

        // PING frames are answered right here on the handler, like
        // STATS: a health probe must keep answering while the
        // admission queue is shedding load — a loaded backend is
        // still a live backend, and the cluster router must not
        // eject it for being busy.
        if (isPingRequestFrame(frame)) {
            std::istringstream pis(frame);
            std::string ping_error;
            PongResponse pong;
            if (const auto preq =
                    tryReadPingRequest(pis, &ping_error)) {
                pong = makePongResponse(preq->id);
            } else {
                pong.code = errcode::invalidArgument;
                pong.error = ping_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ServiceMetrics &m = obs::ServiceMetrics::get();
                m.framesServed.add();
                m.pingRequests.add();
            });
            const std::string pong_text = pongResponseText(pong);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                pong_text.size()));
            if (!writeAll(fd, pong_text))
                return;
            continue;
        }

        // STATS frames are answered right here on the handler,
        // bypassing the admission queue: a scrape must keep working
        // while the queue is shedding load — that is when operators
        // look at it.
        if (isStatsRequestFrame(frame)) {
            std::istringstream sis(frame);
            std::string stats_error;
            StatsResponse sresp;
            if (const auto sreq =
                    tryReadStatsRequest(sis, &stats_error)) {
                sresp = makeStatsResponse(
                    sreq->id,
                    sreq->prom
                        ? obs::MetricsRegistry::global()
                              .snapshotProm()
                        : obs::MetricsRegistry::global()
                              .snapshotText(),
                    sreq->prom);
            } else {
                sresp.code = errcode::invalidArgument;
                sresp.error = stats_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ServiceMetrics &m = obs::ServiceMetrics::get();
                m.framesServed.add();
                m.statsRequests.add();
            });
            const std::string stats_text = statsResponseText(sresp);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                stats_text.size()));
            if (!writeAll(fd, stats_text))
                return;
            continue;
        }

        // DUMP frames scrape the in-memory flight recorder, inline
        // like STATS: the recorder exists for exactly the moments
        // when the admission queue is the problem.
        if (isDumpRequestFrame(frame)) {
            std::istringstream dis(frame);
            std::string dump_error;
            DumpResponse dresp;
            if (const auto dreq =
                    tryReadDumpRequest(dis, &dump_error)) {
                dresp = makeDumpResponse(
                    dreq->id,
                    obs::FlightRecorder::global().snapshot());
            } else {
                dresp.code = errcode::invalidArgument;
                dresp.error = dump_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ServiceMetrics::get().framesServed.add());
            const std::string dump_text = dumpResponseText(dresp);
            JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
                dump_text.size()));
            if (!writeAll(fd, dump_text))
                return;
            continue;
        }

        std::istringstream is(frame);
        std::string parse_error;
        auto req = tryReadRequest(is, &parse_error);

        ServiceResponse resp;
        std::string policy;
        if (!req) {
            // The id may not even have parsed; 0 is the documented
            // "unattributable" id.
            resp = makeErrorResponse(0, errcode::invalidArgument,
                                     parse_error);
        } else {
            // First contact mints the trace id when the client (or
            // router) did not — every request through the server is
            // traceable.
            if (req->traceId == 0)
                req->traceId = obs::mintTraceId();
            policy = req->policy;
            resp = queue_.submit(*std::move(req)).get();
        }
        frames_.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(obs::ServiceMetrics::get().framesServed.add());
        std::string resp_text;
        {
            obs::ScopedSpan span(resp.stats.traceId,
                                 "service.serialize");
            resp_text = responseText(resp);
        }
        // One slot write per completed request, always on.
        obs::FlightRecord record;
        record.traceId = resp.stats.traceId;
        record.requestId = resp.id;
        record.policy = policy;
        record.status = resp.ok ? "ok" : resp.code;
        record.queueNs = resp.stats.queueNs;
        record.solveNs = resp.stats.solveNs;
        record.bytes = resp_text.size();
        record.hops = 0;
        obs::FlightRecorder::global().record(std::move(record));
        obs::noteRequestLatency(
            resp.stats.traceId,
            resp.stats.queueNs + resp.stats.solveNs, "service");
        JITSCHED_OBS(obs::ServiceMetrics::get().bytesOut.add(
            resp_text.size()));
        if (!writeAll(fd, resp_text))
            return; // peer went away
    }
}

void
ServiceServer::stop()
{
    if (!started_)
        return;
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;

    // Closing the listening socket kicks accept() out of its wait.
    ::shutdown(listen_fd_, SHUT_RDWR);
    closeFd(listen_fd_);
    if (acceptor_.joinable())
        acceptor_.join();

    // Handlers may be blocked in read(2) on an idle connection;
    // shutting the sockets down turns those reads into EOF so join
    // cannot hang on a client that simply never hangs up.
    {
        std::lock_guard<std::mutex> lk(conn_mutex_);
        for (const int fd : active_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();

    // Connections still queued but never picked up by a handler.
    for (const int fd : conn_queue_)
        closeFd(fd);
    conn_queue_.clear();

    queue_.stop();

    // Leave the object restartable: everything joined and closed,
    // port_ remembered so the next start() rebinds it.
    handlers_.clear();
    listen_fd_ = -1;
    started_ = false;
}

} // namespace jitsched
