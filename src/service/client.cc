#include "service/client.hh"

#include <sstream>
#include <utility>

#include "service/socket_util.hh"

namespace jitsched {

namespace {

bool
setError(std::string *error, std::string what)
{
    if (error != nullptr)
        *error = std::move(what);
    return false;
}

} // anonymous namespace

ServiceClient::~ServiceClient()
{
    disconnect();
}

bool
ServiceClient::connect(const std::string &address, std::uint16_t port,
                       std::string *error)
{
    disconnect();
    fd_ = connectTcpTimeout(address, port, cfg_.connectTimeoutMs,
                            error);
    if (fd_ < 0) {
        last_failure_ = TransportFailure::Connect;
        return false;
    }
    setIoTimeouts(fd_, cfg_.readTimeoutMs, cfg_.writeTimeoutMs);
    last_failure_ = TransportFailure::None;
    return true;
}

void
ServiceClient::disconnect()
{
    closeFd(fd_);
    fd_ = -1;
}

std::optional<std::string>
ServiceClient::callRaw(const std::string &frame, std::string *error)
{
    if (fd_ < 0) {
        last_failure_ = TransportFailure::Connect;
        setError(error, "not connected");
        return std::nullopt;
    }
    if (!writeAll(fd_, frame)) {
        last_failure_ = TransportFailure::Write;
        setError(error, "write failed (connection lost or send "
                        "timeout)");
        return std::nullopt;
    }

    // One response frame: every line up to and including `end`.  A
    // fresh reader per call is fine — the protocol is strictly
    // request/response, so no bytes of the next frame can be in
    // flight yet.
    LineReader reader(fd_);
    std::string out;
    while (auto line = reader.readLine()) {
        out += *line;
        out += '\n';
        if (isFrameEnd(*line)) {
            last_failure_ = TransportFailure::None;
            return out;
        }
    }
    if (reader.timedOut()) {
        last_failure_ = TransportFailure::Timeout;
        setError(error, "read timed out after " +
                            std::to_string(cfg_.readTimeoutMs) +
                            " ms (server hung?)");
    } else {
        last_failure_ = TransportFailure::Disconnect;
        setError(error, "connection closed mid-response");
    }
    return std::nullopt;
}

bool
ServiceClient::ping(std::uint64_t id, std::string *error)
{
    auto raw = callRaw(pingRequestText(PingRequest{id}), error);
    if (!raw)
        return false;
    std::istringstream is(*raw);
    std::string parse_error;
    auto pong = tryReadPongResponse(is, &parse_error);
    if (!pong) {
        setError(error, "bad pong frame: " + parse_error);
        return false;
    }
    if (!pong->ok) {
        setError(error, "ping refused: " + pong->error);
        return false;
    }
    return true;
}

std::optional<StatsResponse>
ServiceClient::stats(std::uint64_t id, std::string *error, bool prom)
{
    StatsRequest sreq;
    sreq.id = id;
    sreq.prom = prom;
    auto raw = callRaw(statsRequestText(sreq), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadStatsResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad stats-response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

std::optional<DumpResponse>
ServiceClient::dump(std::uint64_t id, std::string *error)
{
    DumpRequest dreq;
    dreq.id = id;
    auto raw = callRaw(dumpRequestText(dreq), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadDumpResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad dump-response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

std::optional<SnapshotResponse>
ServiceClient::snapshot(std::uint64_t id, std::string *error)
{
    SnapshotRequest sreq;
    sreq.id = id;
    auto raw = callRaw(snapshotRequestText(sreq), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadSnapshotResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad snapshot-response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

std::optional<ServiceResponse>
ServiceClient::call(const ServiceRequest &req, std::string *error)
{
    auto raw = callRaw(requestText(req), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

} // namespace jitsched
