#include "service/client.hh"

#include <sstream>
#include <utility>

#include "service/socket_util.hh"

namespace jitsched {

namespace {

bool
setError(std::string *error, std::string what)
{
    if (error != nullptr)
        *error = std::move(what);
    return false;
}

} // anonymous namespace

ServiceClient::~ServiceClient()
{
    disconnect();
}

bool
ServiceClient::connect(const std::string &address, std::uint16_t port,
                       std::string *error)
{
    disconnect();
    fd_ = connectTcp(address, port, error);
    return fd_ >= 0;
}

void
ServiceClient::disconnect()
{
    closeFd(fd_);
    fd_ = -1;
}

std::optional<std::string>
ServiceClient::callRaw(const std::string &frame, std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return std::nullopt;
    }
    if (!writeAll(fd_, frame)) {
        setError(error, "write failed (connection lost?)");
        return std::nullopt;
    }

    // One response frame: every line up to and including `end`.  A
    // fresh reader per call is fine — the protocol is strictly
    // request/response, so no bytes of the next frame can be in
    // flight yet.
    LineReader reader(fd_);
    std::string out;
    while (auto line = reader.readLine()) {
        out += *line;
        out += '\n';
        if (isFrameEnd(*line))
            return out;
    }
    setError(error, "connection closed mid-response");
    return std::nullopt;
}

std::optional<StatsResponse>
ServiceClient::stats(std::uint64_t id, std::string *error)
{
    auto raw = callRaw(statsRequestText(StatsRequest{id}), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadStatsResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad stats-response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

std::optional<ServiceResponse>
ServiceClient::call(const ServiceRequest &req, std::string *error)
{
    auto raw = callRaw(requestText(req), error);
    if (!raw)
        return std::nullopt;
    std::istringstream is(*raw);
    std::string parse_error;
    auto resp = tryReadResponse(is, &parse_error);
    if (!resp) {
        setError(error, "bad response frame: " + parse_error);
        return std::nullopt;
    }
    return resp;
}

} // namespace jitsched
