/**
 * @file
 * ServiceEngine: one parsed request in, one response out.
 *
 * The engine is the library-call form of the service — the daemon's
 * admission worker calls it, the CLI can call it in-process, and the
 * loopback tests compare daemon responses byte-for-byte against it.
 * It owns the EvalCache that makes duplicate requests cheap and
 * routes every static-schedule evaluation through a BatchEvaluator on
 * a shared thread pool.
 *
 * serve() builds a per-request BatchEvaluator (pool + shared cache +
 * that request's own EvalCounters tally), so the response's
 * cache-hits/-misses stats count exactly that request's probes even
 * when serves overlap — before/after deltas of the shared cache's
 * global counters would misattribute concurrent requests' probes to
 * each other.
 */

#ifndef JITSCHED_SERVICE_ENGINE_HH
#define JITSCHED_SERVICE_ENGINE_HH

#include <atomic>

#include "exec/batch_eval.hh"
#include "exec/eval_cache.hh"
#include "exec/thread_pool.hh"
#include "service/policy.hh"
#include "service/protocol.hh"

namespace jitsched {

class ServiceEngine
{
  public:
    /**
     * @param registry policy table; must outlive the engine
     * @param pool executor for the evaluation fan-out; nullptr uses
     *        ThreadPool::global()
     */
    explicit ServiceEngine(
        const PolicyRegistry &registry = PolicyRegistry::builtin(),
        ThreadPool *pool = nullptr)
        : registry_(registry),
          pool_(pool != nullptr ? *pool : ThreadPool::global()),
          evaluator_(pool_, &cache_)
    {
    }

    ServiceEngine(const ServiceEngine &) = delete;
    ServiceEngine &operator=(const ServiceEngine &) = delete;

    /**
     * Serve one request synchronously.  Always returns a response —
     * unknown policies, empty workloads and solver refusals come back
     * as structured errors, never as process exits.  Fills every
     * response field except stats.queueNs (the admission queue's).
     */
    ServiceResponse serve(const ServiceRequest &req);

    const PolicyRegistry &registry() const { return registry_; }
    EvalCache &cache() { return cache_; }
    BatchEvaluator &evaluator() { return evaluator_; }

    /** Requests served (ok or error) since construction. */
    std::uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    const PolicyRegistry &registry_;
    ThreadPool &pool_;
    EvalCache cache_;
    BatchEvaluator evaluator_;
    std::atomic<std::uint64_t> served_{0};
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_ENGINE_HH
