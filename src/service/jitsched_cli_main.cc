/**
 * @file
 * jitsched-cli — loopback client for jitschedd.
 *
 * Reads a workload (text trace format) from a file or stdin, submits
 * it to a running daemon under a named policy, and prints the
 * response frame.  The output *is* the wire format, so what the CLI
 * prints is exactly what any client would parse.
 *
 * Usage:
 *   jitsched-cli [--host H] [--port P] [--policy NAME]
 *                [--option K V]... [--id N] [--no-stats]
 *                [--trace-id HEX] [--trace-out FILE]
 *                [<workload-file> | -]
 *   jitsched-cli stats [--host H] [--port P] [--id N] [--prom]
 *   jitsched-cli dump  [--host H] [--port P] [--id N]
 *   jitsched-cli snapshot [--host H] [--port P] [--id N]
 *   jitsched-cli --list-policies
 *
 * Every request the CLI submits carries a trace id: minted here (the
 * CLI is the first contact) unless --trace-id pins one, so a request
 * followed through the router and a backend is one trace end to end.
 */

#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/schedule_timeline.hh"
#include "obs/span.hh"
#include "service/client.hh"
#include "service/policy.hh"
#include "support/logging.hh"
#include "support/strutil.hh"
#include "trace/trace_io.hh"

using namespace jitsched;

namespace {

[[noreturn]] void
usage(int rc)
{
    std::cerr <<
        "usage: jitsched-cli [options] [<workload-file> | -]\n"
        "       jitsched-cli stats [--host H] [--port P] [--id N]"
        " [--prom]\n"
        "       jitsched-cli ping  [--host H] [--port P] [--id N]\n"
        "       jitsched-cli dump  [--host H] [--port P] [--id N]\n"
        "       jitsched-cli snapshot [--host H] [--port P] [--id N]\n"
        "  --host H             daemon address (default 127.0.0.1)\n"
        "  --port P             daemon port (required)\n"
        "  --timeout-ms T       connect/read/write deadline; a hung\n"
        "                       daemon fails the call instead of\n"
        "                       blocking forever (default: block)\n"
        "  --policy NAME        scheduling policy (default iar)\n"
        "  --option K V         request option (repeatable); keys:\n"
        "                       compile-cores, model, jitter-sigma,\n"
        "                       jitter-seed, astar-max-expansions,\n"
        "                       astar-memory-mb, threads, deadline-ms\n"
        "  --threads N          worker count for --policy astar-par\n"
        "                       (shorthand for --option threads N)\n"
        "  --id N               request id echoed in the response\n"
        "  --no-stats           omit the volatile stats line\n"
        "  --trace-id HEX       pin the request's trace id (1..16 hex\n"
        "                       digits, nonzero); default: mint one\n"
        "  --prom               (stats) Prometheus text exposition\n"
        "  --trace-out FILE     write the response schedule's timeline\n"
        "                       as Chrome/Perfetto trace JSON\n"
        "  --list-policies      print the built-in policies and exit\n"
        "  --help               this text\n"
        "With no file argument (or '-') the workload is read from "
        "stdin.\n"
        "The 'stats' subcommand scrapes the daemon's metrics registry\n"
        "and prints the snapshot frame (--prom prints the bare\n"
        "Prometheus exposition).  The 'ping' subcommand sends one\n"
        "liveness probe and exits 0 iff an ok pong came back.  The\n"
        "'dump' subcommand scrapes the peer's in-memory flight\n"
        "recorder: one line per remembered request.  The 'snapshot'\n"
        "subcommand asks the daemon to save its result cache to the\n"
        "configured --snapshot-file.\n";
    std::exit(rc);
}

void
listPolicies()
{
    const PolicyRegistry &reg = PolicyRegistry::builtin();
    for (const std::string &name : reg.names())
        std::cout << name << "\t" << reg.find(name)->describe()
                  << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = -1;
    std::string policy = "iar";
    std::vector<std::pair<std::string, std::string>> options;
    std::uint64_t id = 1;
    bool with_stats = true;
    bool stats_mode = false;
    bool ping_mode = false;
    bool dump_mode = false;
    bool snapshot_mode = false;
    bool prom = false;
    int timeout_ms = -1;
    std::uint64_t trace_id = 0;
    std::string trace_out;
    std::string workload_path = "-";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                JITSCHED_FATAL(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--list-policies") {
            listPolicies();
            return 0;
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            const auto v = parseInt(next());
            if (!v || *v < 1 || *v > 65535)
                JITSCHED_FATAL("--port needs a port number");
            port = static_cast<int>(*v);
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--option") {
            const std::string k = next();
            const std::string v = next();
            options.emplace_back(k, v);
        } else if (arg == "--threads") {
            // Validated by the wire parser below, like any option.
            options.emplace_back("threads", next());
        } else if (arg == "--id") {
            const auto v = parseInt(next());
            if (!v || *v < 0)
                JITSCHED_FATAL("--id needs a non-negative integer");
            id = static_cast<std::uint64_t>(*v);
        } else if (arg == "--no-stats") {
            with_stats = false;
        } else if (arg == "--timeout-ms") {
            const auto v = parseInt(next());
            if (!v || *v < 0)
                JITSCHED_FATAL("--timeout-ms needs a non-negative "
                               "integer");
            timeout_ms = static_cast<int>(*v);
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-id") {
            const auto v = obs::parseTraceIdHex(next());
            if (!v)
                JITSCHED_FATAL("--trace-id needs 1..16 hex digits, "
                               "nonzero");
            trace_id = *v;
        } else if (arg == "--prom") {
            prom = true;
        } else if (arg == "stats" && !stats_mode && !ping_mode &&
                   !dump_mode && !snapshot_mode &&
                   workload_path == "-") {
            stats_mode = true;
        } else if (arg == "ping" && !stats_mode && !ping_mode &&
                   !dump_mode && !snapshot_mode &&
                   workload_path == "-") {
            ping_mode = true;
        } else if (arg == "dump" && !stats_mode && !ping_mode &&
                   !dump_mode && !snapshot_mode &&
                   workload_path == "-") {
            dump_mode = true;
        } else if (arg == "snapshot" && !stats_mode && !ping_mode &&
                   !dump_mode && !snapshot_mode &&
                   workload_path == "-") {
            snapshot_mode = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "jitsched-cli: unknown option '" << arg
                      << "'\n";
            usage(2);
        } else {
            workload_path = arg;
        }
    }
    if (port < 0)
        JITSCHED_FATAL("--port is required (see jitschedd's "
                       "'listening on' line)");

    const ClientConfig client_cfg{timeout_ms, timeout_ms,
                                  timeout_ms};

    if (ping_mode) {
        ServiceClient client(client_cfg);
        std::string error;
        if (!client.connect(host, static_cast<std::uint16_t>(port),
                            &error))
            JITSCHED_FATAL("cannot reach daemon: ", error);
        if (!client.ping(id, &error))
            JITSCHED_FATAL("ping failed: ", error);
        std::cout << "pong " << id << "\n";
        return 0;
    }

    if (stats_mode) {
        ServiceClient client(client_cfg);
        std::string error;
        if (!client.connect(host, static_cast<std::uint16_t>(port),
                            &error))
            JITSCHED_FATAL("cannot reach jitschedd: ", error);
        auto resp = client.stats(id, &error, prom);
        if (!resp)
            JITSCHED_FATAL(error);
        if (prom && resp->ok) {
            // Bare exposition: what a scraper pastes into Prometheus,
            // no frame wrapper.
            for (const std::string &line : resp->lines)
                std::cout << line << "\n";
        } else {
            writeStatsResponse(std::cout, *resp);
        }
        return resp->ok ? 0 : 1;
    }

    if (dump_mode) {
        ServiceClient client(client_cfg);
        std::string error;
        if (!client.connect(host, static_cast<std::uint16_t>(port),
                            &error))
            JITSCHED_FATAL("cannot reach peer: ", error);
        auto resp = client.dump(id, &error);
        if (!resp)
            JITSCHED_FATAL(error);
        if (!resp->ok)
            JITSCHED_FATAL("dump refused: ", resp->error);
        for (const obs::FlightRecord &r : resp->records)
            std::cout << obs::FlightRecorder::recordLine(r) << "\n";
        return 0;
    }

    if (snapshot_mode) {
        ServiceClient client(client_cfg);
        std::string error;
        if (!client.connect(host, static_cast<std::uint16_t>(port),
                            &error))
            JITSCHED_FATAL("cannot reach jitschedd: ", error);
        auto resp = client.snapshot(id, &error);
        if (!resp)
            JITSCHED_FATAL(error);
        if (!resp->ok)
            JITSCHED_FATAL("snapshot refused: ", resp->error);
        std::cout << "snapshot " << resp->entries << " entries, "
                  << resp->bytes << " bytes\n";
        return 0;
    }

    // The CLI is a *user* front end: parse the workload and options
    // locally so typos die with a clear message instead of a wire
    // error, then rebuild the canonical frame via requestText().
    Workload w = [&] {
        if (workload_path == "-")
            return readWorkload(std::cin);
        return readWorkloadFile(workload_path);
    }();

    ServiceRequest req;
    req.id = id;
    req.policy = policy;
    req.workload = std::move(w);
    {
        // Round-trip the option pairs through the wire parser so the
        // CLI accepts exactly the keys the daemon does.
        std::ostringstream frame;
        frame << "jitsched-request " << id << "\n"
              << "policy " << policy << "\n";
        for (const auto &[k, v] : options)
            frame << "option " << k << " " << v << "\n";
        frame << "payload\n";
        writeWorkload(frame, req.workload);
        frame << "end\n";
        std::istringstream is(frame.str());
        std::string err;
        auto parsed = tryReadRequest(is, &err);
        if (!parsed)
            JITSCHED_FATAL(err);
        req = *std::move(parsed);
    }
    // The CLI is the trace's first contact: pin the id the user gave
    // (--trace-id beats an `--option trace-id` duplicate) or mint
    // one, so every submitted request is followable end to end.
    if (trace_id != 0)
        req.traceId = trace_id;
    else if (req.traceId == 0)
        req.traceId = obs::mintTraceId();

    ServiceClient client(client_cfg);
    std::string error;
    if (!client.connect(host, static_cast<std::uint16_t>(port),
                        &error))
        JITSCHED_FATAL("cannot reach jitschedd: ", error);
    auto resp = client.call(req, &error);
    if (!resp)
        JITSCHED_FATAL(error);

    writeResponse(std::cout, *resp, with_stats);

    if (!trace_out.empty()) {
        // The timeline is rebuilt client-side from the request's
        // workload and the response's schedule — the same pure
        // simulate() the daemon ran, so the trace shows exactly what
        // the response priced.
        if (!resp->ok || !resp->hasSchedule)
            JITSCHED_FATAL("--trace-out: the response carries no "
                           "schedule to trace (policy '",
                           resp->policy, "')");
        SimOptions so;
        so.compileCores = req.options.compileCores;
        so.execJitterSigma = req.options.jitterSigma;
        so.jitterSeed = req.options.jitterSeed;
        obs::writeScheduleTraceFile(trace_out, req.workload,
                                    Schedule(resp->schedule), so);
        std::cerr << "jitsched-cli: wrote trace to " << trace_out
                  << "\n";
    }
    return resp->ok ? 0 : 1;
}
