/**
 * @file
 * Blocking loopback client for jitschedd: connect once, submit any
 * number of request frames, read the matching response frames.  Used
 * by jitsched-cli, bench_service, and the loopback integration
 * tests; errors are reported as strings so callers decide whether a
 * failed round-trip is fatal.
 */

#ifndef JITSCHED_SERVICE_CLIENT_HH
#define JITSCHED_SERVICE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hh"

namespace jitsched {

class ServiceClient
{
  public:
    ServiceClient() = default;

    /** Disconnects if still connected. */
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect to a running daemon.
     * @return true on success; false with *error set otherwise
     */
    bool connect(const std::string &address, std::uint16_t port,
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Close the connection; idempotent. */
    void disconnect();

    /**
     * Send one request frame and block for its response frame.
     * Transport failures (not server-side errors, which arrive as
     * structured error responses) return nullopt with *error set.
     */
    std::optional<ServiceResponse> call(const ServiceRequest &req,
                                        std::string *error = nullptr);

    /**
     * Scrape the daemon's metrics registry (a `jitsched-stats`
     * frame).  Transport failures return nullopt with *error set;
     * server-side refusals arrive as a structured error response.
     */
    std::optional<StatsResponse> stats(std::uint64_t id = 0,
                                       std::string *error = nullptr);

    /**
     * Send raw frame text and read back the raw response frame,
     * byte-for-byte as received (every line up to and including
     * `end`).  The hook the byte-identity tests are built on.
     */
    std::optional<std::string> callRaw(const std::string &frame,
                                       std::string *error = nullptr);

  private:
    int fd_ = -1;
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_CLIENT_HH
