/**
 * @file
 * Blocking loopback client for jitschedd: connect once, submit any
 * number of request frames, read the matching response frames.  Used
 * by jitsched-cli, bench_service, and the loopback integration
 * tests; errors are reported as strings so callers decide whether a
 * failed round-trip is fatal.
 */

#ifndef JITSCHED_SERVICE_CLIENT_HH
#define JITSCHED_SERVICE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hh"

namespace jitsched {

/**
 * Transport deadlines for one client connection.  The defaults (-1)
 * block indefinitely — the historical behaviour, right for trusted
 * loopback tools.  Anything that must survive a hung peer (the
 * cluster router's per-try deadlines, jitsched-cli --timeout-ms)
 * arms all three.
 */
struct ClientConfig
{
    int connectTimeoutMs = -1; ///< connect(2) deadline; < 0 = none
    int readTimeoutMs = -1;    ///< per-read SO_RCVTIMEO; < 0 = none
    int writeTimeoutMs = -1;   ///< per-write SO_SNDTIMEO; < 0 = none
};

/** Why the last transport operation failed (for retry decisions). */
enum class TransportFailure
{
    None,       ///< last operation succeeded
    Connect,    ///< could not connect (refused, unreachable, timeout)
    Write,      ///< send failed or timed out mid-frame
    Timeout,    ///< read deadline expired — the peer is hung
    Disconnect, ///< the peer closed mid-response
};

class ServiceClient
{
  public:
    ServiceClient() = default;

    /** A client with transport deadlines armed on every socket. */
    explicit ServiceClient(ClientConfig cfg) : cfg_(cfg) {}

    /** Disconnects if still connected. */
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect to a running daemon.
     * @return true on success; false with *error set otherwise
     */
    bool connect(const std::string &address, std::uint16_t port,
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Close the connection; idempotent. */
    void disconnect();

    /**
     * Send one request frame and block for its response frame.
     * Transport failures (not server-side errors, which arrive as
     * structured error responses) return nullopt with *error set.
     */
    std::optional<ServiceResponse> call(const ServiceRequest &req,
                                        std::string *error = nullptr);

    /**
     * Scrape the daemon's metrics registry (a `jitsched-stats`
     * frame).  Transport failures return nullopt with *error set;
     * server-side refusals arrive as a structured error response.
     * With @p prom true the snapshot comes back in Prometheus
     * exposition format (`jitsched-stats <id> prom`).
     */
    std::optional<StatsResponse> stats(std::uint64_t id = 0,
                                       std::string *error = nullptr,
                                       bool prom = false);

    /**
     * Scrape the peer's flight recorder (a `jitsched-dump` frame):
     * the last N completed requests it remembers.  Transport failures
     * return nullopt with *error set.
     */
    std::optional<DumpResponse> dump(std::uint64_t id = 0,
                                     std::string *error = nullptr);

    /**
     * Trigger a result-cache snapshot save (a `jitsched-snapshot`
     * frame).  Transport failures return nullopt with *error set;
     * a daemon without a cache or snapshot file answers a structured
     * error response.
     */
    std::optional<SnapshotResponse>
    snapshot(std::uint64_t id = 0, std::string *error = nullptr);

    /**
     * Probe liveness with a `jitsched-ping` frame.  True only when a
     * well-formed ok pong came back within the read deadline — the
     * predicate the cluster health prober is built on.
     */
    bool ping(std::uint64_t id = 0, std::string *error = nullptr);

    /** Classification of the last call/stats/ping transport error. */
    TransportFailure lastFailure() const { return last_failure_; }

    /**
     * Send raw frame text and read back the raw response frame,
     * byte-for-byte as received (every line up to and including
     * `end`).  The hook the byte-identity tests are built on.
     */
    std::optional<std::string> callRaw(const std::string &frame,
                                       std::string *error = nullptr);

  private:
    int fd_ = -1;
    ClientConfig cfg_;
    TransportFailure last_failure_ = TransportFailure::None;
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_CLIENT_HH
