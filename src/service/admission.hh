/**
 * @file
 * Admission control for the scheduling service.
 *
 * Many clients, one solver pipeline: requests are admitted into a
 * bounded queue and served by a single worker that drains them in
 * batches through the shared ServiceEngine (and therefore through
 * the BatchEvaluator/EvalCache — duplicate requests across clients
 * hit the memo table instead of re-solving).
 *
 * Overload policy is explicit, in the spirit of the parallel-job
 * scheduling literature the ROADMAP points at (Berg et al.; Kulkarni
 * & Li): when the queue is full the service answers
 * RESOURCE_EXHAUSTED immediately instead of stalling every client,
 * and a request that waited past its deadline is answered
 * DEADLINE_EXCEEDED without burning solver time on an answer nobody
 * is waiting for.
 *
 * The queue discipline maps the paper's Sec. 7 insight onto the
 * service (see DESIGN.md): CachedFirst lets requests that will be
 * answered from the cache — the service analogue of cheap,
 * client-unblocking first compiles — overtake full solves.
 */

#ifndef JITSCHED_SERVICE_ADMISSION_HH
#define JITSCHED_SERVICE_ADMISSION_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "service/engine.hh"
#include "service/protocol.hh"

namespace jitsched {

/** How the admission queue orders a drained batch. */
enum class AdmissionDiscipline
{
    /** Strict arrival order. */
    Fifo,

    /**
     * Requests whose fingerprint has been served before jump ahead:
     * they are near-free cache hits, so serving them first minimizes
     * mean flow time without meaningfully delaying the full solves —
     * the Sec. 7 first-compile-first insight transplanted to the
     * request queue.  Default.
     */
    CachedFirst
};

/** Knobs of the admission queue. */
struct AdmissionConfig
{
    /** Pending requests beyond this depth are shed. */
    std::size_t maxDepth = 64;

    /** Maximum requests drained into one processing batch. */
    std::size_t maxBatch = 16;

    /**
     * Cap on the served-fingerprint set behind CachedFirst; when
     * exceeded the set is reset wholesale.  Keeps a long-running
     * daemon's memory bounded under diverse workloads at the cost of
     * briefly forgetting what is cached — a reordering heuristic, so
     * forgetting is harmless.
     */
    std::size_t maxServedFingerprints = 4096;

    AdmissionDiscipline discipline = AdmissionDiscipline::CachedFirst;
};

/**
 * Bounded admission queue + single worker thread over a
 * ServiceEngine.
 */
class AdmissionQueue
{
  public:
    /** @param engine must outlive the queue */
    explicit AdmissionQueue(ServiceEngine &engine,
                            AdmissionConfig cfg = {});

    /** Stops the worker; pending requests are answered UNAVAILABLE. */
    ~AdmissionQueue();

    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    /**
     * Submit a request.  The future always becomes ready: with the
     * policy's response, or with a structured RESOURCE_EXHAUSTED /
     * DEADLINE_EXCEEDED / UNAVAILABLE error.
     */
    std::future<ServiceResponse> submit(ServiceRequest req);

    /** Stop accepting and drain; idempotent. */
    void stop();

    /**
     * Restart the worker after a stop(); idempotent while running.
     * Counters are preserved across the bounce — what the restart
     * lifecycle tests assert on.
     */
    void restart();

    std::uint64_t accepted() const;  ///< requests queued
    std::uint64_t shed() const;      ///< rejected: queue full
    std::uint64_t expired() const;   ///< rejected: deadline passed
    std::uint64_t processed() const; ///< answered by the engine

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        ServiceRequest req;
        std::promise<ServiceResponse> promise;
        Clock::time_point admitted;
        Clock::time_point deadline; ///< valid when has_deadline
        bool has_deadline = false;
        std::uint64_t fingerprint = 0;
    };

    void workerLoop();
    void answer(Pending &p, ServiceResponse resp);

    ServiceEngine &engine_;
    const AdmissionConfig cfg_;

    mutable std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::deque<Pending> queue_;
    bool stop_ = false;

    std::uint64_t accepted_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t expired_ = 0;
    std::uint64_t processed_ = 0;

    /** Fingerprints already served; worker-thread only. */
    std::unordered_set<std::uint64_t> served_fingerprints_;

    std::thread worker_;
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_ADMISSION_HH
