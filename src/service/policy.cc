#include "service/policy.hh"

#include <utility>

#include <cstdlib>

#include "core/astar.hh"
#include "core/astar_par.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "exec/batch_eval.hh"
#include "exec/thread_pool.hh"
#include "support/logging.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/v8_policy.hh"

namespace jitsched {

namespace {

/** The cost-benefit configuration a request's model option selects. */
CostBenefitConfig
modelConfig(const ServiceOptions &opts)
{
    CostBenefitConfig cfg;
    cfg.kind = opts.model;
    return cfg;
}

SimOptions
simOptions(const ServiceOptions &opts)
{
    SimOptions so;
    so.compileCores = opts.compileCores;
    so.execJitterSigma = opts.jitterSigma;
    so.jitterSeed = opts.jitterSeed;
    return so;
}

/**
 * Common shape of the static-schedule policies: pick candidates under
 * the requested model, build one schedule, evaluate it through the
 * shared cache.
 */
template <typename BuildSchedule>
PolicyOutcome
staticOutcome(const Workload &w, const ServiceOptions &opts,
              BatchEvaluator &eval, BuildSchedule &&build)
{
    const std::vector<CandidatePair> cands =
        modelCandidateLevels(w, modelConfig(opts));
    PolicyOutcome out;
    out.lowerBound = lowerBoundCandidates(w, cands);
    out.schedule = build(cands);
    out.hasSchedule = true;
    out.sim = eval.evaluateOne(w, out.schedule, simOptions(opts));
    out.hasSim = true;
    return out;
}

class IarPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "iar"; }
    const char *
    describe() const override
    {
        return "IAR heuristic (Sec. 5.1): near-optimal static "
               "schedule";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &eval) const override
    {
        return staticOutcome(w, opts, eval, [&](const auto &cands) {
            return iarSchedule(w, cands).schedule;
        });
    }
};

class BaseOnlyPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "base-only"; }
    const char *
    describe() const override
    {
        return "single-level approximation at the most responsive "
               "level";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &eval) const override
    {
        return staticOutcome(w, opts, eval, [&](const auto &cands) {
            return baseLevelSchedule(w, cands);
        });
    }
};

class OptOnlyPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "opt-only"; }
    const char *
    describe() const override
    {
        return "single-level approximation at the cost-effective "
               "level";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &eval) const override
    {
        return staticOutcome(w, opts, eval, [&](const auto &cands) {
            return optimizingLevelSchedule(w, cands);
        });
    }
};

class LowerBoundPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "lower-bound"; }
    const char *
    describe() const override
    {
        return "make-span lower bound only (Sec. 5.2); no schedule";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &) const override
    {
        PolicyOutcome out;
        out.lowerBound = lowerBoundCandidates(
            w, modelCandidateLevels(w, modelConfig(opts)));
        return out;
    }
};

class AStarPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "astar"; }
    const char *
    describe() const override
    {
        return "A* optimal search (Sec. 5.3); refuses past its "
               "expansion/memory budget";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &eval) const override
    {
        AStarConfig cfg;
        cfg.memoryBudget = opts.astarMemoryMb << 20;
        cfg.maxExpansions = opts.astarMaxExpansions;
        cfg.pool = &eval.pool();
        const AStarResult res = aStarOptimal(w, cfg);

        PolicyOutcome out;
        out.lowerBound = lowerBoundCandidates(
            w, modelCandidateLevels(w, modelConfig(opts)));
        if (res.status != AStarStatus::Optimal) {
            out.ok = false;
            out.error = detail::concat(
                "A* gave up without an optimal schedule (",
                res.status == AStarStatus::OutOfMemory
                    ? "node store exceeded the memory budget"
                    : "expansion cap hit",
                " after ", res.nodesExpanded, " expansions)");
            return out;
        }
        out.schedule = res.schedule;
        out.hasSchedule = true;
        out.sim = eval.evaluateOne(w, out.schedule, simOptions(opts));
        out.hasSim = true;
        return out;
    }
};

class AStarParPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "astar-par"; }
    const char *
    describe() const override
    {
        return "hash-distributed parallel anytime A* "
               "(core/astar_par.hh); optimal when it finishes, best "
               "incumbent when a budget trips";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &eval) const override
    {
        AStarConfig cfg;
        cfg.memoryBudget = opts.astarMemoryMb << 20;
        cfg.maxExpansions = opts.astarMaxExpansions;
        // Worker-count precedence: explicit request option, then
        // JITSCHED_THREADS (strict-parse: non-numeric or < 1 is a
        // configuration error), then hardware concurrency (0).
        cfg.threads =
            opts.astarThreads != 0
                ? opts.astarThreads
                : ThreadPool::parseThreadsEnv(
                      std::getenv("JITSCHED_THREADS"));
        // A request deadline doubles as the anytime budget: a client
        // that bounded its wait gets the best incumbent by then
        // instead of a refusal.
        if (opts.deadlineMs > 0)
            cfg.anytimeDeadlineMs = opts.deadlineMs;
        const AStarResult res = aStarParallel(w, cfg);

        // Anytime contract: both Optimal and Incumbent carry a valid
        // schedule, so this policy never refuses.
        PolicyOutcome out;
        out.lowerBound = lowerBoundCandidates(
            w, modelCandidateLevels(w, modelConfig(opts)));
        out.schedule = res.schedule;
        out.hasSchedule = true;
        out.sim = eval.evaluateOne(w, out.schedule, simOptions(opts));
        out.hasSim = true;
        return out;
    }
};

class JikesPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "jikes"; }
    const char *
    describe() const override
    {
        return "Jikes RVM adaptive scheme replayed online "
               "(Sec. 6.2.1); reports the induced schedule";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &) const override
    {
        const CostBenefitConfig mcfg = modelConfig(opts);
        AdaptiveConfig acfg;
        acfg.compileCores = opts.compileCores;
        acfg.samplePeriod = defaultSamplePeriod(w);
        const RuntimeResult rr =
            runAdaptive(w, buildEstimates(w, mcfg), acfg);

        PolicyOutcome out;
        out.lowerBound = lowerBoundCandidates(
            w, modelCandidateLevels(w, mcfg));
        out.schedule = rr.inducedSchedule;
        out.hasSchedule = true;
        out.sim = rr.sim;
        out.hasSim = true;
        return out;
    }
};

class V8SchemePolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "v8"; }
    const char *
    describe() const override
    {
        return "V8 scheme on the two lowest levels (Sec. 6.2.4); "
               "reports the induced schedule";
    }

    PolicyOutcome
    run(const Workload &w, const ServiceOptions &opts,
        BatchEvaluator &) const override
    {
        // The paper applies V8's scheme with the JIT restricted to
        // the two lowest levels; the bound is computed on the same
        // restricted instance so the gap is meaningful (Fig. 8).
        const Workload restricted = w.restrictLevels(2);
        V8Config vcfg;
        vcfg.compileCores = opts.compileCores;
        const RuntimeResult rr = runV8(restricted, vcfg);

        PolicyOutcome out;
        out.lowerBound = lowerBoundCandidates(
            restricted,
            modelCandidateLevels(restricted, modelConfig(opts)));
        out.schedule = rr.inducedSchedule;
        out.hasSchedule = true;
        out.sim = rr.sim;
        out.hasSim = true;
        return out;
    }
};

} // anonymous namespace

void
PolicyRegistry::registerPolicy(std::unique_ptr<SchedulerPolicy> policy)
{
    if (policy == nullptr)
        JITSCHED_PANIC("PolicyRegistry: null policy");
    const std::string key = policy->name();
    policies_[key] = std::move(policy);
}

const SchedulerPolicy *
PolicyRegistry::find(const std::string &name) const
{
    const auto it = policies_.find(name);
    return it == policies_.end() ? nullptr : it->second.get();
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(policies_.size());
    for (const auto &[name, policy] : policies_)
        out.push_back(name);
    return out;
}

void
registerBuiltinPolicies(PolicyRegistry &reg)
{
    reg.registerPolicy(std::make_unique<IarPolicy>());
    reg.registerPolicy(std::make_unique<AStarPolicy>());
    reg.registerPolicy(std::make_unique<AStarParPolicy>());
    reg.registerPolicy(std::make_unique<BaseOnlyPolicy>());
    reg.registerPolicy(std::make_unique<OptOnlyPolicy>());
    reg.registerPolicy(std::make_unique<LowerBoundPolicy>());
    reg.registerPolicy(std::make_unique<JikesPolicy>());
    reg.registerPolicy(std::make_unique<V8SchemePolicy>());
}

const PolicyRegistry &
PolicyRegistry::builtin()
{
    static const PolicyRegistry &reg = []() -> PolicyRegistry & {
        static PolicyRegistry r;
        registerBuiltinPolicies(r);
        return r;
    }();
    return reg;
}

} // namespace jitsched
