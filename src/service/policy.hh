/**
 * @file
 * The policy registry: every scheduler in the repository behind one
 * request-shaped interface.
 *
 * A runtime asking the service "given this call sequence and cost
 * profile, what should I compile, in what order, at what levels?"
 * names a *policy*.  The built-in registry exposes the paper's whole
 * cast:
 *
 *   iar          the IAR heuristic (Sec. 5.1) — the near-optimal one
 *   astar        A* search (Sec. 5.3); optimal or an explicit refusal
 *   astar-par    hash-distributed parallel anytime A*
 *                (core/astar_par.hh); optimal when it finishes, best
 *                incumbent + gap when a budget trips — never refuses
 *   base-only    single-level approximation, most responsive level
 *   opt-only     single-level approximation, cost-effective level
 *   lower-bound  the make-span lower bound only (Sec. 5.2)
 *   jikes        the Jikes RVM adaptive scheme, replayed online
 *   v8           the V8 scheme on the two lowest levels (Sec. 6.2.4)
 *
 * Policies are pure with respect to a request: the same workload and
 * options always produce the same outcome, which is what lets the
 * service memoize evaluations across clients.
 */

#ifndef JITSCHED_SERVICE_POLICY_HH
#define JITSCHED_SERVICE_POLICY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hh"
#include "sim/makespan.hh"
#include "support/types.hh"
#include "trace/workload.hh"
#include "vm/cost_benefit.hh"

namespace jitsched {

class BatchEvaluator;

/** Per-request solver options, carried on the wire as `option` lines. */
struct ServiceOptions
{
    /** Compilation cores for the make-span evaluation. */
    std::size_t compileCores = 1;

    /**
     * Cost-benefit model used for candidate levels and the adaptive
     * runtime's recompilation test (the Fig. 5 / Fig. 6 axis).
     * Oracle is the default: deterministic and what a client asking
     * "what is the limit?" means.
     */
    ModelKind model = ModelKind::Oracle;

    /** Per-invocation execution-time jitter sigma (0 = off). */
    double jitterSigma = 0.0;

    /** Seed of the jitter draws. */
    std::uint64_t jitterSeed = 1;

    /**
     * Expansion cap for the astar policy.  A service cannot afford
     * the open-ended exponential search the offline study runs, so
     * the cap is finite by default and the policy answers with an
     * explicit solver-limit error when it is hit.
     */
    std::uint64_t astarMaxExpansions = 250'000;

    /** Node-store budget for the astar policy, in MiB. */
    std::uint64_t astarMemoryMb = 256;

    /**
     * Worker threads for the astar-par policy (`option threads N`,
     * jitsched-cli --threads).  0 = unset: fall back to the
     * JITSCHED_THREADS environment variable (strict-parse rules of
     * ThreadPool::parseThreadsEnv), then to hardware concurrency.
     */
    std::size_t astarThreads = 0;

    /**
     * Request deadline in milliseconds from admission; -1 = none.
     * Enforced by the admission queue, not by the solvers.
     */
    std::int64_t deadlineMs = -1;

    bool operator==(const ServiceOptions &) const = default;
};

/** What one policy run produces. */
struct PolicyOutcome
{
    /** False when the solver refused (e.g. A* hit its budget). */
    bool ok = true;

    /** Refusal description (valid when !ok). */
    std::string error;

    /** The candidate-level lower bound (always computed). */
    Tick lowerBound = 0;

    /** Whether the policy produced a schedule (lower-bound does not). */
    bool hasSchedule = false;

    /** The compilation schedule (static or induced). */
    Schedule schedule;

    /** Whether `sim` holds a make-span evaluation. */
    bool hasSim = false;

    /** Make-span evaluation of the schedule under the options. */
    SimResult sim;
};

/**
 * One scheduling algorithm behind the service interface.
 * Implementations must be stateless (the registry shares one
 * instance across all requests and threads).
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Registry key, e.g. "iar". */
    virtual const char *name() const = 0;

    /** One-line human description for listings. */
    virtual const char *describe() const = 0;

    /**
     * Run the policy.
     * @param w the workload (validated by the protocol layer)
     * @param opts per-request options
     * @param eval shared evaluator; static-schedule policies route
     *        their simulate() through it so identical requests hit
     *        the cache
     */
    virtual PolicyOutcome run(const Workload &w,
                              const ServiceOptions &opts,
                              BatchEvaluator &eval) const = 0;
};

/**
 * Name -> policy table.  The built-in instance holds the eight
 * standard policies; tests can build registries of their own.
 */
class PolicyRegistry
{
  public:
    PolicyRegistry() = default;

    PolicyRegistry(const PolicyRegistry &) = delete;
    PolicyRegistry &operator=(const PolicyRegistry &) = delete;

    /** Add a policy; replaces an existing entry of the same name. */
    void registerPolicy(std::unique_ptr<SchedulerPolicy> policy);

    /** Look up by name; nullptr when unknown. */
    const SchedulerPolicy *find(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    std::size_t size() const { return policies_.size(); }

    /** The process-wide registry with the eight built-in policies. */
    static const PolicyRegistry &builtin();

  private:
    std::map<std::string, std::unique_ptr<SchedulerPolicy>> policies_;
};

/** Register the eight built-in policies into @p reg. */
void registerBuiltinPolicies(PolicyRegistry &reg);

} // namespace jitsched

#endif // JITSCHED_SERVICE_POLICY_HH
