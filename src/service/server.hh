/**
 * @file
 * jitschedd's serving core: a loopback TCP front end over the
 * admission queue.
 *
 * Thread shape: one acceptor thread accepts connections and hands
 * the fds to a fixed pool of connection handlers.  A handler reads
 * one request frame at a time (everything up to an `end` line),
 * parses it with the non-fatal protocol path, and either answers a
 * parse error immediately or submits the request to the admission
 * queue and relays the response.  Framing is recovered at the `end`
 * scan, so one malformed request never desynchronizes or kills a
 * connection — the client gets a structured INVALID_ARGUMENT frame
 * and can keep the socket.
 *
 * Embeddable by design: the loopback tests and bench_service run the
 * server in-process on an ephemeral port; jitschedd_main.cc adds
 * argument parsing and signal handling around the same class.
 */

#ifndef JITSCHED_SERVICE_SERVER_HH
#define JITSCHED_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "service/admission.hh"
#include "service/engine.hh"
#include "service/result_cache.hh"

namespace jitsched {

/** Knobs of the daemon front end. */
struct ServerConfig
{
    /** Address to bind; loopback by default. */
    std::string bindAddress = "127.0.0.1";

    /** Port to bind; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;

    /** listen(2) backlog. */
    int acceptBacklog = 64;

    /** Concurrent connection handlers. */
    std::size_t handlerThreads = 4;

    /**
     * Largest accepted request frame (and single line) in bytes.  A
     * client that streams past this without an `end` line gets an
     * INVALID_ARGUMENT response and is disconnected — the frame
     * cannot be resynchronized without reading an unbounded amount.
     */
    std::size_t maxFrameBytes = std::size_t(1) << 20;

    /** Admission-queue knobs. */
    AdmissionConfig admission;

    /**
     * Request-level result-cache budget in bytes
     * (service/result_cache.hh); 0 disables the cache entirely —
     * byte-for-byte today's behavior.
     */
    std::size_t resultCacheBytes = 0;

    /**
     * Warm-restart snapshot file: loaded (strictly validated) on
     * start(), written on clean stop() and on the SNAPSHOT verb.
     * Empty disables snapshots.  Only meaningful with the cache on.
     */
    std::string snapshotPath;
};

class ServiceServer
{
  public:
    /** @param engine must outlive the server */
    explicit ServiceServer(ServiceEngine &engine,
                           ServerConfig cfg = {});

    /** Stops and joins everything. */
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /**
     * Bind, listen, and spawn the acceptor + handlers.
     *
     * A stopped server can be started again: the second start()
     * rebinds the port the first one landed on (even when cfg.port
     * was 0), so a bounced backend comes back on the address its
     * cluster router knows.  Counters survive the bounce.
     *
     * @return true on success; false with *error set otherwise
     */
    bool start(std::string *error = nullptr);

    /**
     * Stop accepting, close connections, join threads; idempotent.
     * The server may be start()ed again afterwards.
     */
    void stop();

    /** The port actually bound (valid after start()). */
    std::uint16_t port() const { return port_; }

    const std::string &bindAddress() const
    {
        return cfg_.bindAddress;
    }

    /** Connections accepted since start(). */
    std::uint64_t connectionsAccepted() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

    /**
     * Connections dropped since start(): accept() failures that
     * triggered the backoff path (EMFILE and friends) — each one a
     * client the daemon turned away without a response.
     */
    std::uint64_t connectionsDropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Request frames answered (valid and malformed). */
    std::uint64_t framesServed() const
    {
        return frames_.load(std::memory_order_relaxed);
    }

    AdmissionQueue &admission() { return queue_; }

    /** The request-level result cache (disabled unless configured). */
    ResultCache &resultCache() { return rcache_; }

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    ServiceEngine &engine_;
    const ServerConfig cfg_;
    AdmissionQueue queue_;
    ResultCache rcache_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::mutex conn_mutex_;
    std::condition_variable conn_cv_;
    std::deque<int> conn_queue_;

    /**
     * Fds currently owned by a handler, so stop() can shutdown(2)
     * them and unblock handlers parked in a read on an idle
     * connection.  Guarded by conn_mutex_.
     */
    std::unordered_set<int> active_fds_;

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> frames_{0};

    std::thread acceptor_;
    std::vector<std::thread> handlers_;
};

} // namespace jitsched

#endif // JITSCHED_SERVICE_SERVER_HH
