/**
 * @file
 * Synthetic workload generator.
 *
 * The paper collects (call sequence, c_{i,j}, e_{i,j}) data from Jikes
 * RVM replay runs of the DaCapo 2006 suite.  We do not have that
 * infrastructure, so this module synthesizes statistically similar
 * inputs: log-normal code sizes, level cost models that respect the
 * paper's monotonicity assumptions, Zipf-skewed function hotness,
 * phase structure (functions appear over time, as classes load), and
 * bursty temporal locality.  Every scheduler under study consumes only
 * this (trace, costs) tuple — exactly what the paper's own make-span
 * evaluation framework consumes — so the comparative results exercise
 * the same code paths as the original study.
 */

#ifndef JITSCHED_TRACE_SYNTHETIC_HH
#define JITSCHED_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * Tunable parameters of the synthetic workload generator.
 *
 * The defaults model a Jikes-RVM-like 4-level JIT: a very cheap
 * baseline compiler and three optimizing levels whose compile cost
 * grows steeply while the produced code gets faster.
 */
struct SyntheticConfig
{
    /** Workload name carried into the Workload. */
    std::string name = "synthetic";

    /** Number of distinct functions (every one will be called). */
    std::size_t numFunctions = 1000;

    /** Length of the call sequence. */
    std::size_t numCalls = 1'000'000;

    /** Number of JIT optimization levels (>= 1). */
    std::size_t numLevels = 4;

    /** Zipf skew of function hotness within a phase. */
    double zipfSkew = 0.85;

    /** Number of program phases; functions appear phase by phase. */
    std::size_t numPhases = 6;

    /** Fraction of functions hot across all phases (shared core). */
    double sharedFraction = 0.40;

    /** Probability of repeating the previous call (burstiness). */
    double burstiness = 0.55;

    /**
     * log-normal parameters of code size in "bytecodes".  Java
     * methods are small: median ~65, mean ~100.
     */
    double sizeLogMean = 4.2;
    double sizeLogSigma = 0.9;

    /**
     * Baseline compile cost per size unit, in ns.  In the Jikes
     * ballpark (baseline compiler: hundreds of bytecodes per ms).
     */
    double compileNsPerByte = 500.0;

    /**
     * Global multiplier on every compile time.  When a trace is
     * generated at 1/S of its real length (numCalls and
     * targetLevel0ExecTime divided by S) the compile mass must shrink
     * with it, or the compile/execute balance — which the paper's
     * comparisons hinge on — is distorted by S; pass 1/S here.
     */
    double compileTimeScale = 1.0;

    /**
     * Per-level compile cost multiplier over baseline.  The Jikes
     * optimizing compiler is one to two orders of magnitude slower
     * than the baseline compiler, steeply so at O2.
     */
    std::vector<double> compileFactor = {1.0, 32.0, 96.0, 256.0};

    /** Multiplicative jitter applied to each compile time. */
    double compileJitterSigma = 0.25;

    /** Per-level mean speedup of execution over level 0. */
    std::vector<double> speedupMean = {1.0, 3.15, 4.5, 6.0};

    /**
     * Fraction of a phase within which its new functions make their
     * first appearance.  Small values model the class-loading bursts
     * at phase boundaries that real traces show.
     */
    double firstCallWindow = 0.02;

    /** log-sigma of per-function speedup variation. */
    double speedupSigma = 0.55;

    /** log-normal spread of per-function level-0 invocation cost. */
    double execLogSigma = 1.2;

    /**
     * Target total level-0 execution time of the whole sequence; all
     * execution times are scaled to hit this, so the compile/execute
     * balance matches a warmup run of the given length.
     */
    Tick targetLevel0ExecTime = 4 * ticksPerSecond;

    /**
     * Treat level 0 as an interpreter (Sec. 8): zero compile cost for
     * the lowest level.
     */
    bool interpreterLevel0 = false;

    /** RNG seed; same seed, same workload. */
    std::uint64_t seed = 1;

    /**
     * Seed for the *dynamic* draws only (which hot function each
     * call picks, burst lengths, first-call slots).  0 (default)
     * derives everything from `seed`.  A non-zero value models
     * another run of the *same program*: function profiles, phase
     * membership and the hotness ranking stay fixed, while the call
     * interleaving varies — which is what cross-run learning
     * (Sec. 8) trains on.
     */
    std::uint64_t sequenceSeed = 0;
};

/**
 * Generate a workload from a configuration.
 * fatal() on inconsistent configurations (user input).
 */
Workload generateSynthetic(const SyntheticConfig &cfg);

} // namespace jitsched

#endif // JITSCHED_TRACE_SYNTHETIC_HH
