/**
 * @file
 * The nine DaCapo-2006-like workload configurations of Table 1.
 *
 * The paper's experiments run on call sequences collected from antlr,
 * bloat, eclipse, fop, hsqldb, jython, luindex, lusearch and pmd
 * (chart and xalan do not run under Jikes RVM 3.1.2 / replay).  We
 * reproduce each benchmark's published shape — number of distinct
 * functions, call sequence length, and end-to-end default time — with
 * the synthetic generator, and tune the remaining knobs per benchmark
 * (phase count, skew, burstiness) to reflect its character (e.g.
 * eclipse: few, long calls over many functions; lusearch: tens of
 * millions of tiny calls over few functions).
 */

#ifndef JITSCHED_TRACE_DACAPO_HH
#define JITSCHED_TRACE_DACAPO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/synthetic.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Static description of one Table-1 benchmark. */
struct DacapoSpec
{
    std::string name;
    bool parallel;             ///< multithreaded app (trace is merged)
    std::size_t numFunctions;  ///< Table 1 "#functions"
    std::size_t numCalls;      ///< Table 1 "call seq length"
    double defaultTimeSec;     ///< Table 1 "default time(s)"
};

/** All nine benchmark specs, in Table 1 order. */
const std::vector<DacapoSpec> &dacapoSpecs();

/** Look up one spec by name; fatal() if unknown. */
const DacapoSpec &dacapoSpec(const std::string &name);

/**
 * Build the generator configuration for a benchmark.
 *
 * @param spec which benchmark
 * @param scale divide the call-sequence length by this factor
 *              (>= 1).  Function count and the compile/execute balance
 *              are preserved, so normalized make-spans are
 *              scale-stable; benches default to 16 for speed.
 */
SyntheticConfig dacapoConfig(const DacapoSpec &spec,
                             std::size_t scale = 1);

/** Generate the workload for a benchmark at the given scale. */
Workload makeDacapoWorkload(const std::string &name,
                            std::size_t scale = 1);

/**
 * Resolve the benchmark scale for benches: 1 if the environment
 * variable JITSCHED_FULL is set to a non-empty, non-"0" value,
 * otherwise @p default_scale.
 */
std::size_t benchScaleFromEnv(std::size_t default_scale = 16);

} // namespace jitsched

#endif // JITSCHED_TRACE_DACAPO_HH
