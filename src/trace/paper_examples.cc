#include "trace/paper_examples.hh"

namespace jitsched {

namespace {

std::vector<FunctionProfile>
exampleFunctions()
{
    // f0 and f2's "one worthwhile level" is modeled by duplicating
    // the useful level where the paper leaves the other unspecified:
    // f0 is cheap either way; f2's two levels are both real (Fig. 2
    // uses its level-1 recompilation).
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f0", 1,
                       std::vector<LevelCosts>{{1, 1}, {1, 1}});
    funcs.emplace_back("f1", 1,
                       std::vector<LevelCosts>{{1, 3}, {3, 2}});
    funcs.emplace_back("f2", 1,
                       std::vector<LevelCosts>{{3, 3}, {5, 1}});
    return funcs;
}

} // anonymous namespace

Workload
figure1Workload()
{
    return Workload("paper-fig1", exampleFunctions(), {0, 1, 2, 1});
}

Workload
figure2Workload()
{
    return Workload("paper-fig2", exampleFunctions(),
                    {0, 1, 2, 1, 2});
}

Schedule
figureSchemeS1()
{
    return Schedule({{0, 0}, {1, 0}, {2, 0}});
}

Schedule
figureSchemeS2()
{
    return Schedule({{0, 0}, {1, 1}, {2, 0}});
}

Schedule
figureSchemeS3()
{
    return Schedule({{0, 0}, {1, 0}, {2, 0}, {1, 1}});
}

Schedule
figureSchemeS1Extended()
{
    return Schedule({{0, 0}, {1, 0}, {2, 0}, {2, 1}});
}

Schedule
figureSchemeS2Extended()
{
    return Schedule({{0, 0}, {1, 1}, {2, 0}, {2, 1}});
}

} // namespace jitsched
