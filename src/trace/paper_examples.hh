/**
 * @file
 * The worked examples of the paper's Figs. 1 and 2, as workloads.
 *
 * Three functions f0, f1, f2; invocation sequence "f0 f1 f2 f1"
 * (Fig. 1) or "f0 f1 f2 f1 f2" (Fig. 2).  Times (in abstract units,
 * 1 unit = 1 tick):
 *
 *   f0: one useful level            c = 1,  e = 1
 *   f1: level 0: c = 1, e = 3       level 1: c = 3, e = 2
 *   f2: level 0: c = 3, e = 3       level 1: c = 5, e = 1
 *
 * With these costs the paper's timelines give make-spans 11/12/10 for
 * schemes s1/s2/s3 on the Fig. 1 sequence, and 12/13/13 when the
 * fifth call is appended (with the c21 recompilation appended to s1
 * and s2) — the example that shows how appending one call flips which
 * schedule is best.
 */

#ifndef JITSCHED_TRACE_PAPER_EXAMPLES_HH
#define JITSCHED_TRACE_PAPER_EXAMPLES_HH

#include "core/schedule.hh"
#include "trace/workload.hh"

namespace jitsched {

/** The Fig. 1 instance: calls f0 f1 f2 f1. */
Workload figure1Workload();

/** The Fig. 2 instance: calls f0 f1 f2 f1 f2. */
Workload figure2Workload();

/** Scheme s1: all functions compiled at level 0. */
Schedule figureSchemeS1();

/** Scheme s2: f1 compiled at level 1, others at level 0. */
Schedule figureSchemeS2();

/** Scheme s3: f1 compiled at level 0 first and later at level 1. */
Schedule figureSchemeS3();

/** Scheme s1/s2 with the recompilation of f2 at level 1 appended. */
Schedule figureSchemeS1Extended();
Schedule figureSchemeS2Extended();

} // namespace jitsched

#endif // JITSCHED_TRACE_PAPER_EXAMPLES_HH
