/**
 * @file
 * Plain-text serialization of workloads.
 *
 * The format mirrors what the paper's data-collection framework emits
 * from Jikes RVM replay runs: a function table with per-level
 * compilation/execution times, followed by the call sequence.
 *
 * Grammar (line oriented, '#' starts a comment):
 *
 *   workload <name>
 *   levels <L>
 *   func <id> <name> <size> <c0> <e0> <c1> <e1> ... (L pairs, ticks)
 *   calls <N>
 *   <id> <id> <id> ...        (whitespace separated, any line breaks)
 *
 * Functions may declare fewer than L levels by repeating the last
 * pair; the reader only requires each func line to carry at least one
 * pair and at most L.
 */

#ifndef JITSCHED_TRACE_TRACE_IO_HH
#define JITSCHED_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/workload.hh"

namespace jitsched {

/** Serialize a workload to a stream in the text format above. */
void writeWorkload(std::ostream &os, const Workload &w);

/** Serialize a workload to a file; fatal() on I/O failure. */
void writeWorkloadFile(const std::string &path, const Workload &w);

/**
 * Parse a workload from a stream without killing the process.
 *
 * This is the parse path for inputs that arrive from *other
 * programs* — above all the scheduling service, where a malformed
 * client request must produce an error response, not take the daemon
 * down.  Also catches errors readWorkload() would previously have
 * escalated to panic(), such as call ids that point past the function
 * table.
 *
 * @param error receives a description of the first problem found
 *              (unchanged on success); may be null
 * @param stop_line when non-empty, parsing consumes lines up to and
 *              including the first line that (after comment/space
 *              stripping) equals this terminator, instead of reading
 *              to EOF — how the wire protocol embeds a workload in a
 *              larger stream
 * @return the workload, or nullopt on malformed input
 */
std::optional<Workload>
tryReadWorkload(std::istream &is, std::string *error = nullptr,
                const std::string &stop_line = "");

/**
 * Parse a workload from a stream.
 * fatal() on malformed input (this is user data, not a bug).
 */
Workload readWorkload(std::istream &is);

/** Parse a workload from a file; fatal() on I/O failure. */
Workload readWorkloadFile(const std::string &path);

} // namespace jitsched

#endif // JITSCHED_TRACE_TRACE_IO_HH
