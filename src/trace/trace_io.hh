/**
 * @file
 * Plain-text serialization of workloads.
 *
 * The format mirrors what the paper's data-collection framework emits
 * from Jikes RVM replay runs: a function table with per-level
 * compilation/execution times, followed by the call sequence.
 *
 * Grammar (line oriented, '#' starts a comment):
 *
 *   workload <name>
 *   levels <L>
 *   func <id> <name> <size> <c0> <e0> <c1> <e1> ... (L pairs, ticks)
 *   calls <N>
 *   <id> <id> <id> ...        (whitespace separated, any line breaks)
 *
 * Functions may declare fewer than L levels by repeating the last
 * pair; the reader only requires each func line to carry at least one
 * pair and at most L.
 */

#ifndef JITSCHED_TRACE_TRACE_IO_HH
#define JITSCHED_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/workload.hh"

namespace jitsched {

/** Serialize a workload to a stream in the text format above. */
void writeWorkload(std::ostream &os, const Workload &w);

/** Serialize a workload to a file; fatal() on I/O failure. */
void writeWorkloadFile(const std::string &path, const Workload &w);

/**
 * Parse a workload from a stream.
 * fatal() on malformed input (this is user data, not a bug).
 */
Workload readWorkload(std::istream &is);

/** Parse a workload from a file; fatal() on I/O failure. */
Workload readWorkloadFile(const std::string &path);

} // namespace jitsched

#endif // JITSCHED_TRACE_TRACE_IO_HH
