/**
 * @file
 * A Workload is the complete input to the Optimal Compilation
 * Scheduling Problem (OCSP, Definition 1 of the paper): a table of
 * function profiles plus the dynamic call sequence.  Derived indices
 * (call counts, first-call positions, first-appearance order) are
 * precomputed because every scheduler needs them.
 */

#ifndef JITSCHED_TRACE_WORKLOAD_HH
#define JITSCHED_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"
#include "trace/function_profile.hh"

namespace jitsched {

/**
 * Immutable OCSP instance: functions + call sequence + derived data.
 */
class Workload
{
  public:
    Workload() = default;

    /**
     * @param name workload identifier (e.g. "antlr")
     * @param functions profile table, indexed by FuncId
     * @param calls dynamic call sequence; each entry must be a valid
     *              index into @p functions (checked, panics otherwise)
     */
    Workload(std::string name, std::vector<FunctionProfile> functions,
             std::vector<FuncId> calls);

    const std::string &name() const { return name_; }

    /** Number of functions in the profile table. */
    std::size_t numFunctions() const { return functions_.size(); }

    /** Length of the call sequence. */
    std::size_t numCalls() const { return calls_.size(); }

    const std::vector<FunctionProfile> &functions() const
    {
        return functions_;
    }

    const FunctionProfile &function(FuncId f) const;

    const std::vector<FuncId> &calls() const { return calls_; }

    /** Number of invocations of function f in the sequence. */
    std::uint64_t callCount(FuncId f) const;

    /**
     * Index in the call sequence of the first call to f;
     * -1 if f is never called.
     */
    std::int64_t firstCallIndex(FuncId f) const;

    /** Functions ordered by their first appearance in the sequence. */
    const std::vector<FuncId> &firstAppearanceOrder() const
    {
        return first_order_;
    }

    /** Number of distinct functions that are actually called. */
    std::size_t numCalledFunctions() const { return first_order_.size(); }

    /**
     * Total execution time if every call ran at the given level
     * (functions lacking that level use their highest one).
     */
    Tick totalExecAtLevel(Level j) const;

    /** Maximum level count over all functions. */
    std::size_t maxLevels() const;

    /**
     * Build a copy that only exposes the lowest @p n_levels levels of
     * every function (used for the V8 experiment, which restricts the
     * JIT to the two lowest Jikes levels, Sec. 6.2.4).
     */
    Workload restrictLevels(std::size_t n_levels) const;

  private:
    std::string name_;
    std::vector<FunctionProfile> functions_;
    std::vector<FuncId> calls_;

    std::vector<std::uint64_t> call_counts_;
    std::vector<std::int64_t> first_call_;
    std::vector<FuncId> first_order_;
};

} // namespace jitsched

#endif // JITSCHED_TRACE_WORKLOAD_HH
