/**
 * @file
 * Compact binary serialization of workloads.
 *
 * The text format (trace_io.hh) is convenient but a full-length
 * lusearch trace (43.6M calls) weighs hundreds of megabytes as text.
 * This format stores the function table verbatim and the call
 * sequence as run-length-encoded varints, exploiting the bursty
 * temporal locality real traces have.  Typical full-scale traces
 * shrink by an order of magnitude and load in a fraction of the
 * time.
 *
 * Layout (little-endian):
 *   magic   "JSW1" (4 bytes)
 *   name    varint length + bytes
 *   nfuncs  varint
 *   per function: name, size (varint), nlevels (varint),
 *                 per level: compile, exec (varints)
 *   ncalls  varint (number of calls, pre-RLE)
 *   nruns   varint (number of RLE runs)
 *   per run: func id (varint), repeat count (varint)
 */

#ifndef JITSCHED_TRACE_BINARY_IO_HH
#define JITSCHED_TRACE_BINARY_IO_HH

#include <iosfwd>
#include <string>

#include "trace/workload.hh"

namespace jitsched {

/** Serialize a workload to a stream in the binary format. */
void writeWorkloadBinary(std::ostream &os, const Workload &w);

/** Serialize to a file; fatal() on I/O failure. */
void writeWorkloadBinaryFile(const std::string &path,
                             const Workload &w);

/** Parse a workload from a binary stream; fatal() on bad input. */
Workload readWorkloadBinary(std::istream &is);

/** Parse from a file; fatal() on I/O failure. */
Workload readWorkloadBinaryFile(const std::string &path);

/**
 * Load a workload by file extension: ".jsw" binary, anything else
 * the text format.
 */
Workload loadWorkloadAuto(const std::string &path);

} // namespace jitsched

#endif // JITSCHED_TRACE_BINARY_IO_HH
