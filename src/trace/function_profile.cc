#include "trace/function_profile.hh"

#include "support/logging.hh"

namespace jitsched {

FunctionProfile::FunctionProfile(std::string name, std::uint32_t size,
                                 std::vector<LevelCosts> levels)
    : name_(std::move(name)), size_(size), levels_(std::move(levels))
{
    if (levels_.empty())
        JITSCHED_PANIC("function '", name_, "' has no levels");
    if (!levelsMonotonic(levels_))
        JITSCHED_PANIC("function '", name_,
                       "' violates level monotonicity");
}

const LevelCosts &
FunctionProfile::level(Level j) const
{
    if (j >= levels_.size())
        JITSCHED_PANIC("function '", name_, "': level ",
                       static_cast<int>(j), " out of range (",
                       levels_.size(), " levels)");
    return levels_[j];
}

Level
FunctionProfile::highestLevel() const
{
    return static_cast<Level>(levels_.size() - 1);
}

Level
FunctionProfile::mostCostEffectiveLevel(std::uint64_t n_calls) const
{
    Level best = 0;
    // Use __int128 so huge call counts cannot overflow the total.
    __int128 best_cost = static_cast<__int128>(levels_[0].compile) +
                         static_cast<__int128>(n_calls) * levels_[0].exec;
    for (std::size_t j = 1; j < levels_.size(); ++j) {
        const __int128 cost =
            static_cast<__int128>(levels_[j].compile) +
            static_cast<__int128>(n_calls) * levels_[j].exec;
        if (cost < best_cost) {
            best_cost = cost;
            best = static_cast<Level>(j);
        }
    }
    return best;
}

bool
FunctionProfile::levelsMonotonic(const std::vector<LevelCosts> &levels)
{
    for (std::size_t j = 0; j + 1 < levels.size(); ++j) {
        if (levels[j].compile > levels[j + 1].compile)
            return false;
        if (levels[j].exec < levels[j + 1].exec)
            return false;
    }
    for (const auto &lc : levels) {
        if (lc.compile < 0 || lc.exec < 0)
            return false;
    }
    return true;
}

} // namespace jitsched
