#include "trace/binary_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "support/logging.hh"
#include "trace/trace_io.hh"

namespace jitsched {

namespace {

constexpr char magic[4] = {'J', 'S', 'W', '1'};

void
putVarint(std::ostream &os, std::uint64_t v)
{
    // LEB128: 7 bits per byte, high bit = continuation.
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

std::uint64_t
getVarint(std::istream &is)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        const int c = is.get();
        if (c == EOF)
            JITSCHED_FATAL("binary trace: truncated varint");
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if ((c & 0x80) == 0)
            break;
        shift += 7;
        if (shift > 63)
            JITSCHED_FATAL("binary trace: varint overflow");
    }
    return v;
}

void
putString(std::ostream &os, const std::string &s)
{
    putVarint(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getString(std::istream &is)
{
    const std::uint64_t len = getVarint(is);
    if (len > (1u << 20))
        JITSCHED_FATAL("binary trace: implausible string length ",
                       len);
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    if (!is)
        JITSCHED_FATAL("binary trace: truncated string");
    return s;
}

} // anonymous namespace

void
writeWorkloadBinary(std::ostream &os, const Workload &w)
{
    os.write(magic, sizeof(magic));
    putString(os, w.name());
    putVarint(os, w.numFunctions());
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &prof = w.function(static_cast<FuncId>(i));
        putString(os, prof.name());
        putVarint(os, prof.size());
        putVarint(os, prof.numLevels());
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            const auto &lc = prof.level(static_cast<Level>(j));
            putVarint(os, static_cast<std::uint64_t>(lc.compile));
            putVarint(os, static_cast<std::uint64_t>(lc.exec));
        }
    }

    // Run-length encode the call sequence.
    const auto &calls = w.calls();
    std::uint64_t n_runs = 0;
    for (std::size_t i = 0; i < calls.size();) {
        std::size_t j = i + 1;
        while (j < calls.size() && calls[j] == calls[i])
            ++j;
        ++n_runs;
        i = j;
    }
    putVarint(os, calls.size());
    putVarint(os, n_runs);
    for (std::size_t i = 0; i < calls.size();) {
        std::size_t j = i + 1;
        while (j < calls.size() && calls[j] == calls[i])
            ++j;
        putVarint(os, calls[i]);
        putVarint(os, j - i);
        i = j;
    }
}

void
writeWorkloadBinaryFile(const std::string &path, const Workload &w)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        JITSCHED_FATAL("cannot open '", path, "' for writing");
    writeWorkloadBinary(os, w);
    if (!os)
        JITSCHED_FATAL("I/O error while writing '", path, "'");
}

Workload
readWorkloadBinary(std::istream &is)
{
    char got[4];
    is.read(got, sizeof(got));
    if (!is || std::string(got, 4) != std::string(magic, 4))
        JITSCHED_FATAL("binary trace: bad magic");

    const std::string name = getString(is);
    const std::uint64_t n_funcs = getVarint(is);
    if (n_funcs > (1u << 26))
        JITSCHED_FATAL("binary trace: implausible function count ",
                       n_funcs);

    std::vector<FunctionProfile> funcs;
    funcs.reserve(n_funcs);
    for (std::uint64_t i = 0; i < n_funcs; ++i) {
        const std::string fname = getString(is);
        const auto size =
            static_cast<std::uint32_t>(getVarint(is));
        const std::uint64_t n_levels = getVarint(is);
        if (n_levels == 0 || n_levels > 64)
            JITSCHED_FATAL("binary trace: function '", fname,
                           "' has implausible level count ",
                           n_levels);
        std::vector<LevelCosts> levels(n_levels);
        for (auto &lc : levels) {
            lc.compile = static_cast<Tick>(getVarint(is));
            lc.exec = static_cast<Tick>(getVarint(is));
        }
        if (!FunctionProfile::levelsMonotonic(levels))
            JITSCHED_FATAL("binary trace: function '", fname,
                           "' violates level monotonicity");
        funcs.emplace_back(fname, size, std::move(levels));
    }

    const std::uint64_t n_calls = getVarint(is);
    const std::uint64_t n_runs = getVarint(is);
    std::vector<FuncId> calls;
    calls.reserve(n_calls);
    for (std::uint64_t r = 0; r < n_runs; ++r) {
        const std::uint64_t f = getVarint(is);
        const std::uint64_t count = getVarint(is);
        if (f >= n_funcs)
            JITSCHED_FATAL("binary trace: call to unknown function ",
                           f);
        if (calls.size() + count > n_calls)
            JITSCHED_FATAL("binary trace: RLE overruns call count");
        calls.insert(calls.end(), count,
                     static_cast<FuncId>(f));
    }
    if (calls.size() != n_calls)
        JITSCHED_FATAL("binary trace: expected ", n_calls,
                       " calls, decoded ", calls.size());
    return Workload(name, std::move(funcs), std::move(calls));
}

Workload
readWorkloadBinaryFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        JITSCHED_FATAL("cannot open '", path, "' for reading");
    return readWorkloadBinary(is);
}

Workload
loadWorkloadAuto(const std::string &path)
{
    if (path.size() > 4 &&
        path.compare(path.size() - 4, 4, ".jsw") == 0)
        return readWorkloadBinaryFile(path);
    return readWorkloadFile(path);
}

} // namespace jitsched
