#include "trace/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/logging.hh"
#include "support/strutil.hh"

namespace jitsched {

void
writeWorkload(std::ostream &os, const Workload &w)
{
    os << "# jitsched workload trace\n";
    os << "workload " << w.name() << "\n";
    os << "levels " << w.maxLevels() << "\n";
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &prof = w.function(static_cast<FuncId>(i));
        os << "func " << i << ' ' << prof.name() << ' ' << prof.size();
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            const auto &lc = prof.level(static_cast<Level>(j));
            os << ' ' << lc.compile << ' ' << lc.exec;
        }
        os << "\n";
    }
    os << "calls " << w.numCalls() << "\n";
    const auto &calls = w.calls();
    for (std::size_t i = 0; i < calls.size(); ++i) {
        os << calls[i];
        os << ((i % 16 == 15 || i + 1 == calls.size()) ? '\n' : ' ');
    }
}

void
writeWorkloadFile(const std::string &path, const Workload &w)
{
    std::ofstream os(path);
    if (!os)
        JITSCHED_FATAL("cannot open '", path, "' for writing");
    writeWorkload(os, w);
    if (!os)
        JITSCHED_FATAL("I/O error while writing '", path, "'");
}

namespace {

/** Strip comments and surrounding whitespace from one line. */
std::string
cleanLine(const std::string &line)
{
    const std::size_t hash = line.find('#');
    const std::string_view body =
        hash == std::string::npos
            ? std::string_view(line)
            : std::string_view(line).substr(0, hash);
    return std::string(trim(body));
}

/**
 * Parse an integer token; on failure stores a message in *error and
 * returns nullopt.  Every parse failure below funnels through here or
 * through fail(), so the fatal and non-fatal paths report identical
 * messages.
 */
std::optional<std::int64_t>
tryInt(std::string_view tok, const char *what, std::string *error)
{
    const auto v = parseInt(tok);
    if (!v) {
        *error = detail::concat("trace parse error: bad ", what, " '",
                                std::string(tok), "'");
        return std::nullopt;
    }
    return v;
}

/** Record a parse error; returns nullopt for tail-calling. */
template <typename... Args>
std::optional<Workload>
fail(std::string *error, const Args &...args)
{
    *error = detail::concat("trace parse error: ", args...);
    return std::nullopt;
}

/**
 * Ceiling on a reserve() driven by a declared count.  Counts are
 * foreign input on the non-fatal path: an absurd header must not be
 * able to throw length_error/bad_alloc out of the parser (which would
 * kill a daemon thread).  Real elements still grow the vector past
 * this via push_back, bounded by the input size itself.
 */
constexpr std::size_t kMaxDeclaredReserve = std::size_t(1) << 20;

} // anonymous namespace

std::optional<Workload>
tryReadWorkload(std::istream &is, std::string *error,
                const std::string &stop_line)
{
    std::string local_error;
    std::string &err = error != nullptr ? *error : local_error;

    std::string name = "unnamed";
    std::size_t levels = 0;
    std::vector<FunctionProfile> funcs;
    std::vector<FuncId> calls;
    std::size_t expected_calls = 0;
    bool in_calls = false;

    std::string raw;
    while (std::getline(is, raw)) {
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        if (!stop_line.empty() && line == stop_line)
            break;

        std::istringstream ls(line);
        if (in_calls) {
            std::string tok;
            while (ls >> tok) {
                const auto id = tryInt(tok, "call function id", &err);
                if (!id)
                    return std::nullopt;
                calls.push_back(static_cast<FuncId>(*id));
            }
            if (calls.size() >= expected_calls)
                in_calls = false;
            continue;
        }

        std::string key;
        ls >> key;
        if (key == "workload") {
            ls >> name;
        } else if (key == "levels") {
            std::string tok;
            ls >> tok;
            const auto v = tryInt(tok, "level count", &err);
            if (!v)
                return std::nullopt;
            if (*v < 0)
                return fail(&err, "negative level count ", *v);
            levels = static_cast<std::size_t>(*v);
        } else if (key == "func") {
            std::string id_tok, fname, size_tok;
            ls >> id_tok >> fname >> size_tok;
            const auto id = tryInt(id_tok, "function id", &err);
            if (!id)
                return std::nullopt;
            if (static_cast<std::size_t>(*id) != funcs.size())
                return fail(&err, "function ids must be dense and in "
                            "order (got ", *id, ", expected ",
                            funcs.size(), ")");
            const auto size = tryInt(size_tok, "function size", &err);
            if (!size)
                return std::nullopt;
            if (*size < 0)
                return fail(&err, "negative size for function '",
                            fname, "'");
            std::vector<LevelCosts> lcs;
            std::string c_tok, e_tok;
            while (ls >> c_tok >> e_tok) {
                const auto c = tryInt(c_tok, "compile time", &err);
                if (!c)
                    return std::nullopt;
                const auto e = tryInt(e_tok, "execution time", &err);
                if (!e)
                    return std::nullopt;
                lcs.push_back({*c, *e});
            }
            if (lcs.empty())
                return fail(&err, "function '", fname,
                            "' has no level costs");
            if (levels != 0 && lcs.size() > levels)
                return fail(&err, "function '", fname,
                            "' declares more levels than header");
            if (!FunctionProfile::levelsMonotonic(lcs))
                return fail(&err, "function '", fname,
                            "' violates level monotonicity");
            funcs.emplace_back(fname,
                               static_cast<std::uint32_t>(*size),
                               std::move(lcs));
        } else if (key == "calls") {
            std::string tok;
            ls >> tok;
            const auto v = tryInt(tok, "call count", &err);
            if (!v)
                return std::nullopt;
            if (*v < 0)
                return fail(&err, "negative call count ", *v);
            expected_calls = static_cast<std::size_t>(*v);
            calls.reserve(
                std::min(expected_calls, kMaxDeclaredReserve));
            in_calls = expected_calls > 0;
        } else {
            return fail(&err, "unknown directive '", key, "'");
        }
    }

    if (calls.size() != expected_calls)
        return fail(&err, "expected ", expected_calls,
                    " calls, found ", calls.size());
    // The Workload constructor panics on out-of-range call ids —
    // appropriate for algorithm code, not for foreign input, so the
    // range check happens here on the non-fatal path.
    for (std::size_t i = 0; i < calls.size(); ++i) {
        if (calls[i] >= funcs.size())
            return fail(&err, "call #", i,
                        " references unknown function ", calls[i]);
    }
    return Workload(name, std::move(funcs), std::move(calls));
}

Workload
readWorkload(std::istream &is)
{
    std::string err;
    auto w = tryReadWorkload(is, &err);
    if (!w)
        JITSCHED_FATAL(err);
    return *std::move(w);
}

Workload
readWorkloadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        JITSCHED_FATAL("cannot open '", path, "' for reading");
    return readWorkload(is);
}

} // namespace jitsched
