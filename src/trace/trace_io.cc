#include "trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/logging.hh"
#include "support/strutil.hh"

namespace jitsched {

void
writeWorkload(std::ostream &os, const Workload &w)
{
    os << "# jitsched workload trace\n";
    os << "workload " << w.name() << "\n";
    os << "levels " << w.maxLevels() << "\n";
    for (std::size_t i = 0; i < w.numFunctions(); ++i) {
        const auto &prof = w.function(static_cast<FuncId>(i));
        os << "func " << i << ' ' << prof.name() << ' ' << prof.size();
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            const auto &lc = prof.level(static_cast<Level>(j));
            os << ' ' << lc.compile << ' ' << lc.exec;
        }
        os << "\n";
    }
    os << "calls " << w.numCalls() << "\n";
    const auto &calls = w.calls();
    for (std::size_t i = 0; i < calls.size(); ++i) {
        os << calls[i];
        os << ((i % 16 == 15 || i + 1 == calls.size()) ? '\n' : ' ');
    }
}

void
writeWorkloadFile(const std::string &path, const Workload &w)
{
    std::ofstream os(path);
    if (!os)
        JITSCHED_FATAL("cannot open '", path, "' for writing");
    writeWorkload(os, w);
    if (!os)
        JITSCHED_FATAL("I/O error while writing '", path, "'");
}

namespace {

/** Strip comments and surrounding whitespace from one line. */
std::string
cleanLine(const std::string &line)
{
    const std::size_t hash = line.find('#');
    const std::string_view body =
        hash == std::string::npos
            ? std::string_view(line)
            : std::string_view(line).substr(0, hash);
    return std::string(trim(body));
}

std::int64_t
requireInt(std::string_view tok, const char *what)
{
    const auto v = parseInt(tok);
    if (!v)
        JITSCHED_FATAL("trace parse error: bad ", what, " '",
                       std::string(tok), "'");
    return *v;
}

} // anonymous namespace

Workload
readWorkload(std::istream &is)
{
    std::string name = "unnamed";
    std::size_t levels = 0;
    std::vector<FunctionProfile> funcs;
    std::vector<FuncId> calls;
    std::size_t expected_calls = 0;
    bool in_calls = false;

    std::string raw;
    while (std::getline(is, raw)) {
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        std::istringstream ls(line);
        if (in_calls) {
            std::string tok;
            while (ls >> tok)
                calls.push_back(static_cast<FuncId>(
                    requireInt(tok, "call function id")));
            if (calls.size() >= expected_calls)
                in_calls = false;
            continue;
        }

        std::string key;
        ls >> key;
        if (key == "workload") {
            ls >> name;
        } else if (key == "levels") {
            std::string tok;
            ls >> tok;
            levels = static_cast<std::size_t>(
                requireInt(tok, "level count"));
        } else if (key == "func") {
            std::string id_tok, fname, size_tok;
            ls >> id_tok >> fname >> size_tok;
            const auto id = static_cast<std::size_t>(
                requireInt(id_tok, "function id"));
            if (id != funcs.size())
                JITSCHED_FATAL("trace parse error: function ids must "
                               "be dense and in order (got ", id,
                               ", expected ", funcs.size(), ")");
            const auto size = static_cast<std::uint32_t>(
                requireInt(size_tok, "function size"));
            std::vector<LevelCosts> lcs;
            std::string c_tok, e_tok;
            while (ls >> c_tok >> e_tok) {
                lcs.push_back({requireInt(c_tok, "compile time"),
                               requireInt(e_tok, "execution time")});
            }
            if (lcs.empty())
                JITSCHED_FATAL("trace parse error: function '", fname,
                               "' has no level costs");
            if (levels != 0 && lcs.size() > levels)
                JITSCHED_FATAL("trace parse error: function '", fname,
                               "' declares more levels than header");
            if (!FunctionProfile::levelsMonotonic(lcs))
                JITSCHED_FATAL("trace parse error: function '", fname,
                               "' violates level monotonicity");
            funcs.emplace_back(fname, size, std::move(lcs));
        } else if (key == "calls") {
            std::string tok;
            ls >> tok;
            expected_calls = static_cast<std::size_t>(
                requireInt(tok, "call count"));
            calls.reserve(expected_calls);
            in_calls = expected_calls > 0;
        } else {
            JITSCHED_FATAL("trace parse error: unknown directive '",
                           key, "'");
        }
    }

    if (calls.size() != expected_calls)
        JITSCHED_FATAL("trace parse error: expected ", expected_calls,
                       " calls, found ", calls.size());
    return Workload(name, std::move(funcs), std::move(calls));
}

Workload
readWorkloadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        JITSCHED_FATAL("cannot open '", path, "' for reading");
    return readWorkload(is);
}

} // namespace jitsched
