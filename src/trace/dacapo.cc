#include "trace/dacapo.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace jitsched {

const std::vector<DacapoSpec> &
dacapoSpecs()
{
    static const std::vector<DacapoSpec> specs = {
        {"antlr", false, 1187, 2403584, 1.6},
        {"bloat", false, 1581, 9423445, 5.0},
        {"eclipse", false, 2194, 467372, 28.4},
        {"fop", false, 1927, 1323119, 1.5},
        {"hsqldb", true, 1006, 8022794, 2.9},
        {"jython", false, 2128, 23655473, 6.7},
        {"luindex", false, 641, 20582610, 6.1},
        {"lusearch", true, 543, 43573214, 3.2},
        {"pmd", false, 1876, 12543579, 3.5},
    };
    return specs;
}

const DacapoSpec &
dacapoSpec(const std::string &name)
{
    for (const auto &spec : dacapoSpecs()) {
        if (spec.name == name)
            return spec;
    }
    JITSCHED_FATAL("unknown DaCapo benchmark '", name, "'");
}

SyntheticConfig
dacapoConfig(const DacapoSpec &spec, std::size_t scale)
{
    if (scale == 0)
        JITSCHED_FATAL("dacapoConfig: scale must be >= 1");

    SyntheticConfig cfg;
    cfg.name = spec.name;
    cfg.numFunctions = spec.numFunctions;
    cfg.numCalls =
        std::max(spec.numFunctions * 4, spec.numCalls / scale);
    cfg.numLevels = 4;

    // The default (warmup-run) time mixes compilation and execution;
    // anchor the level-0-only execution mass slightly above it, scaled
    // with the sequence.
    const double scaled_time =
        spec.defaultTimeSec *
        (static_cast<double>(cfg.numCalls) /
         static_cast<double>(spec.numCalls));
    cfg.targetLevel0ExecTime = static_cast<Tick>(
        scaled_time * 1.1 * static_cast<double>(ticksPerSecond));

    // Keep the compile/execute balance of the full-length run: the
    // trace (and its execution mass) shrank by `scale`, so compile
    // times must too.
    cfg.compileTimeScale =
        static_cast<double>(cfg.numCalls) /
        static_cast<double>(spec.numCalls);

    // Per-benchmark character knobs.  Seeds differ so the workloads
    // are independent draws.
    std::uint64_t seed = 1000;
    for (std::size_t i = 0; i < dacapoSpecs().size(); ++i) {
        if (dacapoSpecs()[i].name == spec.name)
            seed += 7919 * (i + 1);
    }
    cfg.seed = seed;

    if (spec.name == "eclipse") {
        // Few, heavy calls spread over the most functions.
        cfg.numPhases = 10;
        cfg.zipfSkew = 0.65;
        cfg.execLogSigma = 1.6;
    } else if (spec.name == "lusearch" || spec.name == "luindex") {
        // Tens of millions of tiny calls over few, very hot functions.
        cfg.numPhases = 3;
        cfg.zipfSkew = 0.9;
        cfg.sharedFraction = 0.4;
    } else if (spec.name == "hsqldb") {
        cfg.numPhases = 4;
        cfg.zipfSkew = 0.85;
    } else if (spec.name == "jython" || spec.name == "pmd" ||
               spec.name == "bloat") {
        cfg.numPhases = 6;
        cfg.zipfSkew = 0.8;
    } else {
        // antlr, fop: short runs, moderate skew.
        cfg.numPhases = 5;
        cfg.zipfSkew = 0.75;
    }
    return cfg;
}

Workload
makeDacapoWorkload(const std::string &name, std::size_t scale)
{
    return generateSynthetic(dacapoConfig(dacapoSpec(name), scale));
}

std::size_t
benchScaleFromEnv(std::size_t default_scale)
{
    const char *v = std::getenv("JITSCHED_FULL");
    if (v != nullptr && v[0] != '\0' &&
        !(v[0] == '0' && v[1] == '\0'))
        return 1;
    return default_scale;
}

} // namespace jitsched
