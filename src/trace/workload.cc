#include "trace/workload.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

Workload::Workload(std::string name,
                   std::vector<FunctionProfile> functions,
                   std::vector<FuncId> calls)
    : name_(std::move(name)), functions_(std::move(functions)),
      calls_(std::move(calls))
{
    call_counts_.assign(functions_.size(), 0);
    first_call_.assign(functions_.size(), -1);
    first_order_.reserve(functions_.size());

    for (std::size_t i = 0; i < calls_.size(); ++i) {
        const FuncId f = calls_[i];
        if (f >= functions_.size())
            JITSCHED_PANIC("workload '", name_, "': call #", i,
                           " references unknown function ", f);
        if (call_counts_[f] == 0) {
            first_call_[f] = static_cast<std::int64_t>(i);
            first_order_.push_back(f);
        }
        ++call_counts_[f];
    }
}

const FunctionProfile &
Workload::function(FuncId f) const
{
    if (f >= functions_.size())
        JITSCHED_PANIC("workload '", name_, "': function id ", f,
                       " out of range");
    return functions_[f];
}

std::uint64_t
Workload::callCount(FuncId f) const
{
    if (f >= call_counts_.size())
        JITSCHED_PANIC("callCount: function id ", f, " out of range");
    return call_counts_[f];
}

std::int64_t
Workload::firstCallIndex(FuncId f) const
{
    if (f >= first_call_.size())
        JITSCHED_PANIC("firstCallIndex: function id ", f,
                       " out of range");
    return first_call_[f];
}

Tick
Workload::totalExecAtLevel(Level j) const
{
    Tick total = 0;
    for (const FuncId f : calls_) {
        const auto &prof = functions_[f];
        const Level use = std::min<Level>(j, prof.highestLevel());
        total += prof.execTime(use);
    }
    return total;
}

std::size_t
Workload::maxLevels() const
{
    std::size_t m = 0;
    for (const auto &prof : functions_)
        m = std::max(m, prof.numLevels());
    return m;
}

Workload
Workload::restrictLevels(std::size_t n_levels) const
{
    if (n_levels == 0)
        JITSCHED_PANIC("restrictLevels: need at least one level");
    std::vector<FunctionProfile> restricted;
    restricted.reserve(functions_.size());
    for (const auto &prof : functions_) {
        std::vector<LevelCosts> levels;
        const std::size_t keep = std::min(n_levels, prof.numLevels());
        for (std::size_t j = 0; j < keep; ++j)
            levels.push_back(prof.level(static_cast<Level>(j)));
        restricted.emplace_back(prof.name(), prof.size(),
                                std::move(levels));
    }
    return Workload(name_, std::move(restricted), calls_);
}

} // namespace jitsched
