/**
 * @file
 * Per-function compilation/execution cost profile.
 *
 * This is the (c_{i,j}, e_{i,j}) matrix from the paper's Definition 1:
 * for every compilation unit i and optimization level j, the time to
 * compile the unit at that level and the time one invocation takes
 * when running the code produced at that level.  The paper's
 * monotonicity assumptions are enforced as class invariants:
 *
 *   j1 < j2  =>  c(i,j1) <= c(i,j2)  and  e(i,j1) >= e(i,j2)
 */

#ifndef JITSCHED_TRACE_FUNCTION_PROFILE_HH
#define JITSCHED_TRACE_FUNCTION_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"

namespace jitsched {

/** Compilation and per-invocation execution cost at one level. */
struct LevelCosts
{
    Tick compile = 0; ///< time to compile the function at this level
    Tick exec = 0;    ///< time one invocation takes at this level

    bool operator==(const LevelCosts &) const = default;
};

/**
 * Cost profile of one compilation unit (function / method).
 *
 * Levels are indexed 0 (cheapest compile, slowest code) upward. The
 * paper's Jikes RVM setup has 4 levels (baseline + O0/O1/O2); V8 has
 * 2. The profile also carries a nominal code size, which the default
 * cost-benefit model uses for its (deliberately imperfect) estimates.
 */
class FunctionProfile
{
  public:
    FunctionProfile() = default;

    /**
     * @param name human-readable identifier
     * @param size nominal code size (e.g. bytecodes)
     * @param levels per-level costs; must satisfy the monotonicity
     *               invariants (checked, panics otherwise)
     */
    FunctionProfile(std::string name, std::uint32_t size,
                    std::vector<LevelCosts> levels);

    const std::string &name() const { return name_; }
    std::uint32_t size() const { return size_; }

    /** Number of available optimization levels. */
    std::size_t numLevels() const { return levels_.size(); }

    /** Costs at a given level (bounds-checked). */
    const LevelCosts &level(Level j) const;

    /** Compilation time at level j. */
    Tick compileTime(Level j) const { return level(j).compile; }

    /** Per-invocation execution time at level j. */
    Tick execTime(Level j) const { return level(j).exec; }

    /** Highest (deepest-optimizing) level index. */
    Level highestLevel() const;

    /**
     * Most cost-effective level given a call count: the level l
     * minimizing c(l) + n * e(l) (Theorem 1 / Sec. 5.1), using the
     * true profile times. Ties break toward the lower level.
     */
    Level mostCostEffectiveLevel(std::uint64_t n_calls) const;

    /** True if the monotonicity invariants hold. */
    static bool levelsMonotonic(const std::vector<LevelCosts> &levels);

    bool operator==(const FunctionProfile &) const = default;

  private:
    std::string name_;
    std::uint32_t size_ = 0;
    std::vector<LevelCosts> levels_;
};

} // namespace jitsched

#endif // JITSCHED_TRACE_FUNCTION_PROFILE_HH
