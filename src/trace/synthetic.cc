#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace jitsched {

namespace {

/** Round a positive double to a Tick, clamping at 1 ns minimum. */
Tick
toTick(double ns)
{
    const double clamped = std::max(1.0, ns);
    return static_cast<Tick>(std::llround(clamped));
}

void
validate(const SyntheticConfig &cfg)
{
    if (cfg.numFunctions == 0)
        JITSCHED_FATAL("synthetic: numFunctions must be > 0");
    if (cfg.numCalls < cfg.numFunctions)
        JITSCHED_FATAL("synthetic: numCalls (", cfg.numCalls,
                       ") must be >= numFunctions (", cfg.numFunctions,
                       ") so every function can appear");
    if (cfg.numLevels == 0)
        JITSCHED_FATAL("synthetic: numLevels must be > 0");
    if (cfg.compileFactor.size() < cfg.numLevels)
        JITSCHED_FATAL("synthetic: compileFactor needs ",
                       cfg.numLevels, " entries");
    if (cfg.speedupMean.size() < cfg.numLevels)
        JITSCHED_FATAL("synthetic: speedupMean needs ", cfg.numLevels,
                       " entries");
    if (cfg.numPhases == 0)
        JITSCHED_FATAL("synthetic: numPhases must be > 0");
    if (cfg.sharedFraction < 0.0 || cfg.sharedFraction > 1.0)
        JITSCHED_FATAL("synthetic: sharedFraction must be in [0,1]");
    if (cfg.burstiness < 0.0 || cfg.burstiness >= 1.0)
        JITSCHED_FATAL("synthetic: burstiness must be in [0,1)");
    if (cfg.targetLevel0ExecTime <= 0)
        JITSCHED_FATAL("synthetic: targetLevel0ExecTime must be > 0");
    if (cfg.compileTimeScale <= 0.0)
        JITSCHED_FATAL("synthetic: compileTimeScale must be > 0");
    if (cfg.firstCallWindow <= 0.0 || cfg.firstCallWindow > 1.0)
        JITSCHED_FATAL("synthetic: firstCallWindow must be in (0,1]");
}

/**
 * Build the per-phase call sequence.
 *
 * Functions are split into a shared core (hot across the whole run)
 * and per-phase private slices.  Within a phase, Zipf ranks cover the
 * shared core first, then the phase's private functions, so shared
 * functions are the hot ones.  Each private function of the phase is
 * guaranteed at least one call, so first appearances spread over the
 * run the way class loading does.
 */
std::vector<FuncId>
buildCalls(const SyntheticConfig &cfg, Rng &structure_rng,
           Rng &draw_rng)
{
    const std::size_t n = cfg.numFunctions;
    std::vector<FuncId> ids(n);
    for (std::size_t i = 0; i < n; ++i)
        ids[i] = static_cast<FuncId>(i);
    structure_rng.shuffle(ids);

    const auto n_shared = static_cast<std::size_t>(
        std::llround(cfg.sharedFraction * static_cast<double>(n)));
    const std::vector<FuncId> shared(ids.begin(), ids.begin() + n_shared);
    const std::vector<FuncId> rest(ids.begin() + n_shared, ids.end());

    // Split the non-shared functions evenly across phases.
    const std::size_t phases = cfg.numPhases;
    std::vector<std::vector<FuncId>> private_of(phases);
    for (std::size_t i = 0; i < rest.size(); ++i)
        private_of[i * phases / std::max<std::size_t>(rest.size(), 1)]
            .push_back(rest[i]);

    std::vector<FuncId> calls;
    calls.reserve(cfg.numCalls);

    // Cumulative active set: shared + private slices of phases seen so
    // far; the Zipf universe of a phase favors shared, then the
    // current phase's private functions, then older private ones.
    std::vector<FuncId> older_private;

    for (std::size_t p = 0; p < phases; ++p) {
        std::vector<FuncId> universe = shared;
        structure_rng.shuffle(universe);
        std::vector<FuncId> cur = private_of[p];
        structure_rng.shuffle(cur);
        universe.insert(universe.end(), cur.begin(), cur.end());
        // A cool tail of previously seen private functions.
        std::vector<FuncId> old_tail = older_private;
        structure_rng.shuffle(old_tail);
        universe.insert(universe.end(), old_tail.begin(), old_tail.end());

        const std::size_t begin = cfg.numCalls * p / phases;
        const std::size_t end = cfg.numCalls * (p + 1) / phases;
        const std::size_t len = end - begin;
        if (universe.empty() || len == 0)
            continue;

        ZipfSampler zipf(universe.size(), cfg.zipfSkew);
        std::vector<FuncId> phase_calls;
        phase_calls.reserve(len);
        FuncId prev = universe[0];
        while (phase_calls.size() < len) {
            const FuncId f = universe[zipf.sample(draw_rng)];
            // Bursty locality: short runs of the same callee.
            const std::uint32_t burst = draw_rng.nextBurst(
                cfg.burstiness,
                static_cast<std::uint32_t>(len - phase_calls.size()));
            for (std::uint32_t b = 0;
                 b < burst && phase_calls.size() < len; ++b)
                phase_calls.push_back(f);
            prev = f;
        }
        (void)prev;

        // Guarantee this phase's private functions all appear, so the
        // workload's function count matches the configuration, and
        // cluster those first appearances near the phase start the
        // way class loading does.  Distinct buckets keep the injected
        // calls from overwriting each other.
        if (!cur.empty() && len >= cur.size()) {
            const auto window = std::max<std::size_t>(
                cur.size(),
                static_cast<std::size_t>(cfg.firstCallWindow *
                                         static_cast<double>(len)));
            const std::size_t bucket =
                std::max<std::size_t>(window / cur.size(), 1);
            for (std::size_t i = 0; i < cur.size(); ++i) {
                std::size_t slot =
                    i * bucket +
                    static_cast<std::size_t>(
                        draw_rng.nextBelow(bucket));
                slot = std::min(slot, len - 1);
                phase_calls[slot] = cur[i];
            }
        }

        calls.insert(calls.end(), phase_calls.begin(),
                     phase_calls.end());
        older_private.insert(older_private.end(), cur.begin(),
                             cur.end());
    }

    // Shared functions might still be missing if sharedFraction is
    // large and the sequence short; force-inject them near the start.
    std::vector<bool> seen(n, false);
    for (const FuncId f : calls)
        seen[f] = true;
    std::size_t slot = 1;
    for (const FuncId f : ids) {
        if (!seen[f] && slot < calls.size()) {
            calls[slot] = f;
            slot += 2;
        }
    }
    return calls;
}

} // anonymous namespace

Workload
generateSynthetic(const SyntheticConfig &cfg)
{
    validate(cfg);
    Rng rng(cfg.seed);

    // With a dedicated sequence seed, only the dynamic draws come
    // from it; passing the same engine twice reproduces the single-
    // stream behaviour exactly.
    Rng seq_rng(cfg.sequenceSeed);
    Rng &draw_rng = cfg.sequenceSeed != 0 ? seq_rng : rng;
    std::vector<FuncId> calls = buildCalls(cfg, rng, draw_rng);

    // Per-function call counts (needed to scale execution times).
    std::vector<std::uint64_t> counts(cfg.numFunctions, 0);
    for (const FuncId f : calls)
        ++counts[f];

    // Draw raw per-function level-0 invocation costs, then scale the
    // whole set so the total level-0 execution time hits the target.
    std::vector<double> raw_exec(cfg.numFunctions);
    double total_raw = 0.0;
    for (std::size_t i = 0; i < cfg.numFunctions; ++i) {
        raw_exec[i] = rng.nextLogNormal(0.0, cfg.execLogSigma);
        total_raw += raw_exec[i] * static_cast<double>(counts[i]);
    }
    const double exec_scale =
        static_cast<double>(cfg.targetLevel0ExecTime) /
        std::max(total_raw, 1.0);

    std::vector<FunctionProfile> funcs;
    funcs.reserve(cfg.numFunctions);
    for (std::size_t i = 0; i < cfg.numFunctions; ++i) {
        const double size_d =
            rng.nextLogNormal(cfg.sizeLogMean, cfg.sizeLogSigma);
        const auto size = static_cast<std::uint32_t>(
            std::max(8.0, std::min(size_d, 2.0e6)));

        // Per-function speedups, forced non-decreasing over levels.
        std::vector<double> speedup(cfg.numLevels);
        for (std::size_t j = 0; j < cfg.numLevels; ++j) {
            const double mean = cfg.speedupMean[j];
            speedup[j] = j == 0
                             ? 1.0
                             : 1.0 + (mean - 1.0) *
                                   rng.nextLogNormal(0.0,
                                                     cfg.speedupSigma);
        }
        std::sort(speedup.begin(), speedup.end());

        const double e0 = raw_exec[i] * exec_scale;
        const double c_base =
            static_cast<double>(size) * cfg.compileNsPerByte *
            cfg.compileTimeScale *
            rng.nextLogNormal(0.0, cfg.compileJitterSigma);

        std::vector<LevelCosts> levels(cfg.numLevels);
        for (std::size_t j = 0; j < cfg.numLevels; ++j) {
            const double c = c_base * cfg.compileFactor[j] *
                             rng.nextLogNormal(0.0,
                                               cfg.compileJitterSigma / 2);
            levels[j].compile = toTick(c);
            levels[j].exec = toTick(e0 / speedup[j]);
        }
        if (cfg.interpreterLevel0)
            levels[0].compile = 0;

        // Force the paper's monotonicity invariants after jitter.
        for (std::size_t j = 1; j < cfg.numLevels; ++j) {
            levels[j].compile =
                std::max(levels[j].compile, levels[j - 1].compile);
            levels[j].exec = std::min(levels[j].exec,
                                      levels[j - 1].exec);
        }

        funcs.emplace_back("f" + std::to_string(i), size,
                           std::move(levels));
    }

    return Workload(cfg.name, std::move(funcs), std::move(calls));
}

} // namespace jitsched
