/**
 * @file
 * Make-span evaluation of a static compilation schedule.
 *
 * This is the paper's measurement component (Sec. 6.1): "for a given
 * compilation schedule, computes the make-span of a call sequence
 * based on the compilation and execution times of the involved
 * functions, along with the number of cores used for compilation and
 * execution."
 *
 * Model (Sec. 3):
 *  - Compilation events are processed in schedule order on one or
 *    more compile cores (all ready at time 0).
 *  - A single execution thread runs the call sequence in order.  A
 *    call cannot start until its function has been compiled at least
 *    once; the wait is a "bubble".
 *  - A call starting at time t runs the code of the latest compilation
 *    of its function that completed at or before t.
 *  - The make-span is the time from the first compilation (t = 0) to
 *    the end of the last call.
 */

#ifndef JITSCHED_SIM_MAKESPAN_HH
#define JITSCHED_SIM_MAKESPAN_HH

#include <cstdint>
#include <vector>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Simulation knobs. */
struct SimOptions
{
    /** Number of compilation cores (Sec. 6.2.3 studies 1..16). */
    std::size_t compileCores = 1;

    /**
     * Per-invocation execution-time variation (Sec. 8 / Assumption
     * 1 discussion): each call's duration is multiplied by a
     * deterministic mean-one log-normal factor of this sigma.  The
     * profile's e(f,j) stays the *average* per-call time — exactly
     * the quantity the paper's analysis uses — while individual
     * calls vary the way real invocations do (parameters, contexts).
     * 0 disables the jitter.
     */
    double execJitterSigma = 0.0;

    /** Seed of the per-call jitter draws. */
    std::uint64_t jitterSeed = 1;
};

/** Everything the simulator measures for one run. */
struct SimResult
{
    /** Start of first compilation to end of last call. */
    Tick makespan = 0;

    /** Completion time of the last call. */
    Tick execEnd = 0;

    /** Completion time of the last compilation event. */
    Tick compileEnd = 0;

    /** Total execution-thread waiting time. */
    Tick totalBubble = 0;

    /** Number of calls that had to wait. */
    std::uint64_t bubbleCount = 0;

    /** Sum of call execution times actually incurred. */
    Tick totalExec = 0;

    /** Sum of compile times across all events. */
    Tick totalCompile = 0;

    /** Calls executed per optimization level. */
    std::vector<std::uint64_t> callsAtLevel;
};

/**
 * Observer hook for per-call detail, used by the IAR refinement steps
 * and by tests that inspect the timeline.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** A schedule event finished compiling. */
    virtual void
    onCompiled(std::size_t event_index, const CompileEvent &ev,
               Tick completion)
    {
        (void)event_index;
        (void)ev;
        (void)completion;
    }

    /** A call executed. */
    virtual void
    onCall(std::size_t call_index, FuncId f, Tick start, Tick duration,
           Level level_used)
    {
        (void)call_index;
        (void)f;
        (void)start;
        (void)duration;
        (void)level_used;
    }
};

/**
 * Evaluate a schedule.  The schedule must be valid for the workload
 * (panics otherwise — callers are algorithm code, not users).
 */
SimResult simulate(const Workload &w, const Schedule &s,
                   const SimOptions &opts = {});

/** Evaluate a schedule while streaming per-event detail. */
SimResult simulate(const Workload &w, const Schedule &s,
                   const SimOptions &opts, SimObserver &observer);

} // namespace jitsched

#endif // JITSCHED_SIM_MAKESPAN_HH
