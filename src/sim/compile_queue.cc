#include "sim/compile_queue.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

CompileQueue::CompileQueue(std::size_t num_cores)
{
    if (num_cores == 0)
        JITSCHED_PANIC("CompileQueue needs at least one core");
    cores_.assign(num_cores, 0);
}

Tick
CompileQueue::submit(Tick arrival, Tick duration)
{
    if (arrival < last_arrival_)
        JITSCHED_PANIC("CompileQueue: arrivals must be non-decreasing "
                       "(got ", arrival, " after ", last_arrival_, ")");
    if (duration < 0)
        JITSCHED_PANIC("CompileQueue: negative duration ", duration);
    last_arrival_ = arrival;

    // FIFO dispatch: this job goes to the earliest-free core.
    auto it = std::min_element(cores_.begin(), cores_.end());
    const Tick start = std::max(*it, arrival);
    const Tick completion = start + duration;
    *it = completion;

    busy_ += duration;
    last_completion_ = completion;
    ++job_count_;
    return completion;
}

Tick
CompileQueue::allDone() const
{
    Tick done = 0;
    for (const Tick t : cores_)
        done = std::max(done, t);
    return done;
}

void
CompileQueue::reset()
{
    std::fill(cores_.begin(), cores_.end(), 0);
    last_arrival_ = 0;
    last_completion_ = 0;
    busy_ = 0;
    job_count_ = 0;
}

} // namespace jitsched
