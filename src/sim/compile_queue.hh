/**
 * @file
 * Multi-core compilation engine.
 *
 * Models the JIT's compilation side: a FIFO queue of compilation
 * requests served by one or more compiler threads, each pinned to its
 * own core.  Requests are taken strictly in queue order (like the
 * Jikes RVM compilation queue and the concurrent-JIT extension of
 * Sec. 6.2.3); a request starts on the earliest-free core, no earlier
 * than its arrival time.
 */

#ifndef JITSCHED_SIM_COMPILE_QUEUE_HH
#define JITSCHED_SIM_COMPILE_QUEUE_HH

#include <cstddef>
#include <vector>

#include "support/types.hh"

namespace jitsched {

/**
 * Completion-time engine for an ordered stream of compile jobs.
 *
 * Deterministic and incremental: jobs may be submitted one at a time
 * with non-decreasing arrival times (online policies discover work as
 * execution progresses), or all at once with arrival 0 (static
 * schedules).
 */
class CompileQueue
{
  public:
    /** @param num_cores number of compiler threads/cores (>= 1). */
    explicit CompileQueue(std::size_t num_cores = 1);

    /**
     * Submit the next job in queue order.
     *
     * @param arrival time the request was enqueued; must be
     *        non-decreasing across calls (panics otherwise)
     * @param duration compile time of the job
     * @return completion time of the job
     */
    Tick submit(Tick arrival, Tick duration);

    /** Completion time of the most recently completed-last job. */
    Tick lastCompletion() const { return last_completion_; }

    /** Time at which all submitted jobs have finished. */
    Tick allDone() const;

    /** Number of jobs submitted so far. */
    std::size_t jobCount() const { return job_count_; }

    /** Total busy time across all cores. */
    Tick busyTime() const { return busy_; }

    std::size_t numCores() const { return cores_.size(); }

    /** Forget all jobs; keep the core count. */
    void reset();

  private:
    std::vector<Tick> cores_; ///< per-core free time (min is next)
    Tick last_arrival_ = 0;
    Tick last_completion_ = 0;
    Tick busy_ = 0;
    std::size_t job_count_ = 0;
};

} // namespace jitsched

#endif // JITSCHED_SIM_COMPILE_QUEUE_HH
