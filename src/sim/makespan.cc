#include "sim/makespan.hh"

#include <algorithm>
#include <cmath>

#include "sim/compile_queue.hh"
#include "support/logging.hh"

namespace jitsched {

namespace {

/** One compiled version of a function, ready at `completion`. */
struct Version
{
    Tick completion;
    Level level;
};

/** SplitMix64 finalizer, used to hash per-call jitter draws. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Deterministic mean-one log-normal factor for one call: hash the
 * (seed, call index) pair into two uniforms, Box-Muller them into a
 * Gaussian, and exponentiate with the -sigma^2/2 mean correction.
 */
double
jitterFactor(std::uint64_t seed, std::uint64_t call_index,
             double sigma)
{
    const std::uint64_t x =
        seed ^ (call_index * 0x9e3779b97f4a7c15ull +
                0xd1b54a32d192ed03ull);
    const std::uint64_t a = mix64(x);
    const std::uint64_t b = mix64(x + 0x9e3779b97f4a7c15ull);
    const double u1 =
        (static_cast<double>(a >> 11) + 1.0) * 0x1.0p-53; // (0,1]
    const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
    const double g =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::exp(sigma * g - 0.5 * sigma * sigma);
}

class NullObserver : public SimObserver
{
};

SimResult
run(const Workload &w, const Schedule &s, const SimOptions &opts,
    SimObserver &observer)
{
    std::string err;
    if (!s.validate(w, &err))
        JITSCHED_PANIC("simulate: invalid schedule for '", w.name(),
                       "': ", err);

    SimResult res;
    res.callsAtLevel.assign(w.maxLevels(), 0);

    // --- Compilation side: schedule events in order on the cores.
    //
    // Per function we record the version list sorted by completion
    // time; levels strictly increase per function, so later versions
    // are both later-completing and deeper-optimized.
    CompileQueue queue(opts.compileCores);
    std::vector<std::vector<Version>> versions(w.numFunctions());
    const auto &events = s.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const CompileEvent &ev = events[i];
        const Tick dur = w.function(ev.func).compileTime(ev.level);
        const Tick done = queue.submit(0, dur);
        versions[ev.func].push_back({done, ev.level});
        observer.onCompiled(i, ev, done);
    }
    res.compileEnd = queue.allDone();
    res.totalCompile = queue.busyTime();

    // --- Execution side: one thread, calls in order.
    //
    // next_version[f] points at the version the previous call of f
    // used; it only moves forward because call start times are
    // non-decreasing and per-function completions are sorted.
    std::vector<std::uint32_t> cur_version(w.numFunctions(), 0);
    Tick now = 0;
    const auto &calls = w.calls();
    for (std::size_t i = 0; i < calls.size(); ++i) {
        const FuncId f = calls[i];
        const auto &vers = versions[f];
        const Tick first_ready = vers.front().completion;
        const Tick start = std::max(now, first_ready);
        if (start > now) {
            res.totalBubble += start - now;
            ++res.bubbleCount;
        }

        // Latest compilation completed at or before `start` wins.
        std::uint32_t v = cur_version[f];
        while (v + 1 < vers.size() && vers[v + 1].completion <= start)
            ++v;
        cur_version[f] = v;

        const Level level = vers[v].level;
        Tick dur = w.function(f).execTime(level);
        if (opts.execJitterSigma > 0.0) {
            const double jittered =
                static_cast<double>(dur) *
                jitterFactor(opts.jitterSeed, i,
                             opts.execJitterSigma);
            dur = std::max<Tick>(
                1, static_cast<Tick>(std::llround(jittered)));
        }
        observer.onCall(i, f, start, dur, level);
        now = start + dur;
        res.totalExec += dur;
        ++res.callsAtLevel[level];
    }

    res.execEnd = now;
    res.makespan = res.execEnd;
    return res;
}

} // anonymous namespace

SimResult
simulate(const Workload &w, const Schedule &s, const SimOptions &opts)
{
    NullObserver observer;
    return run(w, s, opts, observer);
}

SimResult
simulate(const Workload &w, const Schedule &s, const SimOptions &opts,
         SimObserver &observer)
{
    return run(w, s, opts, observer);
}

} // namespace jitsched
