#include "sim/multithread.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

MtSimResult
simulateMt(const Workload &w,
           const std::vector<std::vector<FuncId>> &thread_calls,
           const Schedule &s, const SimOptions &opts)
{
    if (thread_calls.empty())
        JITSCHED_FATAL("simulateMt: need at least one thread");

    // Validate against the union of the threads' calls.
    const Workload merged = mergeThreads(w, thread_calls);
    std::string err;
    if (!s.validate(merged, &err))
        JITSCHED_PANIC("simulateMt: invalid schedule: ", err);

    MtSimResult out;
    for (const auto &calls : thread_calls) {
        // Each thread sees the same shared code cache (the same
        // compile timeline); with a static schedule its execution
        // is independent of the other threads.
        const Workload view("thread", w.functions(), calls);
        // Functions this thread never calls need no compile; the
        // schedule may still include them — validation against the
        // merged workload above covers the real requirement, and
        // per-thread validation inside simulate() only needs the
        // thread's own functions, which are a subset.
        SimResult r = simulate(view, s, opts);
        out.makespan = std::max(out.makespan, r.execEnd);
        out.totalBubble += r.totalBubble;
        out.totalExec += r.totalExec;
        out.threads.push_back(std::move(r));
    }
    return out;
}

std::vector<std::vector<FuncId>>
splitTrace(const std::vector<FuncId> &calls, std::size_t n_threads,
           Rng &rng)
{
    if (n_threads == 0)
        JITSCHED_FATAL("splitTrace: need at least one thread");
    std::vector<std::vector<FuncId>> threads(n_threads);
    std::size_t i = 0;
    while (i < calls.size()) {
        // One burst of identical consecutive calls goes to one
        // thread, keeping the temporal locality the generator built.
        std::size_t j = i + 1;
        while (j < calls.size() && calls[j] == calls[i])
            ++j;
        const std::size_t t =
            static_cast<std::size_t>(rng.nextBelow(n_threads));
        threads[t].insert(threads[t].end(), calls.begin() + i,
                          calls.begin() + j);
        i = j;
    }
    return threads;
}

Workload
mergeThreads(const Workload &w,
             const std::vector<std::vector<FuncId>> &thread_calls)
{
    std::vector<FuncId> merged;
    std::size_t total = 0;
    for (const auto &calls : thread_calls)
        total += calls.size();
    merged.reserve(total);
    // Round-robin interleave so first appearances roughly respect
    // every thread's order, like the paper's profiler output merge.
    std::vector<std::size_t> cursor(thread_calls.size(), 0);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::size_t t = 0; t < thread_calls.size(); ++t) {
            if (cursor[t] < thread_calls[t].size()) {
                merged.push_back(thread_calls[t][cursor[t]++]);
                progressed = true;
            }
        }
    }
    return Workload(w.name() + "-merged", w.functions(),
                    std::move(merged));
}

} // namespace jitsched
