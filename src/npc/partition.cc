#include "npc/partition.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

std::uint64_t
PartitionInstance::total() const
{
    std::uint64_t s = 0;
    for (const std::uint64_t v : values)
        s += v;
    return s;
}

std::optional<std::vector<std::size_t>>
solvePartition(const PartitionInstance &inst)
{
    const std::uint64_t total = inst.total();
    if (total % 2 != 0)
        return std::nullopt;
    const std::uint64_t target = total / 2;

    // reachable[s] = index of the last value used to first reach sum
    // s (or -1 for "unreached", -2 for the empty sum).
    std::vector<std::int64_t> reach(target + 1, -1);
    reach[0] = -2;
    for (std::size_t i = 0; i < inst.values.size(); ++i) {
        const std::uint64_t v = inst.values[i];
        if (v > target)
            continue;
        // Descend so each value is used at most once.
        for (std::uint64_t s = target; s >= v; --s) {
            if (reach[s] == -1 && reach[s - v] != -1 &&
                // Disallow reusing item i on the same pass: the
                // predecessor must have been set before this item.
                reach[s - v] != static_cast<std::int64_t>(i)) {
                reach[s] = static_cast<std::int64_t>(i);
            }
            if (s == 0)
                break;
        }
    }
    if (reach[target] == -1)
        return std::nullopt;

    // Reconstruct by walking predecessors.
    std::vector<std::size_t> subset;
    std::uint64_t s = target;
    while (s != 0) {
        const std::int64_t i = reach[s];
        if (i < 0)
            JITSCHED_PANIC("partition reconstruction lost its way");
        subset.push_back(static_cast<std::size_t>(i));
        s -= inst.values[static_cast<std::size_t>(i)];
    }
    std::sort(subset.begin(), subset.end());
    return subset;
}

bool
isValidPartition(const PartitionInstance &inst,
                 const std::vector<std::size_t> &subset)
{
    if (inst.total() % 2 != 0)
        return false;
    std::vector<bool> used(inst.values.size(), false);
    std::uint64_t sum = 0;
    for (const std::size_t i : subset) {
        if (i >= inst.values.size() || used[i])
            return false;
        used[i] = true;
        sum += inst.values[i];
    }
    return sum == inst.target();
}

} // namespace jitsched
