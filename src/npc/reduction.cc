#include "npc/reduction.hh"

#include <algorithm>

#include "sim/makespan.hh"
#include "support/logging.hh"

namespace jitsched {

// Time unit note: the reduction uses the paper's abstract units
// directly (1 unit = 1 tick); only relative times matter here.

ReductionInstance
buildReduction(const PartitionInstance &inst)
{
    const std::uint64_t total = inst.total();
    if (total % 2 != 0)
        JITSCHED_FATAL("buildReduction: PARTITION total must be even");
    const auto t = static_cast<Tick>(total / 2);
    const auto n = static_cast<Tick>(inst.values.size());

    ReductionInstance red;
    std::vector<FunctionProfile> funcs;
    std::vector<FuncId> calls;

    // The "first" function: compile 1, execute t + n (both levels).
    red.first = static_cast<FuncId>(funcs.size());
    funcs.emplace_back(
        "first", 1,
        std::vector<LevelCosts>{{1, t + n}, {1, t + n}});
    calls.push_back(red.first);

    // Middle functions, one per value: low level (paper's level 1)
    // compiles in 1 and runs in s_i + 1; high level (paper's level 2)
    // compiles in s_i + 1 and runs in 1.
    for (std::size_t i = 0; i < inst.values.size(); ++i) {
        const auto s = static_cast<Tick>(inst.values[i]);
        const auto id = static_cast<FuncId>(funcs.size());
        red.middle.push_back(id);
        funcs.emplace_back(
            "m" + std::to_string(i), 1,
            std::vector<LevelCosts>{{1, s + 1}, {s + 1, 1}});
        calls.push_back(id);
    }

    // The "last" function: compile t + n, execute 1 (both levels).
    red.last = static_cast<FuncId>(funcs.size());
    funcs.emplace_back(
        "last", 1,
        std::vector<LevelCosts>{{t + n, 1}, {t + n, 1}});
    calls.push_back(red.last);

    red.bound = 2 * (1 + t + n);
    red.workload =
        Workload("partition-reduction", std::move(funcs),
                 std::move(calls));
    return red;
}

Schedule
scheduleFromPartition(const ReductionInstance &red,
                      const std::vector<std::size_t> &subset)
{
    std::vector<bool> in_x(red.middle.size(), false);
    for (const std::size_t i : subset) {
        if (i >= red.middle.size())
            JITSCHED_PANIC("scheduleFromPartition: bad subset index ",
                           i);
        in_x[i] = true;
    }

    Schedule s;
    s.append(red.first, 0);
    // Compile the middles in their execution order; members of X at
    // the low level (cheap compile, slow run), the rest at the high
    // level (costly compile, fast run).
    for (std::size_t i = 0; i < red.middle.size(); ++i)
        s.append(red.middle[i], in_x[i] ? 0 : 1);
    s.append(red.last, 0);
    return s;
}

std::optional<std::vector<std::size_t>>
partitionFromSchedule(const PartitionInstance &inst,
                      const ReductionInstance &red, const Schedule &s)
{
    const SimResult res = simulate(red.workload, s);
    if (res.makespan > red.bound)
        return std::nullopt;

    // The final compiled level of each middle function decides its
    // side; X = the functions left at the low level.
    std::vector<int> final_level(red.workload.numFunctions(), -1);
    for (const CompileEvent &ev : s.events())
        final_level[ev.func] =
            std::max(final_level[ev.func], static_cast<int>(ev.level));

    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < red.middle.size(); ++i) {
        if (final_level[red.middle[i]] == 0)
            subset.push_back(i);
    }
    if (!isValidPartition(inst, subset))
        return std::nullopt;
    return subset;
}

} // namespace jitsched
