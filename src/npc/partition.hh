/**
 * @file
 * The PARTITION problem, source of the paper's NP-completeness
 * reduction (Theorem 2).
 *
 * Given non-negative integers S = {s_1..s_n} with even total 2t, find
 * a subset summing to exactly t.  The pseudo-polynomial DP solver
 * here provides ground truth for verifying the reduction on concrete
 * instances.
 */

#ifndef JITSCHED_NPC_PARTITION_HH
#define JITSCHED_NPC_PARTITION_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace jitsched {

/** A PARTITION instance. */
struct PartitionInstance
{
    std::vector<std::uint64_t> values;

    /** Sum of all values. */
    std::uint64_t total() const;

    /** Half the total; the subset target (total must be even). */
    std::uint64_t target() const { return total() / 2; }
};

/**
 * Solve PARTITION by dynamic programming over achievable sums.
 *
 * @return indices of a subset summing to target(), or nullopt when no
 *         perfect partition exists (including odd totals).
 *
 * Complexity O(n * total) time, O(total) space — fine for the small
 * instances used in tests and benches.
 */
std::optional<std::vector<std::size_t>>
solvePartition(const PartitionInstance &inst);

/** Check that the given index subset sums to the target. */
bool isValidPartition(const PartitionInstance &inst,
                      const std::vector<std::size_t> &subset);

} // namespace jitsched

#endif // JITSCHED_NPC_PARTITION_HH
