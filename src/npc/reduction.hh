/**
 * @file
 * The PARTITION -> OCSP reduction of Theorem 2, built constructively.
 *
 * For a PARTITION instance S = {s_1..s_n} with target t, the paper
 * constructs an OCSP instance with:
 *  - one "middle" function per s_i, with c_i1 = 1, c_i2 = s_i + 1,
 *    e_i1 = s_i + 1, e_i2 = 1;
 *  - a "first" function (compile 1, execute t + n at both levels)
 *    called before the middles;
 *  - a "last" function (compile t + n, execute 1 at both levels)
 *    called after them;
 * each called exactly once.  A schedule with make-span exactly
 * 2(1 + t + n) exists if and only if S has a perfect partition: the
 * functions compiled at level 1 correspond to the subset X.
 *
 * This module builds the instance, converts a partition into the
 * witness schedule, extracts a partition back out of any schedule
 * achieving the bound, and exposes the bound itself — everything a
 * test needs to verify both directions of the proof on concrete
 * instances.
 */

#ifndef JITSCHED_NPC_REDUCTION_HH
#define JITSCHED_NPC_REDUCTION_HH

#include <optional>
#include <vector>

#include "core/schedule.hh"
#include "npc/partition.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {

/** The OCSP instance produced by the reduction. */
struct ReductionInstance
{
    Workload workload;

    /** FuncId of the middle function for values[i]. */
    std::vector<FuncId> middle;

    FuncId first = invalidFuncId;
    FuncId last = invalidFuncId;

    /** The make-span bound 2(1 + t + n) of the theorem. */
    Tick bound = 0;
};

/** Build the OCSP instance for a PARTITION instance. */
ReductionInstance buildReduction(const PartitionInstance &inst);

/**
 * Turn a perfect partition (indices of X) into the witness schedule:
 * first function, then middles in call order — level 1 for members
 * of X, level 2 otherwise — then the last function.
 */
Schedule scheduleFromPartition(const ReductionInstance &red,
                               const std::vector<std::size_t> &subset);

/**
 * Extract a partition from a schedule that achieves the bound: the
 * middle functions compiled (finally) at level 1 form X.
 * @return nullopt if the schedule's make-span exceeds the bound or
 *         the extracted set does not sum to t.
 */
std::optional<std::vector<std::size_t>>
partitionFromSchedule(const PartitionInstance &inst,
                      const ReductionInstance &red, const Schedule &s);

} // namespace jitsched

#endif // JITSCHED_NPC_REDUCTION_HH
