/**
 * @file
 * The standard jitsched instrument set, grouped per subsystem.
 *
 * Each bundle is a struct of references into
 * MetricsRegistry::global(), built once on first use — hot code pays
 * one function-local-static check and then raw striped-atomic adds.
 * Keeping the bundles here (and not in each subsystem) has two
 * payoffs: the full instrument inventory is one file, and
 * registerStandardInstruments() can pre-create every instrument so a
 * STATS snapshot scraped from a fresh daemon already carries the
 * complete, deterministic key set (scripts/check.sh --obs-smoke
 * diffs it against bench/expectations/obs_keys.txt).
 *
 * This header deliberately depends on nothing outside src/obs and
 * src/support; the service layer passes its policy names in as
 * strings.
 */

#ifndef JITSCHED_OBS_INSTRUMENTS_HH
#define JITSCHED_OBS_INSTRUMENTS_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace jitsched {
namespace obs {

/** src/exec — thread pool, eval cache, batch evaluator. */
struct ExecMetrics
{
    Counter &cacheHits;       ///< exec.cache.hits
    Counter &cacheMisses;     ///< exec.cache.misses
    Counter &poolBatches;     ///< exec.pool.batches
    Counter &poolTasks;       ///< exec.pool.tasks
    Counter &poolBusyNs;      ///< exec.pool.busy_ns (batch wall time)
    Gauge &poolConcurrency;   ///< exec.pool.concurrency
    Counter &batchJobs;       ///< exec.batch.jobs
    Histogram &batchSimNs;    ///< exec.batch.sim_ns (per simulate())

    static ExecMetrics &get();
};

/** src/core — the exact solvers and IAR. */
struct SolverMetrics
{
    Counter &astarSearches;       ///< solver.astar.searches
    Counter &astarNodesExpanded;  ///< solver.astar.nodes_expanded
    Counter &astarNodesGenerated; ///< solver.astar.nodes_generated
    Counter &astarNodesPruned;    ///< solver.astar.nodes_pruned
    Counter &astarEvaluations;    ///< solver.astar.evaluations
    Gauge &astarPeakMemoryBytes;  ///< solver.astar.peak_memory_bytes
    Gauge &astarPeakArenaBytes;   ///< solver.astar.peak_arena_bytes

    // Parallel search (core/astar_par.cc).  One bulk update per
    // search from the joined result — workers touch no globals.
    Counter &astarParSearches;  ///< solver.astar_par.searches
    Counter &astarParNodesExpanded; ///< solver.astar_par.nodes_expanded
    Counter &astarParNodesGenerated; ///< solver.astar_par.nodes_generated
    Counter &astarParNodesPruned; ///< solver.astar_par.nodes_pruned
    /** solver.astar_par.nodes_pruned_incumbent */
    Counter &astarParNodesPrunedIncumbent;
    Counter &astarParNodesRouted; ///< solver.astar_par.nodes_routed
    /** solver.astar_par.incumbent_improvements */
    Counter &astarParIncumbentImprovements;
    Counter &astarParEvaluations; ///< solver.astar_par.evaluations
    /** solver.astar_par.peak_memory_bytes */
    Gauge &astarParPeakMemoryBytes;
    /** solver.astar_par.max_inbox_depth */
    Gauge &astarParMaxInboxDepth;
    Gauge &astarParWorkers; ///< solver.astar_par.workers (last run)

    Counter &iarRuns;             ///< solver.iar.runs
    Counter &iarSlackUpgrades;    ///< solver.iar.slack_upgrades
    Counter &iarGapAppends;       ///< solver.iar.gap_appends

    static SolverMetrics &get();
};

/** src/service — server, admission queue, engine. */
struct ServiceMetrics
{
    Counter &connectionsAccepted; ///< service.connections.accepted
    Counter &connectionsDropped;  ///< service.connections.dropped
    Counter &framesServed;        ///< service.frames.served
    Counter &bytesIn;             ///< service.bytes.in
    Counter &bytesOut;            ///< service.bytes.out
    Counter &requestsAccepted;    ///< service.requests.accepted
    Counter &requestsShed;        ///< service.requests.shed
    Counter &requestsExpired;     ///< service.requests.expired
    Counter &requestsProcessed;   ///< service.requests.processed
    Counter &statsRequests;       ///< service.requests.stats
    Counter &pingRequests;        ///< service.requests.ping
    Gauge &queueDepth;            ///< service.queue.depth
    Histogram &queueWaitNs;       ///< service.queue.wait_ns

    // Request-level result cache (service/result_cache.hh).
    Counter &resultCacheHits;      ///< service.result_cache.hits
    Counter &resultCacheMisses;    ///< service.result_cache.misses
    /** service.result_cache.collapsed (followers fed by a leader) */
    Counter &resultCacheCollapsed;
    Counter &resultCacheEvictions; ///< service.result_cache.evictions
    Gauge &resultCacheBytes;       ///< service.result_cache.bytes
    Gauge &resultCacheEntries;     ///< service.result_cache.entries
    /** service.result_cache.snapshot_saves */
    Counter &resultCacheSnapshotSaves;
    /** service.result_cache.snapshot_loads */
    Counter &resultCacheSnapshotLoads;

    static ServiceMetrics &get();

    /**
     * Per-policy solve-latency histogram,
     * `service.solve_ns.<policy>`.  Involves a registry lookup —
     * resolve once per request, not per sample.
     */
    static Histogram &solveNsFor(const std::string &policy);
};

/** src/cluster — router, backend pool, health prober. */
struct ClusterMetrics
{
    Counter &connectionsAccepted; ///< cluster.connections.accepted
    Counter &framesServed;        ///< cluster.frames.served
    Counter &badFrames;           ///< cluster.frames.bad
    Counter &requestsRouted;      ///< cluster.requests.routed
    Counter &requestsSpilled;     ///< cluster.requests.spilled
    Counter &requestsRetried;     ///< cluster.requests.retried
    Counter &requestsHedged;      ///< cluster.requests.hedged
    Counter &requestsFailed;      ///< cluster.requests.failed
    Counter &hedgeWins;           ///< cluster.hedge.wins
    Counter &backendEjections;    ///< cluster.backend.ejections
    Counter &backendReadmissions; ///< cluster.backend.readmissions
    Counter &probesSent;          ///< cluster.probes.sent
    Counter &probesFailed;        ///< cluster.probes.failed
    Counter &pingsServed;         ///< cluster.pings.served
    Counter &statsServed;         ///< cluster.stats.served

    static ClusterMetrics &get();

    /**
     * Per-backend try-latency histogram,
     * `cluster.try_ns.<address:port>`.  Registry lookup — resolve
     * once per exchange, not per sample.
     */
    static Histogram &tryNsFor(const std::string &backend_label);

    /** Per-backend routed-request counter,
     * `cluster.routed_to.<address:port>`. */
    static Counter &routedToFor(const std::string &backend_label);

    /**
     * Per-backend relayed result-cache-hit counter,
     * `cluster.result_cache_hits.<address:port>` — how many responses
     * this backend answered from its result cache (the router reads
     * the relayed frame's stats line).
     */
    static Counter &resultCacheHitsFor(
        const std::string &backend_label);
};

/**
 * Sanitize an arbitrary label (host:port, policy name, anything
 * user-supplied) into a valid instrument-name segment: A-Z is
 * lowercased, [a-z0-9_.-] pass through, every other byte (including
 * ':' and non-ASCII/UTF-8 bytes) becomes '_', leading/trailing '.'
 * become '_' (a segment must compose into a valid dotted name), and
 * an empty label yields "_".  Lossy by design: distinct labels may
 * collide (e.g. "HOST:1" and "host_1"), in which case they share one
 * instrument — acceptable for monitoring, tested in
 * tests/obs/test_instrument_names.cc.
 */
std::string metricSegment(const std::string &label);

/**
 * Pre-create the full standard instrument set (including one solve
 * histogram per name in @p policy_names) so snapshots expose a
 * complete key inventory before any traffic.  Idempotent.
 */
void registerStandardInstruments(
    const std::vector<std::string> &policy_names = {});

/**
 * Pre-create the cluster instrument set (including the per-backend
 * instruments for each label in @p backend_labels).  Separate from
 * registerStandardInstruments so jitschedd's STATS key inventory
 * stays free of router-only keys.  Idempotent.
 */
void registerClusterInstruments(
    const std::vector<std::string> &backend_labels = {});

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_INSTRUMENTS_HH
