#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace jitsched {
namespace obs {

namespace detail {

std::atomic<bool> metricsEnabled{true};

std::size_t
threadStripe()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

namespace {

/** Instrument names are dotted lowercase paths (DESIGN.md 5c). */
bool
validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '-' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

} // anonymous namespace

} // namespace detail

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        JITSCHED_PANIC("Histogram: needs at least one bucket bound");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) !=
            bounds_.end())
        JITSCHED_PANIC("Histogram: bucket bounds must be strictly "
                       "increasing");
    for (auto &cell : cells_) {
        cell.counts =
            std::make_unique<std::atomic<std::uint64_t>[]>(
                bounds_.size() + 1);
        for (std::size_t b = 0; b <= bounds_.size(); ++b)
            cell.counts[b].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(std::int64_t v)
{
    if (!detail::enabled())
        return;
    const std::size_t bucket =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin(); // first bound >= v; bounds_.size() = +inf
    Cell &cell = cells_[detail::threadStripe()];
    cell.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.bounds = bounds_;
    s.counts.assign(bounds_.size() + 1, 0);
    for (const Cell &cell : cells_) {
        s.sum += cell.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b <= bounds_.size(); ++b)
            s.counts[b] +=
                cell.counts[b].load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : s.counts)
        s.count += c;
    return s;
}

const std::vector<std::int64_t> &
latencyNsBounds()
{
    // 1us, 10us, 100us, 1ms, 10ms, 100ms, 1s, 10s — decades, in ns.
    static const std::vector<std::int64_t> bounds{
        1'000,      10'000,        100'000,       1'000'000,
        10'000'000, 100'000'000, 1'000'000'000, 10'000'000'000};
    return bounds;
}

const std::vector<std::int64_t> &
bytesBounds()
{
    // 64 B .. 16 MiB in x16 steps.
    static const std::vector<std::int64_t> bounds{
        64, 1024, 16384, 262144, 4194304, 16777216};
    return bounds;
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name, Kind kind,
                              const std::vector<std::int64_t> *bounds)
{
    if (!detail::validName(name))
        JITSCHED_PANIC("MetricsRegistry: invalid instrument name '",
                       name, "' (want lowercase dotted path)");
    // The instrument is constructed under the registration lock:
    // concurrent first calls for the same name must resolve to one
    // object, never two resets racing on the entry's pointer.
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != kind)
            JITSCHED_PANIC("MetricsRegistry: '", name,
                           "' re-registered as a different "
                           "instrument kind");
        if (kind == Kind::Histogram &&
            it->second.histogram->bounds() != *bounds)
            JITSCHED_PANIC("MetricsRegistry: histogram '", name,
                           "' re-registered with different bounds");
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::Counter:
        entry.counter.reset(new Counter());
        break;
      case Kind::Gauge:
        entry.gauge.reset(new Gauge());
        break;
      case Kind::Histogram:
        entry.histogram.reset(new Histogram(*bounds));
        break;
    }
    return entries_.emplace(name, std::move(entry)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *findOrCreate(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *findOrCreate(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<std::int64_t> &bounds)
{
    return *findOrCreate(name, Kind::Histogram, &bounds).histogram;
}

std::string
MetricsRegistry::snapshotText() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lk(mutex_);
    for (const auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case Kind::Counter:
            os << "counter " << name << ' '
               << entry.counter->value() << '\n';
            break;
          case Kind::Gauge:
            os << "gauge " << name << ' ' << entry.gauge->value()
               << '\n';
            break;
          case Kind::Histogram: {
            const Histogram::Snapshot s = entry.histogram->snapshot();
            os << "histogram " << name << " count " << s.count
               << " sum " << s.sum;
            for (std::size_t b = 0; b < s.bounds.size(); ++b)
                os << " le_" << s.bounds[b] << ' ' << s.counts[b];
            os << " le_inf " << s.counts.back() << '\n';
            break;
          }
        }
    }
    return os.str();
}

namespace {

/** An instrument name as a Prometheus metric name. */
std::string
promName(const std::string &name)
{
    std::string out = "jitsched_";
    for (const char c : name)
        out.push_back(c == '.' || c == '-' ? '_' : c);
    return out;
}

} // anonymous namespace

std::string
MetricsRegistry::snapshotProm() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lk(mutex_);
    for (const auto &[name, entry] : entries_) {
        const std::string pname = promName(name);
        switch (entry.kind) {
          case Kind::Counter:
            os << "# TYPE " << pname << " counter\n"
               << pname << ' ' << entry.counter->value() << '\n';
            break;
          case Kind::Gauge:
            os << "# TYPE " << pname << " gauge\n"
               << pname << ' ' << entry.gauge->value() << '\n';
            break;
          case Kind::Histogram: {
            const Histogram::Snapshot s = entry.histogram->snapshot();
            os << "# TYPE " << pname << " histogram\n";
            // The exposition format wants cumulative bucket counts;
            // the internal snapshot is per-bucket.
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < s.bounds.size(); ++b) {
                cumulative += s.counts[b];
                os << pname << "_bucket{le=\"" << s.bounds[b]
                   << "\"} " << cumulative << '\n';
            }
            cumulative += s.counts.back();
            os << pname << "_bucket{le=\"+Inf\"} " << cumulative
               << '\n';
            os << pname << "_sum " << s.sum << '\n';
            os << pname << "_count " << s.count << '\n';
            break;
          }
        }
    }
    return os.str();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

bool
MetricsRegistry::setEnabled(bool enabled)
{
    return detail::metricsEnabled.exchange(enabled);
}

} // namespace obs
} // namespace jitsched
