/**
 * @file
 * jitsched-trace-check — validator for Chrome trace-event JSON.
 *
 * Thin wrapper over obs/trace_check.hh: reads the file, runs
 * checkTraceText() (structural checks, 'B'/'E' pairing, strict 'X'
 * nesting per (pid, tid) track), exit 0 when valid, exit 1 with a
 * diagnostic otherwise.  The smoke gates (scripts/check.sh
 * --obs-smoke and --trace-smoke) run it over jitsched-cli
 * --trace-out output and live daemon traces.
 *
 * Usage: jitsched-trace-check <trace.json>
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_check.hh"

namespace {

int
complain(const std::string &path, const std::string &msg)
{
    std::fprintf(stderr, "jitsched-trace-check: %s: %s\n",
                 path.c_str(), msg.c_str());
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: jitsched-trace-check <trace.json>\n");
        return 2;
    }
    const std::string path = argv[1];
    std::ifstream in(path);
    if (!in)
        return complain(path, "cannot open file");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    jitsched::obs::TraceCheckResult result;
    std::string error;
    if (!jitsched::obs::checkTraceText(buffer.str(), &result, &error))
        return complain(path, error);

    std::printf("jitsched-trace-check: %s: ok (%zu events, %zu "
                "slices)\n",
                path.c_str(), result.events, result.slices);
    return 0;
}
