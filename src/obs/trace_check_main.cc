/**
 * @file
 * jitsched-trace-check — tiny validator for Chrome trace-event JSON.
 *
 * Parses the whole document with a minimal recursive-descent JSON
 * parser (no external dependency) and checks the structure Perfetto
 * and chrome://tracing rely on: a top-level object carrying a
 * `traceEvents` array whose elements are objects with `ph`, `pid`,
 * `tid` and `name`, where every complete ('X') slice also carries
 * numeric `ts` and `dur`.  Exit 0 when valid; exit 1 with a
 * diagnostic otherwise.  The smoke gate (scripts/check.sh
 * --obs-smoke) runs it over jitsched-cli --trace-out output.
 *
 * Usage: jitsched-trace-check <trace.json>
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

/** A parsed JSON value — just enough structure for the checks. */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    std::string str;   ///< String payload
    double num = 0.0;  ///< Number payload
    std::vector<Value> array;
    std::map<std::string, Value> object;

    const Value *
    field(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value *out, std::string *error)
    {
        if (!value(out, error))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail(error, "trailing data after JSON document");
        return true;
    }

  private:
    bool
    fail(std::string *error, const std::string &msg)
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n')
                ++line;
        *error = msg + " (line " + std::to_string(line) + ")";
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::string *error)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos_)
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return fail(error, std::string("bad literal, "
                                               "expected '") +
                                       word + "'");
        return true;
    }

    bool
    string(std::string *out, std::string *error)
    {
        if (!consume('"'))
            return fail(error, "expected string");
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail(error, "raw control character in string");
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail(error, "truncated \\u escape");
                for (int i = 0; i < 4; ++i)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i])))
                        return fail(error, "bad \\u escape");
                // The checker only validates; the decoded code
                // point's exact bytes do not matter here.
                out->push_back('?');
                pos_ += 4;
                break;
              }
              default:
                return fail(error, "unknown escape in string");
            }
        }
        return fail(error, "unterminated string");
    }

    bool
    value(Value *out, std::string *error)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->type = Value::Type::Object;
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                if (!string(&key, error))
                    return false;
                if (!consume(':'))
                    return fail(error, "expected ':' in object");
                Value v;
                if (!value(&v, error))
                    return false;
                out->object.emplace(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail(error, "expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out->type = Value::Type::Array;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                Value v;
                if (!value(&v, error))
                    return false;
                out->array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail(error, "expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out->type = Value::Type::String;
            return string(&out->str, error);
        }
        if (c == 't') {
            out->type = Value::Type::Bool;
            out->num = 1;
            return literal("true", error);
        }
        if (c == 'f') {
            out->type = Value::Type::Bool;
            return literal("false", error);
        }
        if (c == 'n')
            return literal("null", error);
        // Number.
        const std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && c == '-'))
            return fail(error, "unexpected character");
        out->type = Value::Type::Number;
        try {
            out->num = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail(error, "malformed number");
        }
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
isNumber(const Value *v)
{
    return v != nullptr && v->type == Value::Type::Number;
}

bool
isString(const Value *v)
{
    return v != nullptr && v->type == Value::Type::String;
}

int
complain(const std::string &path, const std::string &msg)
{
    std::fprintf(stderr, "jitsched-trace-check: %s: %s\n",
                 path.c_str(), msg.c_str());
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: jitsched-trace-check <trace.json>\n");
        return 2;
    }
    const std::string path = argv[1];
    std::ifstream in(path);
    if (!in)
        return complain(path, "cannot open file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    Value doc;
    std::string error;
    if (!Parser(text).parse(&doc, &error))
        return complain(path, "invalid JSON: " + error);
    if (doc.type != Value::Type::Object)
        return complain(path, "top level is not an object");
    const Value *events = doc.field("traceEvents");
    if (events == nullptr || events->type != Value::Type::Array)
        return complain(path, "missing 'traceEvents' array");

    std::size_t slices = 0;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const Value &ev = events->array[i];
        const std::string where =
            "traceEvents[" + std::to_string(i) + "]";
        if (ev.type != Value::Type::Object)
            return complain(path, where + " is not an object");
        const Value *ph = ev.field("ph");
        if (!isString(ph) || ph->str.size() != 1)
            return complain(path, where + " has no one-char 'ph'");
        if (!isString(ev.field("name")))
            return complain(path, where + " has no 'name'");
        if (!isNumber(ev.field("pid")) || !isNumber(ev.field("tid")))
            return complain(path,
                            where + " needs numeric 'pid'/'tid'");
        if (ph->str == "X") {
            const Value *ts = ev.field("ts");
            const Value *dur = ev.field("dur");
            if (!isNumber(ts) || !isNumber(dur))
                return complain(
                    path, where + " ('X') needs numeric 'ts'/'dur'");
            if (dur->num < 0)
                return complain(path, where + " has negative 'dur'");
            ++slices;
        }
    }
    if (slices == 0)
        return complain(path, "trace contains no 'X' slices");

    std::printf("jitsched-trace-check: %s: ok (%zu events, %zu "
                "slices)\n",
                path.c_str(), events->array.size(), slices);
    return 0;
}
