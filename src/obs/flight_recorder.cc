#include "obs/flight_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/span.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

namespace jitsched {
namespace obs {

namespace {

void
panicDumpHook()
{
    const std::string dump = FlightRecorder::global().dumpText();
    std::fprintf(stderr,
                 "flight recorder (last %zu of %llu requests):\n%s",
                 FlightRecorder::global().snapshot().size(),
                 static_cast<unsigned long long>(
                     FlightRecorder::global().recorded()),
                 dump.c_str());
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, kStripes)),
      per_stripe_((capacity_ + kStripes - 1) / kStripes)
{
    for (Stripe &stripe : stripes_)
        stripe.slots.resize(per_stripe_);
}

void
FlightRecorder::record(FlightRecord r)
{
    // seq starts at 1 so an empty slot (seq == 0) is recognizable.
    const std::uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    r.seq = seq;
    Stripe &stripe = stripes_[seq % kStripes];
    const std::size_t slot = (seq / kStripes) % per_stripe_;
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.slots[slot] = std::move(r);
}

std::vector<FlightRecord>
FlightRecorder::snapshot() const
{
    std::vector<FlightRecord> out;
    out.reserve(capacity_);
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        for (const FlightRecord &r : stripe.slots)
            if (r.seq != 0)
                out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string
FlightRecorder::recordLine(const FlightRecord &r)
{
    std::ostringstream os;
    os << "trace " << traceIdHex(r.traceId) << " request "
       << r.requestId << " policy "
       << (r.policy.empty() ? "-" : r.policy) << " status "
       << (r.status.empty() ? "-" : r.status) << " queue-ns "
       << r.queueNs << " solve-ns " << r.solveNs << " bytes "
       << r.bytes << " hops " << r.hops << " cached "
       << (r.cached ? 1 : 0);
    return os.str();
}

std::string
FlightRecorder::dumpText() const
{
    std::string out;
    for (const FlightRecord &r : snapshot()) {
        out += recordLine(r);
        out += '\n';
    }
    return out;
}

void
FlightRecorder::clear()
{
    for (Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        for (FlightRecord &r : stripe.slots)
            r = FlightRecord{};
    }
    seq_.store(0, std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::recorded() const
{
    return seq_.load(std::memory_order_relaxed);
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

void
installPanicDump()
{
    setPanicHook(&panicDumpHook);
}

std::int64_t
parseSlowMsEnv(const char *env)
{
    if (env == nullptr || *env == '\0')
        return -1;
    const auto n = parseInt(trim(env));
    if (!n.has_value() || *n < 0)
        JITSCHED_FATAL("JITSCHED_SLOW_MS must be a non-negative "
                       "integer (milliseconds), got '", env, "'");
    return *n;
}

std::int64_t
slowThresholdNs()
{
    static const std::int64_t ns = [] {
        const std::int64_t ms =
            parseSlowMsEnv(std::getenv("JITSCHED_SLOW_MS"));
        return ms < 0 ? ms : ms * 1000000;
    }();
    return ns;
}

void
noteRequestLatency(std::uint64_t traceId, std::int64_t totalNs,
                   const char *layer)
{
    const std::int64_t threshold = slowThresholdNs();
    if (threshold < 0 || totalNs <= threshold)
        return;
    std::fprintf(stderr,
                 "slow request: trace %s took %lld ms "
                 "(JITSCHED_SLOW_MS=%lld) at %s layer\n%s",
                 traceIdHex(traceId).c_str(),
                 static_cast<long long>(totalNs / 1000000),
                 static_cast<long long>(threshold / 1000000), layer,
                 FlightRecorder::global().dumpText().c_str());
}

} // namespace obs
} // namespace jitsched
