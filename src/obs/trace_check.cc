#include "obs/trace_check.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace jitsched {
namespace obs {

namespace {

/** A parsed JSON value — just enough structure for the checks. */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    std::string str;   ///< String payload
    double num = 0.0;  ///< Number payload
    std::vector<Value> array;
    std::map<std::string, Value> object;

    const Value *
    field(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value *out, std::string *error)
    {
        if (!value(out, error))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail(error, "trailing data after JSON document");
        return true;
    }

  private:
    bool
    fail(std::string *error, const std::string &msg)
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n')
                ++line;
        *error = msg + " (line " + std::to_string(line) + ")";
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::string *error)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos_)
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return fail(error, std::string("bad literal, "
                                               "expected '") +
                                       word + "'");
        return true;
    }

    bool
    string(std::string *out, std::string *error)
    {
        if (!consume('"'))
            return fail(error, "expected string");
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail(error, "raw control character in string");
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail(error, "truncated \\u escape");
                for (int i = 0; i < 4; ++i)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i])))
                        return fail(error, "bad \\u escape");
                // The checker only validates; the decoded code
                // point's exact bytes do not matter here.
                out->push_back('?');
                pos_ += 4;
                break;
              }
              default:
                return fail(error, "unknown escape in string");
            }
        }
        return fail(error, "unterminated string");
    }

    bool
    value(Value *out, std::string *error)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->type = Value::Type::Object;
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                if (!string(&key, error))
                    return false;
                if (!consume(':'))
                    return fail(error, "expected ':' in object");
                Value v;
                if (!value(&v, error))
                    return false;
                out->object.emplace(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail(error, "expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out->type = Value::Type::Array;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                Value v;
                if (!value(&v, error))
                    return false;
                out->array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail(error, "expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out->type = Value::Type::String;
            return string(&out->str, error);
        }
        if (c == 't') {
            out->type = Value::Type::Bool;
            out->num = 1;
            return literal("true", error);
        }
        if (c == 'f') {
            out->type = Value::Type::Bool;
            return literal("false", error);
        }
        if (c == 'n')
            return literal("null", error);
        // Number.
        const std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && c == '-'))
            return fail(error, "unexpected character");
        out->type = Value::Type::Number;
        try {
            out->num = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail(error, "malformed number");
        }
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
isNumber(const Value *v)
{
    return v != nullptr && v->type == Value::Type::Number;
}

bool
isString(const Value *v)
{
    return v != nullptr && v->type == Value::Type::String;
}

bool
fail(std::string *error, std::string msg)
{
    if (error != nullptr)
        *error = std::move(msg);
    return false;
}

/** A track is one (pid, tid) timeline. */
using TrackKey = std::pair<double, double>;

/** One 'X' slice prepared for the nesting check. */
struct SliceInterval
{
    double ts;
    double end;
    std::size_t index; ///< traceEvents index, for diagnostics
};

/**
 * Floating-point slack for boundary comparisons: ts/dur come from
 * exact nanosecond ticks rendered as microsecond decimals, so any
 * representation error is far below a nanosecond (1e-3 us).
 */
constexpr double kEps = 1e-6;

bool
checkSliceNesting(const std::map<TrackKey, std::vector<SliceInterval>>
                      &tracks,
                  std::string *error)
{
    for (const auto &track : tracks) {
        std::vector<SliceInterval> slices = track.second;
        // Earlier start first; on ties the longer slice is the
        // container and must be pushed first.
        std::sort(slices.begin(), slices.end(),
                  [](const SliceInterval &a, const SliceInterval &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.end > b.end;
                  });
        std::vector<const SliceInterval *> stack;
        for (const SliceInterval &s : slices) {
            while (!stack.empty() &&
                   s.ts >= stack.back()->end - kEps)
                stack.pop_back();
            if (!stack.empty() && s.end > stack.back()->end + kEps)
                return fail(
                    error,
                    "traceEvents[" + std::to_string(s.index) +
                        "] partially overlaps traceEvents[" +
                        std::to_string(stack.back()->index) +
                        "] on the same (pid, tid) track — slices "
                        "must nest or be disjoint");
            stack.push_back(&s);
        }
    }
    return true;
}

} // anonymous namespace

bool
checkTraceText(const std::string &text, TraceCheckResult *result,
               std::string *error)
{
    Value doc;
    std::string perror;
    if (!Parser(text).parse(&doc, &perror))
        return fail(error, "invalid JSON: " + perror);
    if (doc.type != Value::Type::Object)
        return fail(error, "top level is not an object");
    const Value *events = doc.field("traceEvents");
    if (events == nullptr || events->type != Value::Type::Array)
        return fail(error, "missing 'traceEvents' array");

    std::size_t slices = 0;
    std::map<TrackKey, std::vector<SliceInterval>> tracks;
    // Per-track stack of open 'B' events: (name, traceEvents index).
    std::map<TrackKey, std::vector<std::pair<std::string, std::size_t>>>
        open;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const Value &ev = events->array[i];
        const std::string where =
            "traceEvents[" + std::to_string(i) + "]";
        if (ev.type != Value::Type::Object)
            return fail(error, where + " is not an object");
        const Value *ph = ev.field("ph");
        if (!isString(ph) || ph->str.size() != 1)
            return fail(error, where + " has no one-char 'ph'");
        if (!isString(ev.field("name")))
            return fail(error, where + " has no 'name'");
        const Value *pid = ev.field("pid");
        const Value *tid = ev.field("tid");
        if (!isNumber(pid) || !isNumber(tid))
            return fail(error, where + " needs numeric 'pid'/'tid'");
        const TrackKey track{pid->num, tid->num};
        if (ph->str == "X") {
            const Value *ts = ev.field("ts");
            const Value *dur = ev.field("dur");
            if (!isNumber(ts) || !isNumber(dur))
                return fail(
                    error, where + " ('X') needs numeric 'ts'/'dur'");
            if (dur->num < 0)
                return fail(error, where + " has negative 'dur'");
            tracks[track].push_back(
                SliceInterval{ts->num, ts->num + dur->num, i});
            ++slices;
        } else if (ph->str == "B") {
            if (!isNumber(ev.field("ts")))
                return fail(error,
                            where + " ('B') needs numeric 'ts'");
            open[track].emplace_back(ev.field("name")->str, i);
        } else if (ph->str == "E") {
            if (!isNumber(ev.field("ts")))
                return fail(error,
                            where + " ('E') needs numeric 'ts'");
            auto &stack = open[track];
            if (stack.empty())
                return fail(error,
                            where + " ('E') has no open 'B' on its "
                                    "(pid, tid) track");
            if (stack.back().first != ev.field("name")->str)
                return fail(
                    error,
                    where + " ('E' \"" + ev.field("name")->str +
                        "\") does not match the innermost open 'B' "
                        "(\"" + stack.back().first +
                        "\" at traceEvents[" +
                        std::to_string(stack.back().second) + "])");
            stack.pop_back();
        }
    }
    for (const auto &track : open)
        if (!track.second.empty())
            return fail(error,
                        "torn trace: 'B' at traceEvents[" +
                            std::to_string(
                                track.second.back().second) +
                            "] (\"" + track.second.back().first +
                            "\") is never closed by an 'E'");
    if (slices == 0)
        return fail(error, "trace contains no 'X' slices");
    if (!checkSliceNesting(tracks, error))
        return false;

    if (result != nullptr) {
        result->events = events->array.size();
        result->slices = slices;
    }
    return true;
}

} // namespace obs
} // namespace jitsched
