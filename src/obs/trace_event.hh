/**
 * @file
 * Chrome trace-event JSON emitter.
 *
 * Produces the "JSON Object Format" of the Trace Event spec that
 * chrome://tracing and Perfetto load directly:
 *
 *   {"displayTimeUnit": "ns",
 *    "traceEvents": [
 *      {"ph": "M", "pid": 1, "tid": 2, "name": "thread_name",
 *       "args": {"name": "exec core"}},
 *      {"ph": "X", "pid": 1, "tid": 2, "name": "f1@L0",
 *       "cat": "call", "ts": 2.0, "dur": 3.0, "args": {...}}, ...]}
 *
 * Timestamps (`ts`) and durations (`dur`) are microseconds by spec;
 * jitsched ticks are nanoseconds, so values are emitted as exact
 * decimal fractions (1 tick -> "0.001") — no floating-point
 * round-trip, so golden-file tests can compare bytes.
 *
 * The sink buffers events and writes the whole document at once;
 * schedules worth visualizing are thousands of events, not millions.
 */

#ifndef JITSCHED_OBS_TRACE_EVENT_HH
#define JITSCHED_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace jitsched {
namespace obs {

/** One trace event (complete slice or metadata). */
struct TraceEvent
{
    char ph = 'X';       ///< 'X' complete slice, 'M' metadata
    std::string name;
    std::string cat;     ///< category; empty omits the field
    std::uint32_t pid = 1;
    std::uint32_t tid = 1;
    Tick ts = 0;         ///< start, in ticks (ns)
    Tick dur = 0;        ///< duration, in ticks; 'X' events only
    /** Extra key/value args; values are emitted as JSON strings. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Collects trace events and serializes them as a Chrome/Perfetto
 * JSON trace document.
 */
class TraceEventSink
{
  public:
    /** Append a complete ('X') slice. */
    void slice(std::string name, std::string cat, std::uint32_t pid,
               std::uint32_t tid, Tick ts, Tick dur,
               std::vector<std::pair<std::string, std::string>>
                   args = {});

    /** Name a process (Perfetto track grouping). */
    void processName(std::uint32_t pid, const std::string &name);

    /** Name a thread (one timeline track). */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    const std::vector<TraceEvent> &events() const { return events_; }

    std::size_t size() const { return events_.size(); }

    /** Write the full JSON document. */
    void write(std::ostream &os) const;

    /** Write to a file; fatal() on I/O failure (user-facing paths). */
    void writeFile(const std::string &path) const;

    /** Render one tick count as the spec's microsecond decimal. */
    static std::string ticksToMicros(Tick t);

  private:
    std::vector<TraceEvent> events_;
};

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_TRACE_EVENT_HH
