/**
 * @file
 * Trace-document validator library behind jitsched-trace-check.
 *
 * Validates Chrome trace-event JSON the way Perfetto and
 * chrome://tracing consume it, plus two jitsched-specific span
 * invariants that catch torn traces from live traffic:
 *
 *  - begin/end pairing: every 'E' event closes the most recent open
 *    'B' with the same name on its (pid, tid) track; an 'E' with no
 *    open 'B', a name mismatch, or a 'B' left open at end-of-trace
 *    is an error;
 *  - strict nesting of 'X' slices per (pid, tid): two slices on one
 *    track either nest (one contains the other) or are disjoint —
 *    partial overlap means the emitter attributed one interval to
 *    two spans, which is exactly what per-trace virtual tids
 *    (SpanCollector::exportTo) are supposed to prevent.  Shared
 *    boundaries and zero-duration slices are legal.
 *
 * Used by the jitsched-trace-check binary and directly by tests (no
 * subprocess needed to validate an in-memory trace).
 */

#ifndef JITSCHED_OBS_TRACE_CHECK_HH
#define JITSCHED_OBS_TRACE_CHECK_HH

#include <cstddef>
#include <string>

namespace jitsched {
namespace obs {

/** What a successful validation saw. */
struct TraceCheckResult
{
    std::size_t events = 0; ///< all traceEvents entries
    std::size_t slices = 0; ///< 'X' complete slices
};

/**
 * Validate a full trace document.  @return true when valid; on
 * failure *error describes the first problem found.  @p result and
 * @p error may be nullptr.
 */
bool checkTraceText(const std::string &text, TraceCheckResult *result,
                    std::string *error);

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_TRACE_CHECK_HH
