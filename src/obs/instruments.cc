#include "obs/instruments.hh"

namespace jitsched {
namespace obs {

ExecMetrics &
ExecMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static ExecMetrics m{
        r.counter("exec.cache.hits"),
        r.counter("exec.cache.misses"),
        r.counter("exec.pool.batches"),
        r.counter("exec.pool.tasks"),
        r.counter("exec.pool.busy_ns"),
        r.gauge("exec.pool.concurrency"),
        r.counter("exec.batch.jobs"),
        r.histogram("exec.batch.sim_ns", latencyNsBounds()),
    };
    return m;
}

SolverMetrics &
SolverMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static SolverMetrics m{
        r.counter("solver.astar.searches"),
        r.counter("solver.astar.nodes_expanded"),
        r.counter("solver.astar.nodes_generated"),
        r.counter("solver.astar.nodes_pruned"),
        r.counter("solver.astar.evaluations"),
        r.gauge("solver.astar.peak_memory_bytes"),
        r.gauge("solver.astar.peak_arena_bytes"),
        r.counter("solver.astar_par.searches"),
        r.counter("solver.astar_par.nodes_expanded"),
        r.counter("solver.astar_par.nodes_generated"),
        r.counter("solver.astar_par.nodes_pruned"),
        r.counter("solver.astar_par.nodes_pruned_incumbent"),
        r.counter("solver.astar_par.nodes_routed"),
        r.counter("solver.astar_par.incumbent_improvements"),
        r.counter("solver.astar_par.evaluations"),
        r.gauge("solver.astar_par.peak_memory_bytes"),
        r.gauge("solver.astar_par.max_inbox_depth"),
        r.gauge("solver.astar_par.workers"),
        r.counter("solver.iar.runs"),
        r.counter("solver.iar.slack_upgrades"),
        r.counter("solver.iar.gap_appends"),
    };
    return m;
}

ServiceMetrics &
ServiceMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static ServiceMetrics m{
        r.counter("service.connections.accepted"),
        r.counter("service.connections.dropped"),
        r.counter("service.frames.served"),
        r.counter("service.bytes.in"),
        r.counter("service.bytes.out"),
        r.counter("service.requests.accepted"),
        r.counter("service.requests.shed"),
        r.counter("service.requests.expired"),
        r.counter("service.requests.processed"),
        r.counter("service.requests.stats"),
        r.counter("service.requests.ping"),
        r.gauge("service.queue.depth"),
        r.histogram("service.queue.wait_ns", latencyNsBounds()),
        r.counter("service.result_cache.hits"),
        r.counter("service.result_cache.misses"),
        r.counter("service.result_cache.collapsed"),
        r.counter("service.result_cache.evictions"),
        r.gauge("service.result_cache.bytes"),
        r.gauge("service.result_cache.entries"),
        r.counter("service.result_cache.snapshot_saves"),
        r.counter("service.result_cache.snapshot_loads"),
    };
    return m;
}

Histogram &
ServiceMetrics::solveNsFor(const std::string &policy)
{
    return MetricsRegistry::global().histogram(
        "service.solve_ns." + policy, latencyNsBounds());
}

ClusterMetrics &
ClusterMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static ClusterMetrics m{
        r.counter("cluster.connections.accepted"),
        r.counter("cluster.frames.served"),
        r.counter("cluster.frames.bad"),
        r.counter("cluster.requests.routed"),
        r.counter("cluster.requests.spilled"),
        r.counter("cluster.requests.retried"),
        r.counter("cluster.requests.hedged"),
        r.counter("cluster.requests.failed"),
        r.counter("cluster.hedge.wins"),
        r.counter("cluster.backend.ejections"),
        r.counter("cluster.backend.readmissions"),
        r.counter("cluster.probes.sent"),
        r.counter("cluster.probes.failed"),
        r.counter("cluster.pings.served"),
        r.counter("cluster.stats.served"),
    };
    return m;
}

std::string
metricSegment(const std::string &label)
{
    if (label.empty())
        return "_";
    std::string out = label;
    for (char &c : out) {
        if (c >= 'A' && c <= 'Z') {
            c = static_cast<char>(c - 'A' + 'a');
            continue;
        }
        const bool valid = (c >= 'a' && c <= 'z') ||
                           (c >= '0' && c <= '9') || c == '_' ||
                           c == '.' || c == '-';
        if (!valid)
            c = '_';
    }
    // A segment composes into a dotted path; a '.' at either edge
    // would create a leading/trailing dot the registry rejects.
    if (out.front() == '.')
        out.front() = '_';
    if (out.back() == '.')
        out.back() = '_';
    return out;
}

Histogram &
ClusterMetrics::tryNsFor(const std::string &backend_label)
{
    return MetricsRegistry::global().histogram(
        "cluster.try_ns." + metricSegment(backend_label),
        latencyNsBounds());
}

Counter &
ClusterMetrics::routedToFor(const std::string &backend_label)
{
    return MetricsRegistry::global().counter(
        "cluster.routed_to." + metricSegment(backend_label));
}

Counter &
ClusterMetrics::resultCacheHitsFor(const std::string &backend_label)
{
    return MetricsRegistry::global().counter(
        "cluster.result_cache_hits." + metricSegment(backend_label));
}

void
registerClusterInstruments(
    const std::vector<std::string> &backend_labels)
{
    ClusterMetrics::get();
    for (const std::string &label : backend_labels) {
        ClusterMetrics::tryNsFor(label);
        ClusterMetrics::routedToFor(label);
        ClusterMetrics::resultCacheHitsFor(label);
    }
}

void
registerStandardInstruments(
    const std::vector<std::string> &policy_names)
{
    ExecMetrics::get();
    SolverMetrics::get();
    ServiceMetrics::get();
    for (const std::string &name : policy_names)
        ServiceMetrics::solveNsFor(name);
}

} // namespace obs
} // namespace jitsched
