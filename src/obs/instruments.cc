#include "obs/instruments.hh"

namespace jitsched {
namespace obs {

ExecMetrics &
ExecMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static ExecMetrics m{
        r.counter("exec.cache.hits"),
        r.counter("exec.cache.misses"),
        r.counter("exec.pool.batches"),
        r.counter("exec.pool.tasks"),
        r.counter("exec.pool.busy_ns"),
        r.gauge("exec.pool.concurrency"),
        r.counter("exec.batch.jobs"),
        r.histogram("exec.batch.sim_ns", latencyNsBounds()),
    };
    return m;
}

SolverMetrics &
SolverMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static SolverMetrics m{
        r.counter("solver.astar.searches"),
        r.counter("solver.astar.nodes_expanded"),
        r.counter("solver.astar.nodes_generated"),
        r.counter("solver.astar.nodes_pruned"),
        r.counter("solver.astar.evaluations"),
        r.gauge("solver.astar.peak_memory_bytes"),
        r.gauge("solver.astar.peak_arena_bytes"),
        r.counter("solver.iar.runs"),
        r.counter("solver.iar.slack_upgrades"),
        r.counter("solver.iar.gap_appends"),
    };
    return m;
}

ServiceMetrics &
ServiceMetrics::get()
{
    static MetricsRegistry &r = MetricsRegistry::global();
    static ServiceMetrics m{
        r.counter("service.connections.accepted"),
        r.counter("service.connections.dropped"),
        r.counter("service.frames.served"),
        r.counter("service.bytes.in"),
        r.counter("service.bytes.out"),
        r.counter("service.requests.accepted"),
        r.counter("service.requests.shed"),
        r.counter("service.requests.expired"),
        r.counter("service.requests.processed"),
        r.counter("service.requests.stats"),
        r.gauge("service.queue.depth"),
        r.histogram("service.queue.wait_ns", latencyNsBounds()),
    };
    return m;
}

Histogram &
ServiceMetrics::solveNsFor(const std::string &policy)
{
    return MetricsRegistry::global().histogram(
        "service.solve_ns." + policy, latencyNsBounds());
}

void
registerStandardInstruments(
    const std::vector<std::string> &policy_names)
{
    ExecMetrics::get();
    SolverMetrics::get();
    ServiceMetrics::get();
    for (const std::string &name : policy_names)
        ServiceMetrics::solveNsFor(name);
}

} // namespace obs
} // namespace jitsched
