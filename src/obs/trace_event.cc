#include "obs/trace_event.hh"

#include <fstream>
#include <ostream>

#include "support/logging.hh"
#include "support/strutil.hh"

namespace jitsched {
namespace obs {

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << strprintf("\\u%04x", c);
            else
                os << c;
        }
    }
    os << '"';
}

} // anonymous namespace

std::string
TraceEventSink::ticksToMicros(Tick t)
{
    // Exact decimal: ticks are integer nanoseconds, the spec wants
    // microseconds.  Emit the quotient and a trimmed 3-digit
    // fraction so 1 -> "0.001", 1500 -> "1.5", 2000 -> "2".
    const bool neg = t < 0;
    const std::uint64_t abs =
        neg ? 0ull - static_cast<std::uint64_t>(t)
            : static_cast<std::uint64_t>(t);
    std::string out = neg ? "-" : "";
    out += std::to_string(abs / 1000);
    std::uint64_t frac = abs % 1000;
    if (frac != 0) {
        std::string digits = strprintf("%03llu",
                                       (unsigned long long)frac);
        while (!digits.empty() && digits.back() == '0')
            digits.pop_back();
        out += '.';
        out += digits;
    }
    return out;
}

void
TraceEventSink::slice(
    std::string name, std::string cat, std::uint32_t pid,
    std::uint32_t tid, Tick ts, Tick dur,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent ev;
    ev.ph = 'X';
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    ev.dur = dur;
    ev.args = std::move(args);
    events_.push_back(std::move(ev));
}

void
TraceEventSink::processName(std::uint32_t pid, const std::string &name)
{
    TraceEvent ev;
    ev.ph = 'M';
    ev.name = "process_name";
    ev.pid = pid;
    ev.tid = 0;
    ev.args.emplace_back("name", name);
    events_.push_back(std::move(ev));
}

void
TraceEventSink::threadName(std::uint32_t pid, std::uint32_t tid,
                           const std::string &name)
{
    TraceEvent ev;
    ev.ph = 'M';
    ev.name = "thread_name";
    ev.pid = pid;
    ev.tid = tid;
    ev.args.emplace_back("name", name);
    events_.push_back(std::move(ev));
}

void
TraceEventSink::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &ev = events_[i];
        os << "{\"ph\": \"" << ev.ph << "\", \"pid\": " << ev.pid
           << ", \"tid\": " << ev.tid << ", \"name\": ";
        writeJsonString(os, ev.name);
        if (!ev.cat.empty()) {
            os << ", \"cat\": ";
            writeJsonString(os, ev.cat);
        }
        if (ev.ph == 'X') {
            os << ", \"ts\": " << ticksToMicros(ev.ts)
               << ", \"dur\": " << ticksToMicros(ev.dur);
        }
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < ev.args.size(); ++a) {
                if (a != 0)
                    os << ", ";
                writeJsonString(os, ev.args[a].first);
                os << ": ";
                writeJsonString(os, ev.args[a].second);
            }
            os << '}';
        }
        os << '}' << (i + 1 < events_.size() ? "," : "") << '\n';
    }
    os << "]}\n";
}

void
TraceEventSink::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        JITSCHED_FATAL("cannot open trace output file '", path, "'");
    write(os);
    if (!os.good())
        JITSCHED_FATAL("write to trace output file '", path,
                       "' failed");
}

} // namespace obs
} // namespace jitsched
