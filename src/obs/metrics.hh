/**
 * @file
 * Process-wide metrics: counters, gauges, and fixed-bucket
 * histograms behind a registry with a text snapshot.
 *
 * Design constraints (see DESIGN.md Sec. 5c):
 *  - No locks on the hot path.  Counters and histograms are striped
 *    over cache-line-aligned cells indexed by a per-thread slot;
 *    updates are relaxed atomic adds on the thread's own stripe and
 *    only scrape-time aggregation walks all stripes.
 *  - Instruments are registered once and never move; hot code holds
 *    plain references obtained at setup time, so the registry mutex
 *    guards registration and scraping only.
 *  - Two kill switches.  Compile-time: building with
 *    -DJITSCHED_OBS=OFF defines JITSCHED_OBS_DISABLED and the
 *    JITSCHED_OBS() wiring macro expands to nothing, so hot paths
 *    carry zero instrumentation code.  Run-time:
 *    MetricsRegistry::setEnabled(false) turns every update into a
 *    single relaxed load + branch — what bench_obs measures the
 *    instrumented build against.
 *
 * Naming convention: lowercase dotted paths (hyphens allowed for
 * embedded identifiers such as policy names),
 * `<subsystem>.<object>.<metric>` (e.g. `service.queue.depth`,
 * `solver.astar.nodes_expanded`), units spelled out in the last
 * segment where they matter (`_ns`, `_bytes`).  The snapshot is one
 * instrument per line, sorted by name, `<type> <name> <values...>` —
 * grep- and diff-friendly (scripts/check.sh --obs-smoke diffs the
 * key set).
 */

#ifndef JITSCHED_OBS_METRICS_HH
#define JITSCHED_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jitsched {
namespace obs {

/**
 * Wiring macro: statements that exist only to feed instruments go
 * through JITSCHED_OBS(...) so a -DJITSCHED_OBS=OFF build compiles
 * them out entirely (the disabled-build guarantee).
 */
#ifdef JITSCHED_OBS_DISABLED
#define JITSCHED_OBS(...)                                            \
    do {                                                             \
    } while (0)
#else
#define JITSCHED_OBS(...)                                            \
    do {                                                             \
        __VA_ARGS__;                                                 \
    } while (0)
#endif

namespace detail {

/** Number of stripes counters/histograms spread their cells over. */
constexpr std::size_t kStripes = 16;

/** This thread's stripe index (assigned round-robin on first use). */
std::size_t threadStripe();

/** The process-wide run-time enable flag. */
extern std::atomic<bool> metricsEnabled;

inline bool
enabled()
{
    return metricsEnabled.load(std::memory_order_relaxed);
}

/** One cache line of counter state; padding defeats false sharing. */
struct alignas(64) CounterCell
{
    std::atomic<std::uint64_t> value{0};
};

} // namespace detail

/**
 * Monotonic counter.  add() is a relaxed fetch_add on the calling
 * thread's stripe; value() sums the stripes (monotone but not a
 * point-in-time atomic snapshot — fine for monitoring).
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (!detail::enabled())
            return;
        cells_[detail::threadStripe()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const auto &cell : cells_)
            total += cell.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    friend class MetricsRegistry;
    Counter() = default;
    detail::CounterCell cells_[detail::kStripes];
};

/**
 * Instantaneous value with set/add semantics (queue depths, sizes).
 * A single atomic — gauges are updated at queue/scrape frequency,
 * not in inner loops, so striping would buy nothing and break set().
 */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (!detail::enabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        if (!detail::enabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** set(v) only if v exceeds the current value (races tolerated). */
    void
    setMax(std::int64_t v)
    {
        if (!detail::enabled())
            return;
        std::int64_t cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed))
            ;
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    Gauge() = default;
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram: cumulative-style buckets with inclusive
 * upper bounds (`le`), an implicit +inf bucket, plus count and sum.
 * Bucket bounds are fixed at registration; observe() is a binary
 * search over <= ~16 bounds and three relaxed adds on the calling
 * thread's stripe.
 */
class Histogram
{
  public:
    void observe(std::int64_t v);

    struct Snapshot
    {
        std::vector<std::int64_t> bounds;  ///< upper bounds, no +inf
        std::vector<std::uint64_t> counts; ///< bounds.size() + 1
        std::uint64_t count = 0;
        std::int64_t sum = 0;
    };

    Snapshot snapshot() const;

    const std::vector<std::int64_t> &bounds() const { return bounds_; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(std::vector<std::int64_t> bounds);

    struct alignas(64) Cell
    {
        std::atomic<std::int64_t> sum{0};
        /** one count per bucket incl. +inf; sized at construction */
        std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    };

    const std::vector<std::int64_t> bounds_;
    Cell cells_[detail::kStripes];
};

/** Default bucket bounds for nanosecond latencies: 1us .. 10s. */
const std::vector<std::int64_t> &latencyNsBounds();

/** Default bucket bounds for byte sizes: 64 B .. 16 MiB. */
const std::vector<std::int64_t> &bytesBounds();

/**
 * Name-keyed instrument registry.
 *
 * counter()/gauge()/histogram() get-or-create: the first call for a
 * name creates the instrument, later calls return the same object
 * (for histograms the registration-time bounds win; asking for the
 * same name with different bounds is a caller bug and panics).
 * Returned references stay valid for the registry's lifetime.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         const std::vector<std::int64_t> &bounds);

    /**
     * Text snapshot, one instrument per line sorted by name:
     *
     *   counter <name> <value>
     *   gauge <name> <value>
     *   histogram <name> count <n> sum <s> le_<bound> <n>... le_inf <n>
     */
    std::string snapshotText() const;

    /**
     * Prometheus text-exposition snapshot (scraped via the
     * `jitsched-stats <id> prom` wire form and `jitsched-cli stats
     * --prom`).  Instrument names gain a `jitsched_` prefix and have
     * '.'/'-' mapped to '_'; counters and gauges emit a `# TYPE`
     * line plus one sample; histograms emit the spec's cumulative
     * `le`-labelled `_bucket` series (including `le="+Inf"`) plus
     * `_sum` and `_count`.
     */
    std::string snapshotProm() const;

    /** Number of registered instruments. */
    std::size_t size() const;

    /** The process-wide registry every built-in instrument lives in. */
    static MetricsRegistry &global();

    /**
     * Run-time kill switch shared by every instrument (global() or
     * not).  @return the previous setting.
     */
    static bool setEnabled(bool enabled);
    static bool enabled() { return detail::enabled(); }

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &findOrCreate(const std::string &name, Kind kind,
                        const std::vector<std::int64_t> *bounds =
                            nullptr);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_; ///< ordered => sorted scrape
};

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_METRICS_HH
