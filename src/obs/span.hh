/**
 * @file
 * Request-scoped tracing: trace ids, spans, and the process-wide
 * span collector.
 *
 * A trace id is a nonzero 64-bit token minted at first contact
 * (jitsched-cli or the router) and propagated over the wire as the
 * optional `option trace-id <hex>` request line.  It is deliberately
 * fingerprint-neutral: requestFingerprint() never sees it, so the
 * EvalCache, CachedFirst admission and consistent-hash affinity
 * behave identically whether or not a request is traced (DESIGN.md
 * Sec. 5g).
 *
 * A span is one named interval attributed to a trace:
 *
 *   service.admission_wait   submit -> dequeue in the AdmissionQueue
 *   service.solve            PolicyRegistry solver run
 *   service.serialize        response serialization
 *   cluster.route_attempt    one router try (tagged backend+outcome)
 *
 * Spans land in the SpanCollector: a bounded in-memory ring guarded
 * by one mutex (3-4 records per request; contention is negligible
 * next to a solve).  exportTo() replays the ring into the existing
 * TraceEventSink, giving every trace id its own virtual thread track
 * so slices of one request nest strictly even when worker threads
 * interleave requests — the property jitsched-trace-check enforces.
 *
 * Memory bound: capacity() spans, each a name + small tag vector;
 * the default 65536-slot ring stays under ~16 MiB worst case and
 * overwrites oldest-first (dropped() counts evictions).
 */

#ifndef JITSCHED_OBS_SPAN_HH
#define JITSCHED_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jitsched {
namespace obs {

class TraceEventSink;

/** Mint a fresh nonzero trace id (time + pid + counter mixed). */
std::uint64_t mintTraceId();

/** Lowercase hex rendering of a trace id, no 0x prefix. */
std::string traceIdHex(std::uint64_t id);

/**
 * Strict parse of a wire trace id: 1..16 hex digits (either case),
 * nonzero.  Anything else — empty, 0, overlong, stray characters —
 * returns nullopt so the protocol layer can reject the frame.
 */
std::optional<std::uint64_t> parseTraceIdHex(std::string_view s);

/** One completed interval attributed to a trace. */
struct Span
{
    std::uint64_t traceId = 0;
    std::string name;        ///< span taxonomy name, e.g. service.solve
    std::int64_t startNs = 0; ///< since the collector's epoch
    std::int64_t durNs = 0;
    std::vector<std::pair<std::string, std::string>> tags;
};

/**
 * Bounded ring of completed spans.  record() is one lock + slot
 * move; snapshot() returns spans oldest-first; exportTo() writes
 * Chrome slices with one virtual tid per trace id.
 */
class SpanCollector
{
  public:
    explicit SpanCollector(std::size_t capacity = 65536);

    /** Append one span (no-op when the collector is disabled). */
    void record(Span s);

    /**
     * Convenience: record [t0, t1) measured on the steady clock.
     * Skipped when traceId is 0 or the collector is disabled.
     */
    void recordBetween(
        std::uint64_t traceId, std::string name,
        std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1,
        std::vector<std::pair<std::string, std::string>> tags = {});

    /** Spans currently retained, oldest first. */
    std::vector<Span> snapshot() const;

    /** Drop every retained span (tests). */
    void clear();

    std::size_t capacity() const { return capacity_; }

    /** Spans evicted because the ring was full. */
    std::uint64_t dropped() const;

    /**
     * Replay retained spans into @p sink: pid 1, one virtual tid per
     * trace id (first-seen order), cat "span", thread named
     * `trace <hex>`.  Tags become slice args, plus the trace id.
     */
    void exportTo(TraceEventSink &sink) const;

    /** Nanoseconds since this collector's epoch (steady clock). */
    std::int64_t nowNs() const;

    /** Nanoseconds between the epoch and @p tp. */
    std::int64_t
    sinceEpochNs(std::chrono::steady_clock::time_point tp) const;

    /** The process-wide collector the service and router feed. */
    static SpanCollector &global();

    /**
     * Run-time switch for span recording (flight recorder is not
     * affected — it is always on).  @return the previous setting.
     */
    static bool setEnabled(bool enabled);
    static bool enabled();

  private:
    const std::size_t capacity_;
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<Span> ring_;   ///< grows to capacity_, then wraps
    std::size_t next_ = 0;     ///< ring slot the next record lands in
    std::uint64_t recorded_ = 0;
};

/**
 * RAII span: starts timing at construction, records into the global
 * collector at destruction.  A zero trace id (untraced request) or a
 * disabled collector makes the whole object a no-op.
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::uint64_t traceId, std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a tag emitted with the span. */
    void tag(std::string key, std::string value);

  private:
    bool active_;
    std::uint64_t trace_id_;
    std::string name_;
    std::int64_t start_ns_ = 0;
    std::vector<std::pair<std::string, std::string>> tags_;
};

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_SPAN_HH
