/**
 * @file
 * In-memory flight recorder: a fixed ring of the last N completed
 * request records, always on.
 *
 * Where spans answer "where did this request's time go", the flight
 * recorder answers "what were the last requests this process served"
 * — after a crash, a hang, or a p99 blowup, when nobody thought to
 * attach a tracer beforehand.  Each completed request costs exactly
 * one slot write: a global sequence fetch_add picks the slot, a
 * striped mutex guards only that stripe, so concurrent handler
 * threads almost never contend.
 *
 * The ring is dumped three ways:
 *  - the DUMP wire verb (`jitsched-dump <id>`), answered inline on
 *    jitschedd and jitsched-router like STATS/PING, surfaced as the
 *    `jitsched-cli dump` subcommand;
 *  - automatically to stderr when panic() fires (via the
 *    support/logging panic hook — see installPanicDump());
 *  - automatically to stderr when a request exceeds the
 *    JITSCHED_SLOW_MS threshold (slow-request log).
 *
 * Memory bound: capacity() records of a few small strings each — the
 * default 256-slot ring is a few tens of KiB, fixed at construction.
 */

#ifndef JITSCHED_OBS_FLIGHT_RECORDER_HH
#define JITSCHED_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jitsched {
namespace obs {

/** One completed request, as remembered by the flight recorder. */
struct FlightRecord
{
    std::uint64_t seq = 0;     ///< global completion order (assigned)
    std::uint64_t traceId = 0; ///< 0 when the request was untraced
    std::uint64_t requestId = 0;
    std::string policy;
    std::string status;        ///< "ok" or the wire error code
    std::int64_t queueNs = 0;
    std::int64_t solveNs = 0;
    std::uint64_t bytes = 0;   ///< response frame size
    std::uint32_t hops = 0;    ///< route attempts consumed; 0 direct
    /** Answered by the result cache (hit or singleflight collapse). */
    bool cached = false;
};

/**
 * Lock-striped bounded ring of FlightRecords.  record() is one
 * relaxed fetch_add plus one striped lock; snapshot() locks all
 * stripes and returns records sorted by completion order.
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 256);

    /** Remember one completed request (seq is assigned here). */
    void record(FlightRecord r);

    /** Retained records, oldest completion first. */
    std::vector<FlightRecord> snapshot() const;

    /**
     * One line per record, the same shape the DUMP verb carries:
     *
     *   trace <hex> request <id> policy <p> status <s>
     *     queue-ns <q> solve-ns <n> bytes <b> hops <h> cached <0|1>
     */
    std::string dumpText() const;

    /** Render one record as its dump/DUMP line (no newline). */
    static std::string recordLine(const FlightRecord &r);

    /** Drop every retained record (tests). */
    void clear();

    std::size_t capacity() const { return capacity_; }

    /** Requests recorded since construction (monotone). */
    std::uint64_t recorded() const;

    /** The process-wide recorder the service and router feed. */
    static FlightRecorder &global();

  private:
    static constexpr std::size_t kStripes = 8;

    struct Stripe
    {
        mutable std::mutex mutex;
        std::vector<FlightRecord> slots; ///< fixed size, seq==0 empty
    };

    const std::size_t capacity_;   ///< total slots across stripes
    const std::size_t per_stripe_; ///< slots per stripe
    std::atomic<std::uint64_t> seq_{0};
    Stripe stripes_[kStripes];
};

/**
 * Register the panic hook that dumps FlightRecorder::global() to
 * stderr before abort().  Idempotent; called by the service server
 * and router on startup so any later panic leaves the ring behind.
 */
void installPanicDump();

/**
 * Parse a JITSCHED_SLOW_MS value.  Strict like JITSCHED_THREADS:
 * unset or empty disables the slow-request log (returns -1); a
 * non-negative integer is the threshold in milliseconds; anything
 * else is fatal() — a typo must not silently disable the log.
 */
std::int64_t parseSlowMsEnv(const char *env);

/**
 * The slow-request threshold in nanoseconds, read once from
 * JITSCHED_SLOW_MS; negative when disabled.
 */
std::int64_t slowThresholdNs();

/**
 * Called with a request's total visible latency; when the
 * JITSCHED_SLOW_MS threshold is breached, logs the offender (tagged
 * with @p layer, e.g. "service" or "cluster") and dumps the flight
 * recorder to stderr.
 */
void noteRequestLatency(std::uint64_t traceId, std::int64_t totalNs,
                        const char *layer);

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_FLIGHT_RECORDER_HH
