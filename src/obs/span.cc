#include "obs/span.hh"

#include <atomic>
#include <algorithm>
#include <unordered_map>

#include <unistd.h>

#include "obs/trace_event.hh"

namespace jitsched {
namespace obs {

namespace {

std::atomic<bool> spansEnabled{true};

/** splitmix64 finalizer — well-mixed 64-bit ids from weak seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::uint64_t
mintTraceId()
{
    static std::atomic<std::uint64_t> counter{0};
    const auto now = std::chrono::steady_clock::now()
                         .time_since_epoch()
                         .count();
    const std::uint64_t seed =
        static_cast<std::uint64_t>(now) ^
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        counter.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t id = mix64(seed);
    // Zero means "untraced"; re-mix until nonzero (astronomically
    // rare, but the contract is a nonzero id).
    while (id == 0)
        id = mix64(id + counter.fetch_add(1, std::memory_order_relaxed) + 1);
    return id;
}

std::string
traceIdHex(std::uint64_t id)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    do {
        out.push_back(digits[id & 0xf]);
        id >>= 4;
    } while (id != 0);
    std::reverse(out.begin(), out.end());
    return out;
}

std::optional<std::uint64_t>
parseTraceIdHex(std::string_view s)
{
    if (s.empty() || s.size() > 16)
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : s) {
        const int d = hexDigit(c);
        if (d < 0)
            return std::nullopt;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    if (v == 0)
        return std::nullopt;
    return v;
}

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{
}

void
SpanCollector::record(Span s)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(s));
    } else {
        ring_[next_] = std::move(s);
        next_ = (next_ + 1) % capacity_;
    }
    ++recorded_;
}

void
SpanCollector::recordBetween(
    std::uint64_t traceId, std::string name,
    std::chrono::steady_clock::time_point t0,
    std::chrono::steady_clock::time_point t1,
    std::vector<std::pair<std::string, std::string>> tags)
{
    if (traceId == 0 || !enabled())
        return;
    Span s;
    s.traceId = traceId;
    s.name = std::move(name);
    s.startNs = sinceEpochNs(t0);
    s.durNs = std::max<std::int64_t>(0, sinceEpochNs(t1) - s.startNs);
    s.tags = std::move(tags);
    record(std::move(s));
}

std::vector<Span>
SpanCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Span> out;
    out.reserve(ring_.size());
    // Oldest first: [next_, end) wrapped around, then [0, next_).
    if (ring_.size() == capacity_) {
        for (std::size_t i = next_; i < ring_.size(); ++i)
            out.push_back(ring_[i]);
        for (std::size_t i = 0; i < next_; ++i)
            out.push_back(ring_[i]);
    } else {
        out = ring_;
    }
    return out;
}

void
SpanCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    next_ = 0;
    recorded_ = 0;
}

std::uint64_t
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void
SpanCollector::exportTo(TraceEventSink &sink) const
{
    const std::vector<Span> spans = snapshot();
    sink.processName(1, "jitsched spans");
    // One virtual thread track per trace id, assigned in first-seen
    // order — keeps one request's slices strictly nested even when
    // worker threads interleave several requests.
    std::unordered_map<std::uint64_t, std::uint32_t> tids;
    for (const Span &s : spans) {
        auto it = tids.find(s.traceId);
        std::uint32_t tid;
        if (it == tids.end()) {
            tid = static_cast<std::uint32_t>(tids.size() + 1);
            tids.emplace(s.traceId, tid);
            sink.threadName(1, tid, "trace " + traceIdHex(s.traceId));
        } else {
            tid = it->second;
        }
        auto args = s.tags;
        args.emplace_back("trace", traceIdHex(s.traceId));
        sink.slice(s.name, "span", 1, tid, s.startNs, s.durNs,
                   std::move(args));
    }
}

std::int64_t
SpanCollector::nowNs() const
{
    return sinceEpochNs(std::chrono::steady_clock::now());
}

std::int64_t
SpanCollector::sinceEpochNs(
    std::chrono::steady_clock::time_point tp) const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp - epoch_)
        .count();
}

SpanCollector &
SpanCollector::global()
{
    static SpanCollector collector;
    return collector;
}

bool
SpanCollector::setEnabled(bool enabled)
{
    return spansEnabled.exchange(enabled, std::memory_order_relaxed);
}

bool
SpanCollector::enabled()
{
    return spansEnabled.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::uint64_t traceId, std::string name)
    : active_(traceId != 0 && SpanCollector::enabled()),
      trace_id_(traceId), name_(std::move(name))
{
    if (active_)
        start_ns_ = SpanCollector::global().nowNs();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    Span s;
    s.traceId = trace_id_;
    s.name = std::move(name_);
    s.startNs = start_ns_;
    s.durNs = std::max<std::int64_t>(
        0, SpanCollector::global().nowNs() - start_ns_);
    s.tags = std::move(tags_);
    SpanCollector::global().record(std::move(s));
}

void
ScopedSpan::tag(std::string key, std::string value)
{
    if (active_)
        tags_.emplace_back(std::move(key), std::move(value));
}

} // namespace obs
} // namespace jitsched
