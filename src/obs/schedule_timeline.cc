#include "obs/schedule_timeline.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/trace_event.hh"
#include "support/logging.hh"

namespace jitsched {
namespace obs {

namespace {

/**
 * Observer that rebuilds the per-core placement of every slice.
 *
 * Compile cores: the simulator dispatches events FIFO to the
 * earliest-free core (sim/compile_queue.hh); replaying that greedy
 * rule on the completion times the observer sees recovers each
 * event's core and start, and the reconstruction is checked against
 * the observed completion so the two engines cannot drift silently.
 *
 * Bubbles: a call that starts after the previous call ended was
 * waiting on its function's first compilation — exactly the gap
 * simulate() books as bubble time.
 */
class TimelineObserver : public SimObserver
{
  public:
    TimelineObserver(const Workload &w, std::size_t compile_cores,
                     std::vector<TimelineSlice> &out)
        : w_(w), core_free_(compile_cores, 0), out_(out)
    {
    }

    void
    onCompiled(std::size_t event_index, const CompileEvent &ev,
               Tick completion) override
    {
        const Tick dur = w_.function(ev.func).compileTime(ev.level);
        const auto it =
            std::min_element(core_free_.begin(), core_free_.end());
        const Tick start = *it;
        if (start + dur != completion)
            JITSCHED_PANIC("ScheduleTimeline: compile-core replay "
                           "diverged from the simulator (event ",
                           event_index, ": expected completion ",
                           start + dur, ", simulator says ",
                           completion, ")");
        *it = completion;
        TimelineSlice slice;
        slice.kind = TimelineSlice::Kind::Compile;
        slice.core = static_cast<std::size_t>(
            it - core_free_.begin());
        slice.start = start;
        slice.dur = dur;
        slice.func = ev.func;
        slice.level = ev.level;
        slice.index = event_index;
        out_.push_back(slice);
    }

    void
    onCall(std::size_t call_index, FuncId f, Tick start, Tick duration,
           Level level_used) override
    {
        if (start > exec_now_) {
            TimelineSlice bubble;
            bubble.kind = TimelineSlice::Kind::Bubble;
            bubble.start = exec_now_;
            bubble.dur = start - exec_now_;
            bubble.func = f;
            bubble.index = call_index;
            out_.push_back(bubble);
        }
        TimelineSlice call;
        call.kind = TimelineSlice::Kind::Call;
        call.start = start;
        call.dur = duration;
        call.func = f;
        call.level = level_used;
        call.index = call_index;
        out_.push_back(call);
        exec_now_ = start + duration;
    }

  private:
    const Workload &w_;
    std::vector<Tick> core_free_; ///< replayed compile-core clocks
    Tick exec_now_ = 0;           ///< end of the previous call
    std::vector<TimelineSlice> &out_;
};

} // anonymous namespace

Tick
ScheduleTimeline::totalBubbleInSlices() const
{
    Tick total = 0;
    for (const TimelineSlice &s : slices)
        if (s.kind == TimelineSlice::Kind::Bubble)
            total += s.dur;
    return total;
}

ScheduleTimeline
buildScheduleTimeline(const Workload &w, const Schedule &s,
                      const SimOptions &opts)
{
    ScheduleTimeline timeline;
    timeline.compileCores = opts.compileCores;
    TimelineObserver observer(w, opts.compileCores, timeline.slices);
    timeline.sim = simulate(w, s, opts, observer);
    return timeline;
}

void
writeTimelineTrace(std::ostream &os, const Workload &w,
                   const ScheduleTimeline &timeline)
{
    TraceEventSink sink;
    constexpr std::uint32_t pid = 1;
    // tids 1..C are the compile cores, C+1 the exec core; ascending
    // tid keeps the tracks in Fig. 1 order (compile above exec).
    const std::uint32_t exec_tid =
        static_cast<std::uint32_t>(timeline.compileCores) + 1;
    sink.processName(pid, "jitsched: " + w.name());
    for (std::size_t c = 0; c < timeline.compileCores; ++c)
        sink.threadName(pid, static_cast<std::uint32_t>(c) + 1,
                        "compile core " + std::to_string(c));
    sink.threadName(pid, exec_tid, "exec core");

    for (const TimelineSlice &s : timeline.slices) {
        const std::string fname = w.function(s.func).name();
        switch (s.kind) {
          case TimelineSlice::Kind::Compile:
            sink.slice("C" + std::to_string(s.level) + "(" + fname +
                           ")",
                       "compile",
                       pid, static_cast<std::uint32_t>(s.core) + 1,
                       s.start, s.dur,
                       {{"func", fname},
                        {"level", std::to_string(s.level)},
                        {"event", std::to_string(s.index)}});
            break;
          case TimelineSlice::Kind::Call:
            sink.slice(fname + "@L" + std::to_string(s.level), "call",
                       pid, exec_tid, s.start, s.dur,
                       {{"func", fname},
                        {"level", std::to_string(s.level)},
                        {"call", std::to_string(s.index)}});
            break;
          case TimelineSlice::Kind::Bubble:
            sink.slice("bubble(" + fname + ")", "bubble", pid,
                       exec_tid, s.start, s.dur,
                       {{"func", fname},
                        {"call", std::to_string(s.index)}});
            break;
        }
    }
    sink.write(os);
}

void
writeScheduleTrace(std::ostream &os, const Workload &w,
                   const Schedule &s, const SimOptions &opts)
{
    writeTimelineTrace(os, w, buildScheduleTimeline(w, s, opts));
}

void
writeScheduleTraceFile(const std::string &path, const Workload &w,
                       const Schedule &s, const SimOptions &opts)
{
    std::ofstream os(path);
    if (!os)
        JITSCHED_FATAL("cannot open trace output file '", path, "'");
    writeScheduleTrace(os, w, s, opts);
    if (!os.good())
        JITSCHED_FATAL("write to trace output file '", path,
                       "' failed");
}

} // namespace obs
} // namespace jitsched
