/**
 * @file
 * ScheduleTimeline: turn a (workload, schedule) simulation into the
 * per-core event timeline of the paper's Fig. 1 — compile events on
 * the compile core(s), calls at their chosen version on the exec
 * core, and the bubbles where the execution thread waits — and
 * export it as a Chrome/Perfetto trace (obs/trace_event.hh).
 *
 * The timeline is derived from the same simulate() run that prices
 * the schedule (sim/makespan.hh SimObserver), so what the trace
 * shows is exactly what the make-span accounting measured: the sum
 * of bubble slices equals SimResult::totalBubble by construction,
 * and a property test holds the adapter to it.
 */

#ifndef JITSCHED_OBS_SCHEDULE_TIMELINE_HH
#define JITSCHED_OBS_SCHEDULE_TIMELINE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.hh"
#include "sim/makespan.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {
namespace obs {

/** One slice on the timeline. */
struct TimelineSlice
{
    enum class Kind
    {
        Compile, ///< a compile event, on a compile core
        Call,    ///< a call at its chosen version, on the exec core
        Bubble   ///< exec-thread wait for a first compilation
    };

    Kind kind = Kind::Call;

    /** Compile core the event ran on (Compile slices only). */
    std::size_t core = 0;

    Tick start = 0;
    Tick dur = 0;

    /** Function involved (all kinds; Bubble waits for this call). */
    FuncId func = invalidFuncId;

    /** Level compiled (Compile) or executed at (Call). */
    Level level = 0;

    /** Schedule event index (Compile) or call index (Call/Bubble). */
    std::size_t index = 0;
};

/** The full decomposition of one simulated schedule. */
struct ScheduleTimeline
{
    std::vector<TimelineSlice> slices;
    SimResult sim;
    std::size_t compileCores = 1;

    /** Sum of Bubble slice durations (== sim.totalBubble). */
    Tick totalBubbleInSlices() const;
};

/**
 * Simulate the schedule and collect its timeline.  The schedule must
 * be valid for the workload (same contract as simulate()).
 */
ScheduleTimeline buildScheduleTimeline(const Workload &w,
                                       const Schedule &s,
                                       const SimOptions &opts = {});

/**
 * Serialize a timeline as a Chrome trace-event JSON document, one
 * track per compile core plus one exec-core track.
 */
void writeTimelineTrace(std::ostream &os, const Workload &w,
                        const ScheduleTimeline &timeline);

/** Convenience: build + write in one call. */
void writeScheduleTrace(std::ostream &os, const Workload &w,
                        const Schedule &s, const SimOptions &opts = {});

/** Convenience: build + write to a file; fatal() on I/O failure. */
void writeScheduleTraceFile(const std::string &path, const Workload &w,
                            const Schedule &s,
                            const SimOptions &opts = {});

} // namespace obs
} // namespace jitsched

#endif // JITSCHED_OBS_SCHEDULE_TIMELINE_HH
