/**
 * @file
 * Seeded workload fuzzer: random generation over the trace grammar
 * plus structure-preserving mutators.
 *
 * Every generated or mutated instance is a *legal* OCSP input by
 * construction — the paper's monotonicity assumptions (Definition 1:
 * j1 < j2 implies c(i,j1) <= c(i,j2) and e(i,j1) >= e(i,j2)) are
 * maintained by every transform, so a fuzz failure is always a bug in
 * a solver/simulator, never a malformed instance.  FunctionProfile
 * re-checks the invariants on construction regardless; the fuzzer
 * panicking there would itself be a finding.
 *
 * Reproducibility: drive everything from Rng::caseStream(seed, case)
 * (support/rng.hh) — the draw sequence is a pure function of the
 * (seed, case) pair, so any failure replays from those two numbers.
 */

#ifndef JITSCHED_QA_FUZZ_WORKLOAD_HH
#define JITSCHED_QA_FUZZ_WORKLOAD_HH

#include <cstddef>
#include <cstdint>

#include "support/rng.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {
namespace qa {

/**
 * Bounds of the random instance space.  The defaults keep instances
 * small enough that the exact solvers (brute force, A*) finish in
 * microseconds-to-milliseconds, which is what lets the fuzzer run
 * the full cross-solver oracle chain thousands of times per second.
 */
struct FuzzDomain
{
    /** Max distinct functions (exact solvers cap out near 6). */
    std::size_t maxFunctions = 5;

    /** Max call-sequence length. */
    std::size_t maxCalls = 28;

    /** Max optimization levels per function. */
    std::size_t maxLevels = 3;

    /** Max single-level compile time, in ticks. */
    Tick maxCompile = 400;

    /** Max single-invocation execution time, in ticks. */
    Tick maxExec = 120;

    /** Probability that level 0 compiles for free (interpreter tier). */
    double interpreterProb = 0.2;

    /** Probability of carrying a never-called function in the table. */
    double uncalledProb = 0.15;
};

/**
 * Draw a random workload from the domain.  At least one call is
 * always present (the solvers treat an empty call sequence as a
 * caller bug).
 */
Workload randomWorkload(Rng &rng, const FuzzDomain &domain);

/**
 * Apply one randomly chosen structure-preserving mutation: call
 * splice (copy a range elsewhere), call duplication, call drop,
 * level insertion (a new level wedged between two existing ones,
 * costs interpolated so monotonicity holds), level drop, or cost
 * perturbation (re-monotonized after scaling).
 */
Workload mutateWorkload(const Workload &w, Rng &rng,
                        const FuzzDomain &domain);

// --- Deterministic transforms -------------------------------------
//
// Shared by the metamorphic oracles (qa/oracles.hh) and the case
// minimizer (qa/minimize.hh); deterministic so oracle failures
// involving them replay exactly.

/**
 * Append `extra` calls to the sequence, cycling through the calls
 * already present (so no new function becomes called and existing
 * schedules stay valid).
 */
Workload appendCalls(const Workload &w, std::size_t extra);

/**
 * Multiply every compile and execution time by k (k >= 1).  The
 * simulator is integer-exact, so make-spans of fixed schedules scale
 * by exactly k (the metamorphic relation the oracle checks).
 */
Workload scaleCosts(const Workload &w, Tick k);

/** Remove call at `index` (sequence must keep at least one call). */
Workload dropCall(const Workload &w, std::size_t index);

/**
 * Remove function `f` from the table (must be uncalled), remapping
 * the ids above it down by one.
 */
Workload dropFunction(const Workload &w, FuncId f);

/**
 * Remove level `l` of function `f` (the function must keep at least
 * one level).
 */
Workload dropLevel(const Workload &w, FuncId f, Level l);

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_FUZZ_WORKLOAD_HH
