/**
 * @file
 * Byte-level fuzzing of the service wire protocol plus a
 * deterministic fault injector for the loopback server.
 *
 * Two layers, mirroring how a hostile client can hurt the daemon:
 *
 *  - Parser harness: arbitrary bytes through every non-fatal frame
 *    parser (tryReadRequest / tryReadResponse / the stats pair,
 *    which embed trace_io's tryReadWorkload).  The contract is
 *    "reject or parse, never crash, never allocate by declared
 *    size"; successful parses must additionally round-trip (parse →
 *    serialize → parse → serialize is a fixpoint) and serve without
 *    taking the engine down.
 *
 *  - Loopback injector: a real in-process ServiceServer attacked
 *    over TCP with mutated frames, writes split at arbitrary byte
 *    boundaries, mid-frame disconnects, and oversize declared
 *    counts.  The server must answer every terminated frame with a
 *    parseable response (or deliberately drop the connection), stay
 *    up, keep the connection usable after an error, and keep its
 *    answers byte-identical to a direct library call.
 */

#ifndef JITSCHED_QA_PROTO_FUZZ_HH
#define JITSCHED_QA_PROTO_FUZZ_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qa/fuzz_workload.hh"
#include "qa/oracles.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {

/**
 * Run @p bytes through all four frame parsers and append any
 * contract violation.  With @p serve_parsed, frames that parse as
 * requests (and carry a sane call count) are also served by a
 * process-local ServiceEngine — a parse-accepting input must never
 * crash the solve path either.
 */
void checkProtocolBytes(const std::string &bytes,
                        std::vector<Violation> &out,
                        bool serve_parsed = true);

/** A valid request frame over a random fuzz workload. */
std::string randomRequestFrame(Rng &rng, const FuzzDomain &domain);

/**
 * One random byte-level mutation: truncation, byte flip, line
 * duplication/deletion/swap, garbage insertion, frame splicing, or
 * an oversize declared count (`calls`/`schedule`/`snapshot`).
 */
std::string mutateFrameBytes(const std::string &frame, Rng &rng);

/** Aggregate counters from a protocol fuzz run. */
struct ProtoFuzzStats
{
    std::uint64_t parserCases = 0;
    std::uint64_t loopbackCases = 0;
    std::uint64_t served = 0;       ///< loopback frames answered
    std::uint64_t disconnects = 0;  ///< injector-forced disconnects
};

/**
 * The loopback fault injector.  Construction starts an in-process
 * daemon on an ephemeral loopback port; each runCase() drives one
 * adversarial connection scenario against it.
 */
class LoopbackFuzzer
{
  public:
    LoopbackFuzzer();
    ~LoopbackFuzzer();

    LoopbackFuzzer(const LoopbackFuzzer &) = delete;
    LoopbackFuzzer &operator=(const LoopbackFuzzer &) = delete;

    /** False when the server failed to start (error() says why). */
    bool ok() const;
    const std::string &error() const;

    /**
     * Run one injection scenario, appending violations.  Scenario
     * choice and all payloads come from @p rng, so a failing case
     * replays from its (seed, case) pair alone.
     */
    void runCase(Rng &rng, const FuzzDomain &domain,
                 std::vector<Violation> &out, ProtoFuzzStats *stats);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_PROTO_FUZZ_HH
