#include "qa/corpus.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "qa/proto_fuzz.hh"
#include "trace/trace_io.hh"

namespace jitsched {
namespace qa {

namespace {

namespace fs = std::filesystem;

/** Turn free-form provenance text into `#`-prefixed header lines. */
std::string
commentHeader(const std::string &comment)
{
    if (comment.empty())
        return {};
    std::string out;
    std::istringstream is(comment);
    for (std::string line; std::getline(is, line);)
        out += "# " + line + "\n";
    return out;
}

std::string
writeCase(const std::string &dir, const std::string &file_name,
          const std::string &content, std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (error != nullptr)
            *error = "cannot create " + dir + ": " + ec.message();
        return {};
    }
    const std::string path = dir + "/" + file_name;
    std::ofstream os(path, std::ios::binary);
    os << content;
    os.flush();
    if (!os) {
        if (error != nullptr)
            *error = "cannot write " + path;
        return {};
    }
    return path;
}

} // anonymous namespace

std::string
writeWorkloadCase(const std::string &dir, const std::string &name,
                  const Workload &w, const std::string &comment,
                  std::string *error)
{
    std::ostringstream os;
    os << commentHeader(comment);
    writeWorkload(os, w);
    return writeCase(dir, name + ".workload", os.str(), error);
}

std::string
writeFrameCase(const std::string &dir, const std::string &name,
               const std::string &frame_bytes,
               const std::string &comment, std::string *error)
{
    return writeCase(dir, name + ".frame",
                     commentHeader(comment) + frame_bytes, error);
}

ReplayResult
replayFile(const std::string &path, const OracleConfig &cfg)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return {false, "cannot open " + path};
    }

    const fs::path p(path);
    if (p.extension() == ".workload") {
        std::string error;
        const auto w = tryReadWorkload(is, &error);
        if (!w.has_value())
            return {false, path + ": workload parse: " + error};
        const std::vector<Violation> violations = checkAll(*w, cfg);
        if (!violations.empty())
            return {false, path + ":\n" +
                               describeViolations(violations)};
        return {true, {}};
    }
    if (p.extension() == ".frame") {
        std::ostringstream buf;
        buf << is.rdbuf();
        std::vector<Violation> violations;
        checkProtocolBytes(buf.str(), violations,
                           /*serve_parsed=*/true);
        if (!violations.empty())
            return {false, path + ":\n" +
                               describeViolations(violations)};
        return {true, {}};
    }
    return {false, "unknown corpus extension on " + path +
                       " (expected .workload or .frame)"};
}

} // namespace qa
} // namespace jitsched
