#include "qa/minimize.hh"

#include <algorithm>
#include <vector>

#include "qa/fuzz_workload.hh"
#include "support/logging.hh"

namespace jitsched {
namespace qa {

namespace {

/** Drop calls [begin, begin+len) in one step. */
Workload
dropCallRange(const Workload &w, std::size_t begin, std::size_t len)
{
    std::vector<FuncId> calls = w.calls();
    calls.erase(calls.begin() + begin, calls.begin() + begin + len);
    return Workload(w.name(),
                    std::vector<FunctionProfile>(w.functions()),
                    std::move(calls));
}

} // anonymous namespace

Workload
minimizeWorkload(Workload w, const FailPredicate &still_fails,
                 std::uint64_t max_probes, MinimizeStats *stats)
{
    MinimizeStats local;
    local.callsBefore = w.numCalls();
    local.functionsBefore = w.numFunctions();

    const auto probe = [&](const Workload &candidate) {
        ++local.probes;
        return still_fails(candidate);
    };
    const auto budget_left = [&] {
        return local.probes < max_probes;
    };

    // Phase 1: remove call chunks, halving the chunk size down to 1.
    for (std::size_t chunk = std::max<std::size_t>(w.numCalls() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool shrunk = true;
        while (shrunk && budget_left()) {
            shrunk = false;
            for (std::size_t begin = 0;
                 begin + chunk <= w.numCalls() && budget_left();) {
                if (w.numCalls() - chunk < 1)
                    break; // keep at least one call
                Workload candidate = dropCallRange(w, begin, chunk);
                if (probe(candidate)) {
                    w = std::move(candidate);
                    shrunk = true;
                } else {
                    begin += chunk;
                }
            }
        }
        if (chunk == 1)
            break;
    }

    // Phase 2: drop functions that lost all their calls.
    for (FuncId f = 0; f < w.numFunctions() && budget_left();) {
        if (w.numFunctions() > 1 && w.callCount(f) == 0) {
            Workload candidate = dropFunction(w, f);
            if (probe(candidate)) {
                w = std::move(candidate);
                continue; // same index now names the next function
            }
        }
        ++f;
    }

    // Phase 3: drop optimization levels, highest first.
    bool level_dropped = true;
    while (level_dropped && budget_left()) {
        level_dropped = false;
        for (FuncId f = 0; f < w.numFunctions() && budget_left();
             ++f) {
            while (w.function(f).numLevels() > 1 && budget_left()) {
                Workload candidate = dropLevel(
                    w, f,
                    static_cast<Level>(w.function(f).numLevels() - 1));
                if (!probe(candidate))
                    break;
                w = std::move(candidate);
                level_dropped = true;
            }
        }
    }

    local.callsAfter = w.numCalls();
    local.functionsAfter = w.numFunctions();
    if (stats != nullptr)
        *stats = local;
    return w;
}

} // namespace qa
} // namespace jitsched
