/**
 * @file
 * jitsched-fuzz — the differential fuzzing driver.
 *
 * Subcommands:
 *
 *   solvers    random + mutated OCSP instances through the full
 *              cross-solver oracle chain (qa/oracles.hh)
 *   protocol   byte-level parser fuzzing plus the loopback fault
 *              injector against a live in-process daemon
 *   cluster    fault injection against a live in-process cluster
 *              (backends + tarpit + router): kills, hangs, mangled
 *              frames — see qa/cluster_fuzz.hh
 *   result-cache
 *              byte-identity differential for the request-level
 *              result cache: published bodies and snapshot round
 *              trips must match fresh solves exactly — see
 *              qa/result_cache_fuzz.hh
 *   replay     re-run corpus files (*.workload / *.frame) through
 *              the oracles appropriate to their extension
 *
 * Every case is driven by Rng::caseStream(seed, case), so a failure
 * is reproducible from the `--seed` value and the printed case id
 * alone.  On the first failure the driver stops, greedily minimizes
 * the case, writes a reproducer file into `--corpus-dir`, and exits
 * nonzero — the file replays directly with `jitsched-fuzz replay`.
 *
 * Usage:
 *   jitsched-fuzz solvers  [--seconds S] [--iterations N] [--seed K]
 *                          [--corpus-dir D] [--no-exact]
 *                          [--break-oracle lower-bound|astar-par]
 *   jitsched-fuzz protocol [--seconds S] [--iterations N] [--seed K]
 *                          [--corpus-dir D]
 *   jitsched-fuzz cluster  [--seconds S] [--iterations N] [--seed K]
 *                          [--corpus-dir D]
 *   jitsched-fuzz result-cache
 *                          [--seconds S] [--iterations N] [--seed K]
 *                          [--corpus-dir D]
 *                          [--break-oracle result-cache]
 *   jitsched-fuzz replay <case-file>...
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qa/cluster_fuzz.hh"
#include "qa/corpus.hh"
#include "qa/fuzz_workload.hh"
#include "qa/minimize.hh"
#include "qa/oracles.hh"
#include "qa/proto_fuzz.hh"
#include "qa/result_cache_fuzz.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strutil.hh"

using namespace jitsched;
using namespace jitsched::qa;

namespace {

[[noreturn]] void
usage(int rc)
{
    std::cerr <<
        "usage: jitsched-fuzz "
        "<solvers|protocol|cluster|result-cache|replay> [options]\n"
        "  --seconds S        wall-clock budget (default 10)\n"
        "  --iterations N     case budget; 0 = until time runs out\n"
        "                     (default 0)\n"
        "  --seed K           base seed (default 1); case i draws\n"
        "                     from Rng::caseStream(K, i)\n"
        "  --corpus-dir D     reproducer directory (default\n"
        "                     fuzz-corpus)\n"
        "  --no-exact         solvers: skip brute force and A*\n"
        "  --break-oracle lower-bound\n"
        "                     solvers: deliberately invert the\n"
        "                     lower-bound oracle; the run must FAIL\n"
        "                     (harness self-check)\n"
        "  --break-oracle astar-par\n"
        "                     solvers: deliberately perturb the\n"
        "                     parallel A*'s reported cost; the run\n"
        "                     must FAIL (harness self-check)\n"
        "  --break-oracle result-cache\n"
        "                     result-cache: deliberately corrupt one\n"
        "                     byte of the published body; the run\n"
        "                     must FAIL (harness self-check)\n"
        "  replay <file>...   re-run corpus files; nonzero on any\n"
        "                     failure\n";
    std::exit(rc);
}

struct FuzzArgs
{
    std::string command;
    double seconds = 10.0;
    std::uint64_t iterations = 0; // 0 = unbounded
    std::uint64_t seed = 1;
    std::string corpusDir = "fuzz-corpus";
    bool noExact = false;
    bool breakLowerBound = false;
    bool breakAstarPar = false;
    bool breakResultCache = false;
    std::vector<std::string> files;
};

std::uint64_t
intArg(const std::string &flag, const std::string &value)
{
    const auto v = parseInt(value);
    if (!v || *v < 0)
        JITSCHED_FATAL(flag, " needs a non-negative integer, got '",
                       value, "'");
    return static_cast<std::uint64_t>(*v);
}

FuzzArgs
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    FuzzArgs args;
    args.command = argv[1];
    if (args.command == "--help" || args.command == "-h")
        usage(0);
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                JITSCHED_FATAL(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--seconds") {
            args.seconds =
                static_cast<double>(intArg(arg, next()));
        } else if (arg == "--iterations") {
            args.iterations = intArg(arg, next());
        } else if (arg == "--seed") {
            args.seed = intArg(arg, next());
        } else if (arg == "--corpus-dir") {
            args.corpusDir = next();
        } else if (arg == "--no-exact") {
            args.noExact = true;
        } else if (arg == "--break-oracle") {
            const std::string which = next();
            if (which == "lower-bound")
                args.breakLowerBound = true;
            else if (which == "astar-par")
                args.breakAstarPar = true;
            else if (which == "result-cache")
                args.breakResultCache = true;
            else
                JITSCHED_FATAL("--break-oracle knows 'lower-bound', "
                               "'astar-par' and 'result-cache', "
                               "got '", which, "'");
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "jitsched-fuzz: unknown option '" << arg
                      << "'\n";
            usage(2);
        } else {
            args.files.push_back(arg);
        }
    }
    return args;
}

/** Simple wall-clock + iteration budget. */
class Budget
{
  public:
    Budget(double seconds, std::uint64_t iterations)
        : deadline_(std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds))),
          iterations_(iterations)
    {
    }

    bool
    more(std::uint64_t done) const
    {
        if (iterations_ != 0 && done >= iterations_)
            return false;
        return std::chrono::steady_clock::now() < deadline_;
    }

  private:
    std::chrono::steady_clock::time_point deadline_;
    std::uint64_t iterations_;
};

/** The instance for one solvers-mode case: random, then mutated. */
Workload
solverCase(Rng &rng, const FuzzDomain &domain)
{
    Workload w = randomWorkload(rng, domain);
    const std::uint64_t mutations = rng.nextBelow(4);
    for (std::uint64_t m = 0; m < mutations; ++m)
        w = mutateWorkload(w, rng, domain);
    return w;
}

int
runSolvers(const FuzzArgs &args)
{
    OracleConfig cfg;
    cfg.runExact = !args.noExact;
    cfg.invertLowerBound = args.breakLowerBound;
    cfg.perturbAstarPar = args.breakAstarPar;
    const FuzzDomain domain;
    const Budget budget(args.seconds, args.iterations);
    OracleStats ostats;
    std::uint64_t cases = 0;

    for (; budget.more(cases); ++cases) {
        Rng rng = Rng::caseStream(args.seed, cases);
        const Workload w = solverCase(rng, domain);
        const std::vector<Violation> violations =
            checkAll(w, cfg, &ostats);
        if (violations.empty())
            continue;

        std::cerr << "jitsched-fuzz: solvers case " << cases
                  << " (seed " << args.seed << ") FAILED:\n"
                  << describeViolations(violations);

        const FailPredicate still_fails =
            [&](const Workload &candidate) {
                return !checkAll(candidate, cfg).empty();
            };
        MinimizeStats mstats;
        const Workload minimal =
            minimizeWorkload(w, still_fails, 2000, &mstats);
        std::cerr << "minimized: " << mstats.callsBefore << " -> "
                  << mstats.callsAfter << " calls, "
                  << mstats.functionsBefore << " -> "
                  << mstats.functionsAfter << " functions ("
                  << mstats.probes << " probes)\n";

        std::ostringstream comment;
        comment << "jitsched-fuzz solvers reproducer\n"
                << "seed " << args.seed << " case " << cases << "\n"
                << describeViolations(
                       checkAll(minimal, cfg)); // post-minimize
        std::string error;
        const std::string path = writeWorkloadCase(
            args.corpusDir,
            "solvers-seed" + std::to_string(args.seed) + "-case" +
                std::to_string(cases),
            minimal, comment.str(), &error);
        if (path.empty())
            std::cerr << "jitsched-fuzz: cannot write reproducer: "
                      << error << "\n";
        else
            std::cerr << "reproducer: " << path
                      << " (replay with: jitsched-fuzz replay "
                      << path << ")\n";
        return 1;
    }

    std::cout << "jitsched-fuzz solvers: " << cases
              << " cases clean (seed " << args.seed << ", "
              << ostats.exactRuns << " exact solves, "
              << ostats.exactSkipped << " budget-skipped)\n";
    return 0;
}

/**
 * Greedy line-drop minimization of a failing byte case: keep
 * deleting lines while the parser harness still reports a violation.
 */
std::string
minimizeFrameBytes(std::string bytes)
{
    const auto fails = [](const std::string &candidate) {
        std::vector<Violation> v;
        checkProtocolBytes(candidate, v);
        return !v.empty();
    };
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        std::vector<std::string> lines;
        std::istringstream is(bytes);
        for (std::string line; std::getline(is, line);)
            lines.push_back(line);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            std::string candidate;
            for (std::size_t j = 0; j < lines.size(); ++j)
                if (j != i)
                    candidate += lines[j] + "\n";
            if (fails(candidate)) {
                bytes = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    return bytes;
}

int
runProtocol(const FuzzArgs &args)
{
    const FuzzDomain domain;
    LoopbackFuzzer injector;
    if (!injector.ok())
        JITSCHED_FATAL("loopback server failed to start: ",
                       injector.error());
    const Budget budget(args.seconds, args.iterations);
    ProtoFuzzStats stats;
    std::uint64_t cases = 0;

    for (; budget.more(cases); ++cases) {
        Rng rng = Rng::caseStream(args.seed, cases);
        std::vector<Violation> violations;

        // Parser harness: a valid frame put through 0-3 byte-level
        // mutations, then every non-fatal parser.
        std::string bytes = randomRequestFrame(rng, domain);
        const std::uint64_t mutations = rng.nextBelow(4);
        for (std::uint64_t m = 0; m < mutations; ++m)
            bytes = mutateFrameBytes(bytes, rng);
        checkProtocolBytes(bytes, violations);
        ++stats.parserCases;
        const bool parser_failed = !violations.empty();

        // Loopback injector: one adversarial connection scenario.
        if (!parser_failed)
            injector.runCase(rng, domain, violations, &stats);

        if (violations.empty())
            continue;

        std::cerr << "jitsched-fuzz: protocol case " << cases
                  << " (seed " << args.seed << ") FAILED:\n"
                  << describeViolations(violations);

        std::ostringstream comment;
        comment << "jitsched-fuzz protocol reproducer\n"
                << "seed " << args.seed << " case " << cases << "\n"
                << (parser_failed
                        ? "parser harness bytes below"
                        : "loopback scenario; bytes below are the "
                          "case's parser-harness input — replay the "
                          "scenario itself from the (seed, case) "
                          "pair")
                << "\n"
                << describeViolations(violations);
        if (parser_failed)
            bytes = minimizeFrameBytes(bytes);
        std::string error;
        const std::string path = writeFrameCase(
            args.corpusDir,
            "protocol-seed" + std::to_string(args.seed) + "-case" +
                std::to_string(cases),
            bytes, comment.str(), &error);
        if (path.empty())
            std::cerr << "jitsched-fuzz: cannot write reproducer: "
                      << error << "\n";
        else
            std::cerr << "reproducer: " << path << "\n";
        return 1;
    }

    std::cout << "jitsched-fuzz protocol: " << cases
              << " cases clean (seed " << args.seed << ", "
              << stats.parserCases << " parser, "
              << stats.loopbackCases << " loopback, " << stats.served
              << " served, " << stats.disconnects
              << " forced disconnects)\n";
    return 0;
}

int
runCluster(const FuzzArgs &args)
{
    const FuzzDomain domain;
    ClusterFuzzer injector;
    if (!injector.ok())
        JITSCHED_FATAL("cluster failed to start: ",
                       injector.error());
    const Budget budget(args.seconds, args.iterations);
    ClusterFuzzStats stats;
    std::uint64_t cases = 0;

    for (; budget.more(cases); ++cases) {
        Rng rng = Rng::caseStream(args.seed, cases);
        std::vector<Violation> violations;
        injector.runCase(rng, domain, violations, &stats);
        if (violations.empty())
            continue;

        std::cerr << "jitsched-fuzz: cluster case " << cases
                  << " (seed " << args.seed << ") FAILED:\n"
                  << describeViolations(violations);
        // Cluster scenarios are stateful (kills, health machines);
        // the reproducer is the (seed, case) pair, not a byte file.
        std::cerr << "replay with: jitsched-fuzz cluster --seed "
                  << args.seed << " --iterations " << (cases + 1)
                  << "\n";
        return 1;
    }

    std::cout << "jitsched-fuzz cluster: " << cases
              << " cases clean (seed " << args.seed << ", "
              << stats.served << " served, " << stats.kills
              << " kills, " << stats.readmissions
              << " re-admissions, " << stats.mangled
              << " mangled frames)\n";
    return 0;
}

int
runResultCache(const FuzzArgs &args)
{
    const FuzzDomain domain;
    ResultCacheFuzzer fuzzer(args.corpusDir +
                             "/result-cache.snapshot.tmp");
    const Budget budget(args.seconds, args.iterations);
    ResultCacheFuzzStats stats;
    std::uint64_t cases = 0;

    for (; budget.more(cases); ++cases) {
        Rng rng = Rng::caseStream(args.seed, cases);
        std::vector<Violation> violations;
        fuzzer.runCase(rng, domain, violations, &stats,
                       args.breakResultCache);
        if (violations.empty())
            continue;

        std::cerr << "jitsched-fuzz: result-cache case " << cases
                  << " (seed " << args.seed << ") FAILED:\n"
                  << describeViolations(violations);
        // The case is fully determined by (seed, case); replay it by
        // bounding the iteration count.
        std::cerr << "replay with: jitsched-fuzz result-cache --seed "
                  << args.seed << " --iterations " << (cases + 1)
                  << "\n";
        return 1;
    }

    std::cout << "jitsched-fuzz result-cache: " << cases
              << " cases clean (seed " << args.seed << ", "
              << stats.published << " published, " << stats.storeHits
              << " store identities, " << stats.roundTrips
              << " snapshot round trips, " << stats.errorSkips
              << " error skips)\n";
    return 0;
}

int
runReplay(const FuzzArgs &args)
{
    if (args.files.empty())
        JITSCHED_FATAL("replay needs at least one corpus file");
    OracleConfig cfg;
    cfg.runExact = !args.noExact;
    int failures = 0;
    for (const std::string &file : args.files) {
        const ReplayResult result = replayFile(file, cfg);
        if (result.ok) {
            std::cout << "PASS " << file << "\n";
        } else {
            ++failures;
            std::cout << "FAIL " << file << "\n"
                      << result.detail << "\n";
        }
    }
    std::cout << "jitsched-fuzz replay: "
              << (args.files.size() - failures) << "/"
              << args.files.size() << " passed\n";
    return failures == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const FuzzArgs args = parseArgs(argc, argv);
    if (args.command == "solvers")
        return runSolvers(args);
    if (args.command == "protocol")
        return runProtocol(args);
    if (args.command == "cluster")
        return runCluster(args);
    if (args.command == "result-cache")
        return runResultCache(args);
    if (args.command == "replay")
        return runReplay(args);
    std::cerr << "jitsched-fuzz: unknown command '" << args.command
              << "'\n";
    usage(2);
}
