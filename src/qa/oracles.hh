/**
 * @file
 * Machine-checkable invariants over the scheduler stack — the one
 * place that defines what "correct" means across solvers, the
 * make-span simulator, and their aggressive shortcuts.
 *
 * The paper's comparative study only makes sense if all seven
 * schedulers are measured against a single simulation semantics
 * (Sec. 3) and if the exact solvers really are exact (Sec. 5.3).
 * Each oracle below encodes one such cross-cutting fact:
 *
 *   schedule validity   every schedule a solver emits is legal and,
 *                       when replayed, every call runs the latest
 *                       compilation of its function that completed
 *                       at or before the call's start (checked by an
 *                       independent re-derivation, not by trusting
 *                       the simulator's own bookkeeping)
 *   decomposition       execEnd == totalExec + totalBubble, makespan
 *                       == execEnd, per-level call counts sum to N
 *   lower bound         lowerBoundAllLevels <= every make-span
 *                       (Sec. 5.2: the execution thread must at
 *                       least run every call at its fastest level)
 *   exactness           bruteForce == A* (incremental) == A*
 *                       (from-scratch) on small instances — guards
 *                       the prefix-resume and duplicate-state
 *                       pruning shortcuts in core/astar.cc
 *   approximation order optimal <= IAR <= base-level, and
 *                       optionally IAR <= opt-only on the shapes
 *                       where the paper's Formula-2 classification
 *                       is robust
 *   metamorphic         appending calls never decreases a fixed
 *                       schedule's make-span or the lower bound;
 *                       scaling all times by k scales both by
 *                       exactly k (the simulator is integer-exact);
 *                       more compile cores never slow a static
 *                       schedule (Sec. 6.2.3)
 *
 * Tests (tests/exec/test_differential.cc, tests/core/test_astar.cc,
 * tests/integration/test_properties.cc) and the fuzzer
 * (jitsched-fuzz) share these definitions, so there is exactly one
 * notion of a valid schedule in the tree.
 */

#ifndef JITSCHED_QA_ORACLES_HH
#define JITSCHED_QA_ORACLES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hh"
#include "support/types.hh"
#include "trace/workload.hh"

namespace jitsched {
namespace qa {

/** One invariant violation: which oracle fired, and the evidence. */
struct Violation
{
    std::string oracle; ///< stable oracle name, e.g. "lower-bound"
    std::string detail; ///< human-readable evidence
};

/** Which oracles run and their resource guards. */
struct OracleConfig
{
    /** Run the exact solvers (brute force + two A* variants). */
    bool runExact = true;

    /**
     * Skip the exact oracles above this many *called* functions —
     * the search space is exponential (Sec. 6.2.5) and the paper's
     * own exact runs died past 6 unique methods.
     */
    std::size_t maxExactFunctions = 6;

    /** Node budget for the exhaustive search; incomplete => skip. */
    std::uint64_t bruteMaxNodes = 2'000'000;

    /** Expansion cap for both A* runs; cap hit => skip. */
    std::uint64_t astarMaxExpansions = 200'000;

    /** A* node-store budget in bytes; OOM => skip. */
    std::uint64_t astarMemoryBudget = 256ull << 20;

    /**
     * Also run the parallel search (core/astar_par.cc) at 1, 2 and
     * 8 workers and require its cost to match the sequential A* and
     * brute force bit for bit — the determinism contract of the
     * hash-distributed decomposition.  Runs only when the exact
     * oracles run (same function-count and budget guards).
     */
    bool runParallel = true;

    /**
     * Also require IAR <= opt-only.  The paper's advantage over the
     * optimizing-only scheme is an *empirical* claim for its
     * Jikes-like two-candidate setting, not a theorem; enable only
     * on shapes where it is robust (2-level, non-interpreter).
     */
    bool checkIarVsOptOnly = false;

    /** Run the metamorphic relations (append / scale / cores). */
    bool checkMetamorphic = true;

    /**
     * Deliberately invert the lower-bound comparison (assert
     * lb >= make-span).  A test-the-tester hook: a healthy stack
     * must make this fire almost immediately, proving the fuzzer
     * would notice a genuinely broken oracle.  Never set outside
     * harness self-checks.
     */
    bool invertLowerBound = false;

    /**
     * Deliberately shift the parallel search's reported make-span by
     * one tick before the differential comparison.  The astar-par
     * counterpart of invertLowerBound: a healthy stack must flag the
     * perturbed cost against both the sequential A* and the
     * simulator, proving the parallel differential has teeth.  Never
     * set outside harness self-checks.
     */
    bool perturbAstarPar = false;
};

/** Counters describing what one oracle pass actually exercised. */
struct OracleStats
{
    std::uint64_t exactRuns = 0;    ///< instances solved exactly
    std::uint64_t exactSkipped = 0; ///< budget-skipped exact runs
};

/**
 * Independent re-derivation of the Sec. 3 semantics for one compile
 * core: compile completions by prefix sum over the event order, each
 * call starting at max(previous end, first completion of its
 * function) and running the latest completion at or before its
 * start.  Deliberately shares no code with sim/makespan.cc.
 */
Tick referenceMakespan(const Workload &w, const Schedule &s);

/**
 * Schedule validity + simulator agreement for one schedule: the
 * schedule validates, simulate() matches referenceMakespan(), the
 * time decomposition holds, and every call used the right compiled
 * version.  @p who names the producing solver in violation reports.
 */
void checkScheduleSemantics(const Workload &w, const Schedule &s,
                            const std::string &who,
                            std::vector<Violation> &out);

/**
 * The cross-solver quality chain on one instance:
 * lb <= [bruteForce == A* == A*-scratch <=] IAR <= base-level, with
 * every emitted schedule passing checkScheduleSemantics and every
 * solver's self-reported make-span matching the simulator.
 */
void checkQualityChain(const Workload &w, const OracleConfig &cfg,
                       std::vector<Violation> &out,
                       OracleStats *stats = nullptr);

/**
 * Metamorphic relations: append-monotonicity, exact cost scaling,
 * and compile-core monotonicity, all on fixed schedules.
 */
void checkMetamorphicRelations(const Workload &w,
                               const OracleConfig &cfg,
                               std::vector<Violation> &out);

/** Run every oracle that applies to @p w. */
std::vector<Violation> checkAll(const Workload &w,
                                const OracleConfig &cfg = {},
                                OracleStats *stats = nullptr);

/** Render violations one per line for logs and test messages. */
std::string describeViolations(const std::vector<Violation> &violations);

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_ORACLES_HH
