/**
 * @file
 * Fault injection for the cluster layer: a live in-process cluster
 * (real backends + one tarpit + a Router, all on loopback TCP)
 * attacked with backend kills, hung backends, and byte-mangled
 * frames.
 *
 * The contract under attack is the router's: every terminated frame
 * a client sends gets exactly one well-formed response — for valid
 * requests, byte-identical (stats line aside) to a direct library
 * call — no matter which backends are dead, hung, or flapping.  The
 * tarpit backend (accepts connections, never answers) is a
 * permanent member of the ring, so the per-try deadline and
 * failover path run on real sockets in almost every case; killed
 * backends must be ejected and, after restart, re-admitted by the
 * prober within a bounded wait.
 */

#ifndef JITSCHED_QA_CLUSTER_FUZZ_HH
#define JITSCHED_QA_CLUSTER_FUZZ_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qa/fuzz_workload.hh"
#include "qa/oracles.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {

/** Aggregate counters from a cluster fuzz run. */
struct ClusterFuzzStats
{
    std::uint64_t cases = 0;
    std::uint64_t served = 0;      ///< valid frames answered correctly
    std::uint64_t kills = 0;       ///< backend kills injected
    std::uint64_t readmissions = 0; ///< kill -> restart -> routable
    std::uint64_t mangled = 0;     ///< byte-mangled frames sent
};

/**
 * The cluster fault injector.  Construction starts the in-process
 * cluster; each runCase() drives one adversarial scenario against
 * the router's port.
 */
class ClusterFuzzer
{
  public:
    ClusterFuzzer();
    ~ClusterFuzzer();

    ClusterFuzzer(const ClusterFuzzer &) = delete;
    ClusterFuzzer &operator=(const ClusterFuzzer &) = delete;

    /** False when the cluster failed to start (error() says why). */
    bool ok() const;
    const std::string &error() const;

    /**
     * Run one injection scenario, appending violations.  Scenario
     * choice and all payloads come from @p rng, so a failing case
     * replays from its (seed, case) pair alone.
     */
    void runCase(Rng &rng, const FuzzDomain &domain,
                 std::vector<Violation> &out,
                 ClusterFuzzStats *stats);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_CLUSTER_FUZZ_HH
