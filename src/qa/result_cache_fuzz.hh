/**
 * @file
 * Differential oracle for the request-level result cache
 * (service/result_cache.hh).
 *
 * The cache's contract is byte identity: a cached answer must be
 * indistinguishable from a fresh solve except for the per-request
 * `id` and `trace-id` fields, which live outside the stored body.
 * Each fuzz case checks that contract end to end on a random
 * instance:
 *
 *   store      a fresh solve published under its canonical key must
 *              come back as a Hit for a second request that differs
 *              only in id / trace-id / deadline, and the stored body
 *              must equal the body of an *independent* fresh solve
 *              of that second request, byte for byte
 *   snapshot   a save → load round trip through the warm-restart
 *              snapshot file must preserve that identity exactly
 *
 * The `--break-oracle result-cache` canary flips one byte of the
 * published body; a healthy harness must flag the mismatch on the
 * very first store check (test-the-tester, like the lower-bound and
 * astar-par canaries).
 */

#ifndef JITSCHED_QA_RESULT_CACHE_FUZZ_HH
#define JITSCHED_QA_RESULT_CACHE_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "qa/fuzz_workload.hh"
#include "qa/oracles.hh"
#include "service/engine.hh"
#include "support/rng.hh"

namespace jitsched {
namespace qa {

/** Aggregate counters from a result-cache fuzz run. */
struct ResultCacheFuzzStats
{
    std::uint64_t cases = 0;      ///< cases driven
    std::uint64_t published = 0;  ///< ok solves published
    std::uint64_t storeHits = 0;  ///< store-identity checks passed
    std::uint64_t roundTrips = 0; ///< snapshot round trips checked
    std::uint64_t errorSkips = 0; ///< non-ok solves (nothing stored)
};

/**
 * The result-cache differential harness.  Holds one process-local
 * ServiceEngine (fresh solves) and a scratch snapshot path; each
 * runCase() drives one random instance through the store and
 * snapshot oracles above.  The scratch file is overwritten per case
 * and removed on destruction.
 */
class ResultCacheFuzzer
{
  public:
    /** @param snapshot_path scratch file for the round-trip check */
    explicit ResultCacheFuzzer(std::string snapshot_path);
    ~ResultCacheFuzzer();

    ResultCacheFuzzer(const ResultCacheFuzzer &) = delete;
    ResultCacheFuzzer &operator=(const ResultCacheFuzzer &) = delete;

    /**
     * Drive one case; violations append to @p out.  With
     * @p break_oracle the published body is perturbed by one byte —
     * the run must then FAIL (harness self-check).
     */
    void runCase(Rng &rng, const FuzzDomain &domain,
                 std::vector<Violation> &out,
                 ResultCacheFuzzStats *stats, bool break_oracle);

  private:
    ServiceEngine engine_;
    std::string snapshot_path_;
};

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_RESULT_CACHE_FUZZ_HH
