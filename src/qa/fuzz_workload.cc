#include "qa/fuzz_workload.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "trace/function_profile.hh"

namespace jitsched {
namespace qa {

namespace {

/** Random per-level costs satisfying c non-decreasing, e non-increasing. */
std::vector<LevelCosts>
randomLevels(Rng &rng, const FuzzDomain &domain, bool interpreter)
{
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.nextBelow(domain.maxLevels));
    std::vector<LevelCosts> levels(n);

    // Compile times grow from the base level up...
    Tick c = interpreter
                 ? 0
                 : static_cast<Tick>(rng.nextBelow(
                       static_cast<std::uint64_t>(domain.maxCompile)));
    for (std::size_t j = 0; j < n; ++j) {
        levels[j].compile = c;
        c += static_cast<Tick>(rng.nextBelow(
            static_cast<std::uint64_t>(domain.maxCompile) + 1));
    }

    // ...execution times grow from the top level down.
    Tick e = 1 + static_cast<Tick>(rng.nextBelow(
                     static_cast<std::uint64_t>(domain.maxExec)));
    for (std::size_t j = n; j-- > 0;) {
        levels[j].exec = e;
        e += static_cast<Tick>(rng.nextBelow(
            static_cast<std::uint64_t>(domain.maxExec) + 1));
    }
    return levels;
}

std::vector<FunctionProfile>
copyProfiles(const Workload &w)
{
    return w.functions();
}

std::vector<LevelCosts>
copyLevels(const FunctionProfile &p)
{
    std::vector<LevelCosts> levels(p.numLevels());
    for (std::size_t j = 0; j < p.numLevels(); ++j)
        levels[j] = p.level(static_cast<Level>(j));
    return levels;
}

Workload
rebuild(const Workload &w, std::vector<FunctionProfile> functions,
        std::vector<FuncId> calls)
{
    return Workload(w.name(), std::move(functions), std::move(calls));
}

/** Clamp scaled costs back onto the monotone lattice. */
std::vector<LevelCosts>
remonotonize(std::vector<LevelCosts> levels)
{
    for (std::size_t j = 1; j < levels.size(); ++j)
        levels[j].compile =
            std::max(levels[j].compile, levels[j - 1].compile);
    for (std::size_t j = levels.size() - 1; j-- > 0;)
        levels[j].exec = std::max(levels[j].exec, levels[j + 1].exec);
    return levels;
}

} // anonymous namespace

Workload
randomWorkload(Rng &rng, const FuzzDomain &domain)
{
    const std::size_t called =
        1 + static_cast<std::size_t>(
                rng.nextBelow(domain.maxFunctions));
    const bool extra_uncalled = rng.nextBool(domain.uncalledProb);
    const std::size_t total = called + (extra_uncalled ? 1 : 0);

    std::vector<FunctionProfile> functions;
    functions.reserve(total);
    for (std::size_t f = 0; f < total; ++f) {
        const bool interp = rng.nextBool(domain.interpreterProb);
        functions.emplace_back("f" + std::to_string(f),
                               static_cast<std::uint32_t>(
                                   1 + rng.nextBelow(256)),
                               randomLevels(rng, domain, interp));
    }

    const std::size_t n_calls =
        1 + static_cast<std::size_t>(rng.nextBelow(domain.maxCalls));
    std::vector<FuncId> calls(n_calls);
    for (std::size_t i = 0; i < n_calls; ++i)
        calls[i] = static_cast<FuncId>(rng.nextBelow(called));

    return Workload("fuzz", std::move(functions), std::move(calls));
}

Workload
mutateWorkload(const Workload &w, Rng &rng, const FuzzDomain &domain)
{
    const std::vector<FuncId> &calls = w.calls();
    switch (rng.nextBelow(6)) {
    case 0: { // splice: copy a call range to a random position
        if (calls.empty())
            return w;
        std::vector<FuncId> out = calls;
        const std::size_t a = rng.nextBelow(calls.size());
        const std::size_t b =
            a + 1 + rng.nextBelow(std::min<std::uint64_t>(
                        calls.size() - a, 6));
        const std::size_t at = rng.nextBelow(out.size() + 1);
        out.insert(out.begin() + at, calls.begin() + a,
                   calls.begin() + b);
        if (out.size() > domain.maxCalls * 2)
            out.resize(domain.maxCalls * 2);
        return rebuild(w, copyProfiles(w), std::move(out));
    }
    case 1: { // duplicate one call in place
        if (calls.empty())
            return w;
        std::vector<FuncId> out = calls;
        const std::size_t i = rng.nextBelow(calls.size());
        out.insert(out.begin() + i, calls[i]);
        return rebuild(w, copyProfiles(w), std::move(out));
    }
    case 2: { // drop one call
        if (calls.size() <= 1)
            return w;
        return dropCall(
            w, static_cast<std::size_t>(rng.nextBelow(calls.size())));
    }
    case 3: { // insert an interpolated level into one function
        const FuncId f =
            static_cast<FuncId>(rng.nextBelow(w.numFunctions()));
        const FunctionProfile &p = w.function(f);
        std::vector<LevelCosts> levels = copyLevels(p);
        const std::size_t at = rng.nextBelow(levels.size() + 1);
        LevelCosts nl;
        const Tick c_lo = at == 0 ? 0 : levels[at - 1].compile;
        const Tick c_hi = at == levels.size()
                              ? levels.back().compile + domain.maxCompile
                              : levels[at].compile;
        const Tick e_hi = at == 0 ? levels.front().exec + domain.maxExec
                                  : levels[at - 1].exec;
        const Tick e_lo = at == levels.size() ? 1 : levels[at].exec;
        nl.compile = static_cast<Tick>(
            rng.nextRange(c_lo, std::max(c_lo, c_hi)));
        nl.exec = static_cast<Tick>(
            rng.nextRange(std::min(e_lo, e_hi), std::max(e_lo, e_hi)));
        levels.insert(levels.begin() + at, nl);
        std::vector<FunctionProfile> functions = copyProfiles(w);
        functions[f] =
            FunctionProfile(p.name(), p.size(), std::move(levels));
        return rebuild(w, std::move(functions),
                       std::vector<FuncId>(calls));
    }
    case 4: { // drop one level of one function
        const FuncId f =
            static_cast<FuncId>(rng.nextBelow(w.numFunctions()));
        const FunctionProfile &p = w.function(f);
        if (p.numLevels() <= 1)
            return w;
        return dropLevel(w, f,
                         static_cast<Level>(
                             rng.nextBelow(p.numLevels())));
    }
    default: { // perturb one function's costs, re-monotonized
        const FuncId f =
            static_cast<FuncId>(rng.nextBelow(w.numFunctions()));
        const FunctionProfile &p = w.function(f);
        std::vector<LevelCosts> levels = copyLevels(p);
        const double factor = rng.nextDouble(0.5, 2.0);
        for (LevelCosts &lc : levels) {
            lc.compile = static_cast<Tick>(
                static_cast<double>(lc.compile) * factor);
            lc.exec = std::max<Tick>(
                1, static_cast<Tick>(
                       static_cast<double>(lc.exec) * factor));
        }
        std::vector<FunctionProfile> functions = copyProfiles(w);
        functions[f] = FunctionProfile(p.name(), p.size(),
                                       remonotonize(std::move(levels)));
        return rebuild(w, std::move(functions),
                       std::vector<FuncId>(calls));
    }
    }
}

Workload
appendCalls(const Workload &w, std::size_t extra)
{
    if (w.numCalls() == 0)
        JITSCHED_PANIC("appendCalls: empty call sequence");
    std::vector<FuncId> calls = w.calls();
    for (std::size_t i = 0; i < extra; ++i)
        calls.push_back(w.calls()[i % w.numCalls()]);
    return rebuild(w, copyProfiles(w), std::move(calls));
}

Workload
scaleCosts(const Workload &w, Tick k)
{
    if (k < 1)
        JITSCHED_PANIC("scaleCosts: k must be >= 1");
    std::vector<FunctionProfile> functions;
    functions.reserve(w.numFunctions());
    for (const FunctionProfile &p : w.functions()) {
        std::vector<LevelCosts> levels = copyLevels(p);
        for (LevelCosts &lc : levels) {
            lc.compile *= k;
            lc.exec *= k;
        }
        functions.emplace_back(p.name(), p.size(), std::move(levels));
    }
    return rebuild(w, std::move(functions),
                   std::vector<FuncId>(w.calls()));
}

Workload
dropCall(const Workload &w, std::size_t index)
{
    if (w.numCalls() <= 1)
        JITSCHED_PANIC("dropCall: would empty the call sequence");
    std::vector<FuncId> calls = w.calls();
    calls.erase(calls.begin() + index);
    return rebuild(w, copyProfiles(w), std::move(calls));
}

Workload
dropFunction(const Workload &w, FuncId f)
{
    if (w.callCount(f) != 0)
        JITSCHED_PANIC("dropFunction: function is called");
    std::vector<FunctionProfile> functions = copyProfiles(w);
    functions.erase(functions.begin() + f);
    std::vector<FuncId> calls = w.calls();
    for (FuncId &c : calls) {
        if (c > f)
            --c;
    }
    return rebuild(w, std::move(functions), std::move(calls));
}

Workload
dropLevel(const Workload &w, FuncId f, Level l)
{
    const FunctionProfile &p = w.function(f);
    if (p.numLevels() <= 1)
        JITSCHED_PANIC("dropLevel: function has a single level");
    std::vector<LevelCosts> levels = copyLevels(p);
    levels.erase(levels.begin() + l);
    std::vector<FunctionProfile> functions = copyProfiles(w);
    functions[f] = FunctionProfile(p.name(), p.size(), std::move(levels));
    return rebuild(w, std::move(functions),
                   std::vector<FuncId>(w.calls()));
}

} // namespace qa
} // namespace jitsched
