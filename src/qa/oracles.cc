#include "qa/oracles.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "core/astar.hh"
#include "core/astar_par.hh"
#include "core/brute_force.hh"
#include "core/candidate_levels.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "qa/fuzz_workload.hh"
#include "sim/makespan.hh"

namespace jitsched {
namespace qa {

namespace {

void
report(std::vector<Violation> &out, std::string oracle,
       std::string detail)
{
    out.push_back({std::move(oracle), std::move(detail)});
}

/** (completion, level) versions per function, independently timed. */
std::vector<std::vector<std::pair<Tick, Level>>>
versionTable(const Workload &w, const Schedule &s, Tick *compile_end)
{
    std::vector<std::vector<std::pair<Tick, Level>>> versions(
        w.numFunctions());
    Tick clock = 0;
    for (const CompileEvent &ev : s.events()) {
        clock += w.function(ev.func).compileTime(ev.level);
        versions[ev.func].push_back({clock, ev.level});
    }
    if (compile_end != nullptr)
        *compile_end = clock;
    return versions;
}

/** Per-event and per-call detail captured from the simulator. */
class Capture : public SimObserver
{
  public:
    struct CallRec
    {
        FuncId func;
        Tick start;
        Tick duration;
        Level level;
    };

    std::vector<Tick> compileDone;
    std::vector<CallRec> calls;

    void
    onCompiled(std::size_t, const CompileEvent &, Tick completion) override
    {
        compileDone.push_back(completion);
    }

    void
    onCall(std::size_t, FuncId f, Tick start, Tick duration,
           Level level_used) override
    {
        calls.push_back({f, start, duration, level_used});
    }
};

} // anonymous namespace

Tick
referenceMakespan(const Workload &w, const Schedule &s)
{
    const auto versions = versionTable(w, s, nullptr);
    Tick now = 0;
    for (const FuncId f : w.calls()) {
        const auto &vers = versions[f];
        const Tick start = std::max(now, vers.front().first);
        Level level = vers.front().second;
        for (const auto &[done, lvl] : vers) {
            if (done <= start)
                level = lvl;
            else
                break;
        }
        now = start + w.function(f).execTime(level);
    }
    return now;
}

void
checkScheduleSemantics(const Workload &w, const Schedule &s,
                       const std::string &who,
                       std::vector<Violation> &out)
{
    std::string err;
    if (!s.validate(w, &err)) {
        report(out, "schedule-valid", who + ": " + err);
        return; // simulate() would panic on an invalid schedule
    }

    Capture capture;
    const SimResult res = simulate(w, s, {}, capture);

    // Compile-side timing: one core, prefix sums — no CompileQueue.
    Tick compile_end = 0;
    const auto versions = versionTable(w, s, &compile_end);
    if (capture.compileDone.size() != s.size()) {
        report(out, "compile-timing",
               who + ": simulator reported " +
                   std::to_string(capture.compileDone.size()) +
                   " completions for " + std::to_string(s.size()) +
                   " events");
        return;
    }
    {
        Tick clock = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            clock += w.function(s[i].func).compileTime(s[i].level);
            if (capture.compileDone[i] != clock) {
                report(out, "compile-timing",
                       who + ": event " + std::to_string(i) +
                           " completed at " +
                           std::to_string(capture.compileDone[i]) +
                           ", expected " + std::to_string(clock));
                return;
            }
        }
    }
    if (res.compileEnd != compile_end)
        report(out, "compile-timing",
               who + ": compileEnd " + std::to_string(res.compileEnd) +
                   " != " + std::to_string(compile_end));

    // Execution side: every call must start as early as possible and
    // run the latest version completed at or before its start.
    if (capture.calls.size() != w.numCalls()) {
        report(out, "call-replay",
               who + ": simulator reported " +
                   std::to_string(capture.calls.size()) +
                   " calls for " + std::to_string(w.numCalls()));
        return;
    }
    Tick now = 0;
    Tick bubble = 0;
    std::uint64_t bubbles = 0;
    Tick exec = 0;
    for (std::size_t i = 0; i < w.numCalls(); ++i) {
        const FuncId f = w.calls()[i];
        const auto &vers = versions[f];
        const Tick start = std::max(now, vers.front().first);
        Level level = vers.front().second;
        for (const auto &[done, lvl] : vers) {
            if (done <= start)
                level = lvl;
            else
                break;
        }
        const Tick dur = w.function(f).execTime(level);
        const Capture::CallRec &got = capture.calls[i];
        if (got.start != start || got.level != level ||
            got.duration != dur) {
            report(out, "call-replay",
                   who + ": call " + std::to_string(i) + " of f" +
                       std::to_string(f) + " ran (start=" +
                       std::to_string(got.start) + ", level=" +
                       std::to_string(int(got.level)) + ", dur=" +
                       std::to_string(got.duration) +
                       "), expected (start=" + std::to_string(start) +
                       ", level=" + std::to_string(int(level)) +
                       ", dur=" + std::to_string(dur) + ")");
            return;
        }
        if (start > now) {
            bubble += start - now;
            ++bubbles;
        }
        exec += dur;
        now = start + dur;
    }

    // Aggregate agreement and the time decomposition.
    if (res.makespan != now)
        report(out, "sim-agreement",
               who + ": makespan " + std::to_string(res.makespan) +
                   " != reference " + std::to_string(now));
    if (res.makespan != res.execEnd)
        report(out, "decomposition",
               who + ": makespan != execEnd");
    if (res.execEnd != res.totalExec + res.totalBubble)
        report(out, "decomposition",
               who + ": execEnd " + std::to_string(res.execEnd) +
                   " != totalExec + totalBubble " +
                   std::to_string(res.totalExec + res.totalBubble));
    if (res.totalBubble != bubble || res.bubbleCount != bubbles)
        report(out, "decomposition",
               who + ": bubble accounting (" +
                   std::to_string(res.totalBubble) + ", " +
                   std::to_string(res.bubbleCount) +
                   ") != reference (" + std::to_string(bubble) + ", " +
                   std::to_string(bubbles) + ")");
    if (res.totalExec != exec)
        report(out, "decomposition",
               who + ": totalExec " + std::to_string(res.totalExec) +
                   " != reference " + std::to_string(exec));
    std::uint64_t at_levels = 0;
    for (const std::uint64_t c : res.callsAtLevel)
        at_levels += c;
    if (at_levels != w.numCalls())
        report(out, "decomposition",
               who + ": callsAtLevel sums to " +
                   std::to_string(at_levels) + " over " +
                   std::to_string(w.numCalls()) + " calls");
}

void
checkQualityChain(const Workload &w, const OracleConfig &cfg,
                  std::vector<Violation> &out, OracleStats *stats)
{
    const auto cands = oracleCandidateLevels(w);
    const Tick lb = lowerBoundAllLevels(w);

    const Schedule base = baseLevelSchedule(w, cands);
    const Schedule opt = optimizingLevelSchedule(w, cands);
    const Schedule iar = iarSchedule(w, cands).schedule;
    checkScheduleSemantics(w, base, "base-only", out);
    checkScheduleSemantics(w, opt, "opt-only", out);
    checkScheduleSemantics(w, iar, "iar", out);

    const Tick m_base = simulate(w, base).makespan;
    const Tick m_opt = simulate(w, opt).makespan;
    const Tick m_iar = simulate(w, iar).makespan;

    const auto checkLb = [&](const std::string &who, Tick m) {
        const bool ok = cfg.invertLowerBound ? lb >= m : lb <= m;
        if (!ok)
            report(out, "lower-bound",
                   who + ": make-span " + std::to_string(m) +
                       " vs lower bound " + std::to_string(lb) +
                       (cfg.invertLowerBound ? " (inverted oracle)"
                                             : ""));
    };
    checkLb("base-only", m_base);
    checkLb("opt-only", m_opt);
    checkLb("iar", m_iar);

    // IAR starts from the base-level schedule and only refines it.
    if (m_iar > m_base)
        report(out, "approximation-order",
               "iar " + std::to_string(m_iar) + " > base-only " +
                   std::to_string(m_base));
    if (cfg.checkIarVsOptOnly && m_iar > m_opt)
        report(out, "approximation-order",
               "iar " + std::to_string(m_iar) + " > opt-only " +
                   std::to_string(m_opt));

    if (!cfg.runExact ||
        w.numCalledFunctions() > cfg.maxExactFunctions)
        return;

    const BruteForceResult bf =
        bruteForceOptimal(w, {.maxNodes = cfg.bruteMaxNodes});
    AStarConfig acfg;
    acfg.memoryBudget = cfg.astarMemoryBudget;
    acfg.maxExpansions = cfg.astarMaxExpansions;
    const AStarResult as = aStarOptimal(w, acfg);
    AStarConfig scratch_cfg = acfg;
    scratch_cfg.incrementalEval = false;
    scratch_cfg.duplicateDetection = false;
    const AStarResult as_scratch = aStarOptimal(w, scratch_cfg);

    if (!bf.complete || as.status != AStarStatus::Optimal ||
        as_scratch.status != AStarStatus::Optimal) {
        if (stats != nullptr)
            ++stats->exactSkipped;
        return; // budget exhausted, not a correctness signal
    }
    if (stats != nullptr)
        ++stats->exactRuns;

    checkScheduleSemantics(w, bf.schedule, "brute-force", out);
    checkScheduleSemantics(w, as.schedule, "astar", out);

    // The solvers' own make-span accounting agrees with the
    // simulator's.
    if (simulate(w, bf.schedule).makespan != bf.makespan)
        report(out, "solver-accounting",
               "brute-force reported " + std::to_string(bf.makespan) +
                   ", simulator disagrees");
    if (simulate(w, as.schedule).makespan != as.makespan)
        report(out, "solver-accounting",
               "astar reported " + std::to_string(as.makespan) +
                   ", simulator disagrees");

    // Both exact solvers — and both A* evaluation modes, with and
    // without the prefix-resume + duplicate-pruning shortcuts — find
    // the same optimum.
    if (bf.makespan != as.makespan)
        report(out, "exactness",
               "brute-force " + std::to_string(bf.makespan) +
                   " != astar " + std::to_string(as.makespan));
    if (as.makespan != as_scratch.makespan)
        report(out, "exactness",
               "astar incremental " + std::to_string(as.makespan) +
                   " != astar from-scratch " +
                   std::to_string(as_scratch.makespan));

    // The hash-distributed parallel search finds the same cost at
    // every worker count — HDA* sharding, per-worker duplicate
    // tables and incumbent pruning must all be cost-preserving.
    if (cfg.runParallel) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
            AStarConfig pcfg;
            pcfg.memoryBudget = cfg.astarMemoryBudget;
            pcfg.maxExpansions = cfg.astarMaxExpansions;
            pcfg.threads = threads;
            const AStarResult par = aStarParallel(w, pcfg);
            if (par.status != AStarStatus::Optimal)
                continue; // anytime stop: budget, not correctness
            const std::string who =
                "astar-par(" + std::to_string(threads) + ")";
            const Tick reported =
                par.makespan + (cfg.perturbAstarPar ? 1 : 0);
            checkScheduleSemantics(w, par.schedule, who, out);
            if (simulate(w, par.schedule).makespan != reported)
                report(out, "solver-accounting",
                       who + " reported " + std::to_string(reported) +
                           ", simulator disagrees");
            if (reported != as.makespan)
                report(out, "exactness",
                       who + " " + std::to_string(reported) +
                           " != astar " +
                           std::to_string(as.makespan));
        }
    }

    const auto checkOptLb = [&](Tick m) {
        const bool ok = cfg.invertLowerBound ? lb >= m : lb <= m;
        if (!ok)
            report(out, "lower-bound",
                   "optimum " + std::to_string(m) +
                       " vs lower bound " + std::to_string(lb) +
                       (cfg.invertLowerBound ? " (inverted oracle)"
                                             : ""));
    };
    checkOptLb(bf.makespan);

    // The optimum bounds every approximation from below.
    for (const auto &[who, m] :
         {std::pair<const char *, Tick>{"iar", m_iar},
          {"base-only", m_base},
          {"opt-only", m_opt}}) {
        if (bf.makespan > m)
            report(out, "approximation-order",
                   std::string("optimum ") +
                       std::to_string(bf.makespan) + " > " + who +
                       " " + std::to_string(m));
    }
}

void
checkMetamorphicRelations(const Workload &w, const OracleConfig &cfg,
                          std::vector<Violation> &out)
{
    if (!cfg.checkMetamorphic)
        return;

    const auto cands = oracleCandidateLevels(w);
    const Schedule base = baseLevelSchedule(w, cands);
    const Schedule iar = iarSchedule(w, cands).schedule;
    const Tick lb = lowerBoundAllLevels(w);

    // Appending calls never decreases a fixed schedule's make-span
    // (each extra call only adds execution time at the tail) nor the
    // lower bound (one more fastest-level term in the sum).
    const Workload longer = appendCalls(w, 1 + w.numCalls() / 2);
    if (lowerBoundAllLevels(longer) < lb)
        report(out, "metamorphic-append",
               "lower bound dropped from " + std::to_string(lb) +
                   " to " +
                   std::to_string(lowerBoundAllLevels(longer)) +
                   " after appending calls");
    for (const auto &[who, s] :
         {std::pair<const char *, const Schedule &>{"base-only", base},
          {"iar", iar}}) {
        const Tick before = simulate(w, s).makespan;
        const Tick after = simulate(longer, s).makespan;
        if (after < before)
            report(out, "metamorphic-append",
                   std::string(who) + ": make-span dropped from " +
                       std::to_string(before) + " to " +
                       std::to_string(after) +
                       " after appending calls");
    }

    // Scaling every time by k scales make-spans and the bound by
    // exactly k — the simulator is integer tick arithmetic with no
    // division, so this is an equality, not an approximation.
    constexpr Tick k = 3;
    const Workload scaled = scaleCosts(w, k);
    if (lowerBoundAllLevels(scaled) != k * lb)
        report(out, "metamorphic-scale",
               "lower bound " + std::to_string(lb) + " scaled to " +
                   std::to_string(lowerBoundAllLevels(scaled)) +
                   ", expected " + std::to_string(k * lb));
    for (const auto &[who, s] :
         {std::pair<const char *, const Schedule &>{"base-only", base},
          {"iar", iar}}) {
        const Tick before = simulate(w, s).makespan;
        const Tick after = simulate(scaled, s).makespan;
        if (after != k * before)
            report(out, "metamorphic-scale",
                   std::string(who) + ": make-span " +
                       std::to_string(before) + " scaled to " +
                       std::to_string(after) + ", expected " +
                       std::to_string(k * before));
    }

    // More compile cores never slow a static schedule (Sec. 6.2.3).
    Tick prev = maxTick;
    for (const std::size_t cores : {1u, 2u, 4u}) {
        const Tick m =
            simulate(w, iar, {.compileCores = cores}).makespan;
        if (m > prev)
            report(out, "metamorphic-cores",
                   "iar make-span rose from " + std::to_string(prev) +
                       " to " + std::to_string(m) + " going to " +
                       std::to_string(cores) + " compile cores");
        prev = m;
    }
}

std::vector<Violation>
checkAll(const Workload &w, const OracleConfig &cfg,
         OracleStats *stats)
{
    std::vector<Violation> out;
    if (w.numCalls() == 0)
        return out; // no behaviour to check; solvers reject these
    checkQualityChain(w, cfg, out, stats);
    checkMetamorphicRelations(w, cfg, out);
    return out;
}

std::string
describeViolations(const std::vector<Violation> &violations)
{
    std::string text;
    for (const Violation &v : violations)
        text += "[" + v.oracle + "] " + v.detail + "\n";
    return text;
}

} // namespace qa
} // namespace jitsched
