#include "qa/proto_fuzz.hh"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "service/engine.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/socket_util.hh"

namespace jitsched {
namespace qa {

namespace {

void
report(std::vector<Violation> &out, std::string oracle,
       std::string detail)
{
    out.push_back({std::move(oracle), std::move(detail)});
}

/** Engine for serving parse-accepted fuzz requests in-process. */
ServiceEngine &
localEngine()
{
    static ServiceEngine engine;
    return engine;
}

/** Keep hostile option values from turning a fuzz case into a DoS. */
void
clampOptions(ServiceRequest &req)
{
    req.options.astarMaxExpansions =
        std::min<std::uint64_t>(req.options.astarMaxExpansions,
                                1'000'000);
    req.options.astarMemoryMb =
        std::min<std::uint64_t>(req.options.astarMemoryMb, 256);
    req.options.compileCores =
        std::max<std::size_t>(1,
                              std::min<std::size_t>(
                                  req.options.compileCores, 16));
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &line : lines)
        out += line + "\n";
    return out;
}

/** Drop the volatile `stats` line from a raw response frame. */
std::string
stripStats(const std::string &frame)
{
    std::string out;
    std::istringstream is(frame);
    for (std::string line; std::getline(is, line);) {
        if (line.rfind("stats ", 0) != 0)
            out += line + "\n";
    }
    return out;
}

} // anonymous namespace

void
checkProtocolBytes(const std::string &bytes,
                   std::vector<Violation> &out, bool serve_parsed)
{
    std::string err;

    // Request parser: reject or parse; parses must round-trip and
    // serve.
    {
        std::istringstream is(bytes);
        auto req = tryReadRequest(is, &err);
        if (req.has_value()) {
            const std::string t1 = requestText(*req);
            std::istringstream is2(t1);
            auto req2 = tryReadRequest(is2, &err);
            if (!req2.has_value()) {
                report(out, "proto-roundtrip",
                       "serialized accepted request failed to "
                       "reparse: " +
                           err);
            } else if (requestText(*req2) != t1) {
                report(out, "proto-roundtrip",
                       "request serialization is not a fixpoint");
            }
            if (serve_parsed && req->workload.numCalls() <= 512 &&
                req->workload.numFunctions() <= 16) {
                ServiceRequest capped = *req;
                clampOptions(capped);
                const ServiceResponse resp =
                    localEngine().serve(capped);
                const std::string r1 = responseText(resp);
                std::istringstream rs(r1);
                auto back = tryReadResponse(rs, &err);
                if (!back.has_value()) {
                    report(out, "proto-roundtrip",
                           "served response failed to reparse: " +
                               err);
                } else if (responseText(*back) != r1) {
                    report(out, "proto-roundtrip",
                           "response serialization is not a "
                           "fixpoint");
                }
            }
        }
    }

    // Response parser.
    {
        std::istringstream is(bytes);
        auto resp = tryReadResponse(is, &err);
        if (resp.has_value()) {
            const std::string t1 = responseText(*resp);
            std::istringstream is2(t1);
            auto resp2 = tryReadResponse(is2, &err);
            if (!resp2.has_value())
                report(out, "proto-roundtrip",
                       "serialized accepted response failed to "
                       "reparse: " +
                           err);
            else if (responseText(*resp2) != t1)
                report(out, "proto-roundtrip",
                       "response serialization is not a fixpoint");
        }
    }

    // Stats frames (scrape request and snapshot response).
    {
        std::istringstream is(bytes);
        auto sreq = tryReadStatsRequest(is, &err);
        if (sreq.has_value()) {
            const std::string t1 = statsRequestText(*sreq);
            std::istringstream is2(t1);
            if (!tryReadStatsRequest(is2, &err).has_value())
                report(out, "proto-roundtrip",
                       "serialized stats request failed to "
                       "reparse: " +
                           err);
        }
    }
    {
        std::istringstream is(bytes);
        auto sresp = tryReadStatsResponse(is, &err);
        if (sresp.has_value()) {
            const std::string t1 = statsResponseText(*sresp);
            std::istringstream is2(t1);
            auto sresp2 = tryReadStatsResponse(is2, &err);
            if (!sresp2.has_value())
                report(out, "proto-roundtrip",
                       "serialized stats response failed to "
                       "reparse: " +
                           err);
            else if (statsResponseText(*sresp2) != t1)
                report(out, "proto-roundtrip",
                       "stats response serialization is not a "
                       "fixpoint");
        }
    }

    // Ping frames (probe request and pong response).
    {
        std::istringstream is(bytes);
        auto preq = tryReadPingRequest(is, &err);
        if (preq.has_value()) {
            const std::string t1 = pingRequestText(*preq);
            std::istringstream is2(t1);
            if (!tryReadPingRequest(is2, &err).has_value())
                report(out, "proto-roundtrip",
                       "serialized ping request failed to "
                       "reparse: " +
                           err);
        }
    }
    {
        std::istringstream is(bytes);
        auto pong = tryReadPongResponse(is, &err);
        if (pong.has_value()) {
            const std::string t1 = pongResponseText(*pong);
            std::istringstream is2(t1);
            auto pong2 = tryReadPongResponse(is2, &err);
            if (!pong2.has_value())
                report(out, "proto-roundtrip",
                       "serialized pong response failed to "
                       "reparse: " +
                           err);
            else if (pongResponseText(*pong2) != t1)
                report(out, "proto-roundtrip",
                       "pong response serialization is not a "
                       "fixpoint");
        }
    }
}

std::string
randomRequestFrame(Rng &rng, const FuzzDomain &domain)
{
    static const char *const kPolicies[] = {
        "iar",   "base-only", "opt-only",
        "astar", "lower-bound", "no-such-policy",
    };
    ServiceRequest req;
    req.id = rng.nextBelow(1 << 20);
    req.policy = kPolicies[rng.nextBelow(std::size(kPolicies))];
    if (rng.nextBool(0.3))
        req.options.compileCores = 1 + rng.nextBelow(4);
    req.workload = randomWorkload(rng, domain);
    return requestText(req);
}

std::string
mutateFrameBytes(const std::string &frame, Rng &rng)
{
    if (frame.empty())
        return frame;
    switch (rng.nextBelow(8)) {
    case 0: // truncate at a random byte
        return frame.substr(0, rng.nextBelow(frame.size()));
    case 1: { // flip one byte to an arbitrary value
        std::string out = frame;
        out[rng.nextBelow(out.size())] =
            static_cast<char>(rng.nextBelow(256));
        return out;
    }
    case 2: { // duplicate one line
        auto lines = splitLines(frame);
        if (lines.empty())
            return frame;
        const std::size_t i = rng.nextBelow(lines.size());
        lines.insert(lines.begin() + i, lines[i]);
        return joinLines(lines);
    }
    case 3: { // delete one line
        auto lines = splitLines(frame);
        if (lines.size() <= 1)
            return frame;
        lines.erase(lines.begin() + rng.nextBelow(lines.size()));
        return joinLines(lines);
    }
    case 4: { // swap two lines
        auto lines = splitLines(frame);
        if (lines.size() <= 1)
            return frame;
        const std::size_t a = rng.nextBelow(lines.size());
        const std::size_t b = rng.nextBelow(lines.size());
        std::swap(lines[a], lines[b]);
        return joinLines(lines);
    }
    case 5: { // oversize a declared count
        auto lines = splitLines(frame);
        for (std::string &line : lines) {
            if (line.rfind("calls ", 0) == 0 ||
                line.rfind("schedule ", 0) == 0 ||
                line.rfind("snapshot ", 0) == 0) {
                line = line.substr(0, line.find(' ')) +
                       " 4000000000";
                return joinLines(lines);
            }
        }
        return frame + "calls 4000000000\n";
    }
    case 6: { // insert a garbage line
        auto lines = splitLines(frame);
        static const char *const kGarbage[] = {
            "option deadline-ms banana",
            "func -1 x 0",
            "levels 255",
            "\x01\x02\x03\xff",
            "payload",
            "jitsched-request 7",
            "jitsched-ping 7",
        };
        lines.insert(lines.begin() + rng.nextBelow(lines.size() + 1),
                     kGarbage[rng.nextBelow(std::size(kGarbage))]);
        return joinLines(lines);
    }
    default: { // splice: prefix of the frame + suffix from elsewhere
        const std::size_t cut = rng.nextBelow(frame.size());
        const std::size_t from = rng.nextBelow(frame.size());
        return frame.substr(0, cut) + frame.substr(from);
    }
    }
}

// --- Loopback fault injector --------------------------------------

namespace {

/**
 * Minimal raw TCP client with a receive timeout: the fuzzer must be
 * able to tell "the daemon hung" (a finding) from "the daemon
 * deliberately dropped me" (often correct), which ServiceClient's
 * blocking reads cannot.
 */
class RawConn
{
  public:
    ~RawConn() { closeNow(); }

    bool
    open(const std::string &address, std::uint16_t port,
         std::string *error)
    {
        closeNow();
        fd_ = connectTcp(address, port, error);
        if (fd_ < 0)
            return false;
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        reader_ = std::make_unique<LineReader>(fd_);
        return true;
    }

    bool send(std::string_view data) { return writeAll(fd_, data); }

    /** One whole frame (through `end`), or nullopt on EOF/timeout. */
    std::optional<std::string>
    readFrame()
    {
        std::string frame;
        for (;;) {
            const auto line = reader_->readLine();
            if (!line.has_value())
                return std::nullopt;
            frame += *line + "\n";
            if (isFrameEnd(*line))
                return frame;
        }
    }

    void
    closeNow()
    {
        reader_.reset();
        closeFd(fd_);
        fd_ = -1;
    }

  private:
    int fd_ = -1;
    std::unique_ptr<LineReader> reader_;
};

/**
 * Whether @p raw parses as some well-formed response frame.  A
 * mutated request can legitimately turn into any verb the server
 * speaks (a byte flip in the header makes a ping, a dump, ...), and
 * the server then answers in that verb's response grammar — all of
 * them are "the daemon stayed coherent", which is what the scenario
 * asserts.
 */
bool
parseableAsAnyResponse(const std::string &raw)
{
    std::string perr;
    {
        std::istringstream is(raw);
        if (tryReadResponse(is, &perr).has_value())
            return true;
    }
    {
        std::istringstream is(raw);
        if (tryReadStatsResponse(is, &perr).has_value())
            return true;
    }
    {
        std::istringstream is(raw);
        if (tryReadPongResponse(is, &perr).has_value())
            return true;
    }
    {
        std::istringstream is(raw);
        if (tryReadDumpResponse(is, &perr).has_value())
            return true;
    }
    {
        std::istringstream is(raw);
        if (tryReadSnapshotResponse(is, &perr).has_value())
            return true;
    }
    return false;
}

} // anonymous namespace

struct LoopbackFuzzer::Impl
{
    ServiceEngine engine;
    ServiceServer server{engine};
    ServiceEngine reference; // must not share cache with the server
    bool started = false;
    std::string startError;

    /** The deterministic bytes a healthy server must answer with. */
    std::string
    directAnswer(const ServiceRequest &req)
    {
        ServiceResponse resp = reference.serve(req);
        resp.stats = {};
        return responseText(resp, /*include_stats=*/false);
    }

    /**
     * Send a known-valid request (optionally in random chunks) and
     * require the byte-identical deterministic answer.
     * @return false when a violation was recorded
     */
    bool
    expectValidRoundTrip(RawConn &conn, const ServiceRequest &req,
                         Rng *chunker, std::vector<Violation> &out)
    {
        const std::string frame = requestText(req);
        if (chunker != nullptr) {
            std::size_t at = 0;
            while (at < frame.size()) {
                const std::size_t len =
                    1 + chunker->nextBelow(frame.size() - at);
                if (!conn.send(
                        std::string_view(frame).substr(at, len))) {
                    report(out, "proto-loopback",
                           "write of a valid frame failed");
                    return false;
                }
                at += len;
            }
        } else if (!conn.send(frame)) {
            report(out, "proto-loopback",
                   "write of a valid frame failed");
            return false;
        }
        const auto raw = conn.readFrame();
        if (!raw.has_value()) {
            report(out, "proto-loopback",
                   "no response to a valid frame (hang or "
                   "disconnect), policy " +
                       req.policy);
            return false;
        }
        const std::string want = directAnswer(req);
        if (stripStats(*raw) != want) {
            report(out, "proto-loopback",
                   "response to a valid frame diverged from the "
                   "direct library call:\n--- got ---\n" +
                       stripStats(*raw) + "--- want ---\n" + want);
            return false;
        }
        return true;
    }
};

LoopbackFuzzer::LoopbackFuzzer() : impl_(std::make_unique<Impl>())
{
    impl_->started = impl_->server.start(&impl_->startError);
}

LoopbackFuzzer::~LoopbackFuzzer() = default;

bool
LoopbackFuzzer::ok() const
{
    return impl_->started;
}

const std::string &
LoopbackFuzzer::error() const
{
    return impl_->startError;
}

void
LoopbackFuzzer::runCase(Rng &rng, const FuzzDomain &domain,
                        std::vector<Violation> &out,
                        ProtoFuzzStats *stats)
{
    if (!impl_->started) {
        report(out, "proto-loopback",
               "server failed to start: " + impl_->startError);
        return;
    }
    if (stats != nullptr)
        ++stats->loopbackCases;

    // One known-good request reused for the recovery checks.
    static const char *const kSafePolicies[] = {
        "iar", "base-only", "opt-only", "lower-bound"};
    ServiceRequest valid;
    valid.id = rng.nextBelow(1 << 20);
    valid.policy = kSafePolicies[rng.nextBelow(4)];
    valid.workload = randomWorkload(rng, domain);

    const std::string address = impl_->server.bindAddress();
    const std::uint16_t port = impl_->server.port();
    std::string error;
    RawConn conn;
    if (!conn.open(address, port, &error)) {
        report(out, "proto-loopback", "connect failed: " + error);
        return;
    }

    switch (rng.nextBelow(4)) {
    case 0: { // valid frame delivered in adversarial chunks
        if (impl_->expectValidRoundTrip(conn, valid, &rng, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    case 1: { // mutated frame, then recovery on the same connection
        std::string bad =
            mutateFrameBytes(requestText(valid), rng);
        // Terminate the frame: an unterminated frame is the server
        // *correctly* waiting for more bytes, not a scenario.  The
        // server answers one frame per `end` line it sees, so count
        // them to know how many responses to drain before the
        // recovery round trip.
        if (bad.empty() || bad.back() != '\n')
            bad += "\n";
        std::size_t frames_sent = 0;
        bool tail_open = false; // bytes after the last `end` line
        for (const std::string &line : splitLines(bad)) {
            if (isFrameEnd(line)) {
                ++frames_sent;
                tail_open = false;
            } else {
                tail_open = true;
            }
        }
        if (frames_sent == 0 || tail_open) {
            // Unterminated tail bytes would prefix (and corrupt) the
            // recovery frame; close them off as one more frame.
            bad += "end\n";
            ++frames_sent;
        }
        if (!conn.send(bad)) {
            report(out, "proto-loopback",
                   "write of mutated frame failed");
            break;
        }
        bool dropped = false;
        for (std::size_t i = 0; i < frames_sent; ++i) {
            const auto raw = conn.readFrame();
            if (!raw.has_value()) {
                // Deliberate disconnect (e.g. line-length overflow)
                // is legal; the daemon must still take new
                // connections.
                dropped = true;
                break;
            }
            // Whatever came back must at least be a parseable frame
            // of one of the response grammars the server speaks.
            if (!parseableAsAnyResponse(*raw)) {
                report(out, "proto-loopback",
                       "unparseable response to a mutated "
                       "frame:\n" +
                           *raw);
                return;
            }
            if (stats != nullptr)
                ++stats->served;
        }
        if (dropped) {
            if (stats != nullptr)
                ++stats->disconnects;
            RawConn fresh;
            if (!fresh.open(address, port, &error)) {
                report(out, "proto-loopback",
                       "reconnect after disconnect failed: " + error);
                break;
            }
            impl_->expectValidRoundTrip(fresh, valid, nullptr, out);
            break;
        }
        // The connection must still serve valid requests.
        impl_->expectValidRoundTrip(conn, valid, nullptr, out);
        break;
    }
    case 2: { // mid-frame disconnect; the daemon must shrug it off
        const std::string frame = requestText(valid);
        const std::size_t cut = 1 + rng.nextBelow(frame.size() - 1);
        conn.send(std::string_view(frame).substr(0, cut));
        conn.closeNow();
        if (stats != nullptr)
            ++stats->disconnects;
        RawConn fresh;
        if (!fresh.open(address, port, &error)) {
            report(out, "proto-loopback",
                   "reconnect after mid-frame disconnect failed: " +
                       error);
            break;
        }
        if (impl_->expectValidRoundTrip(fresh, valid, nullptr, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    default: { // oversize declared call count inside a framed request
        auto lines = splitLines(requestText(valid));
        for (std::string &line : lines) {
            if (line.rfind("calls ", 0) == 0) {
                line = "calls " +
                       std::to_string(
                           1'000'000 +
                           rng.nextBelow(4'000'000'000ull));
                break;
            }
        }
        if (!conn.send(joinLines(lines))) {
            report(out, "proto-loopback",
                   "write of oversize-count frame failed");
            break;
        }
        const auto raw = conn.readFrame();
        if (!raw.has_value()) {
            report(out, "proto-loopback",
                   "no response to an oversize-count frame (hang "
                   "or disconnect)");
            break;
        }
        std::istringstream is(*raw);
        std::string perr;
        const auto resp = tryReadResponse(is, &perr);
        if (!resp.has_value()) {
            report(out, "proto-loopback",
                   "unparseable response to an oversize-count "
                   "frame: " +
                       perr);
            break;
        }
        if (resp->ok || resp->code != errcode::invalidArgument) {
            report(out, "proto-loopback",
                   "oversize declared count was not rejected with "
                   "INVALID_ARGUMENT (code '" +
                       resp->code + "')");
            break;
        }
        if (stats != nullptr)
            ++stats->served;
        // Framing must have recovered at the `end` line.
        impl_->expectValidRoundTrip(conn, valid, nullptr, out);
        break;
    }
    }
}

} // namespace qa
} // namespace jitsched
