/**
 * @file
 * Greedy reduction of a failing fuzz case to a minimal reproducer.
 *
 * Delta-debugging in miniature: repeatedly try structure-preserving
 * shrink steps (drop call chunks, drop now-uncalled functions, drop
 * optimization levels) and keep any step after which the failure
 * predicate still fires.  The result is 1-minimal with respect to
 * the step set — no single remaining call, function, or level can be
 * removed — which in practice turns 30-call instances into the 3-5
 * call kernels humans can reason about.
 */

#ifndef JITSCHED_QA_MINIMIZE_HH
#define JITSCHED_QA_MINIMIZE_HH

#include <cstdint>
#include <functional>

#include "trace/workload.hh"

namespace jitsched {
namespace qa {

/**
 * True when the candidate workload still reproduces the failure
 * (e.g. "qa::checkAll() is non-empty").  Must be deterministic.
 */
using FailPredicate = std::function<bool(const Workload &)>;

/** What the minimizer did. */
struct MinimizeStats
{
    std::uint64_t probes = 0; ///< predicate evaluations
    std::size_t callsBefore = 0;
    std::size_t callsAfter = 0;
    std::size_t functionsBefore = 0;
    std::size_t functionsAfter = 0;
};

/**
 * Shrink @p w while @p still_fails keeps returning true.  @p w must
 * itself satisfy the predicate.  @p max_probes bounds the work (the
 * predicate typically runs every solver).
 */
Workload minimizeWorkload(Workload w, const FailPredicate &still_fails,
                          std::uint64_t max_probes = 2000,
                          MinimizeStats *stats = nullptr);

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_MINIMIZE_HH
