#include "qa/result_cache_fuzz.hh"

#include <cstdio>
#include <sstream>
#include <utility>

#include "service/result_cache.hh"

namespace jitsched {
namespace qa {

namespace {

/**
 * Policies whose solves are byte-deterministic run to run — the
 * precondition of a byte-identity differential.  astar-par is
 * deliberately absent: its contract is cost determinism across
 * worker counts, not schedule identity, so two fresh solves may
 * legally print different (equal-cost) schedules.
 */
const char *const kPolicies[] = {"iar",         "base-only",
                                 "opt-only",    "lower-bound",
                                 "astar",       "jikes"};

/** First index where two strings differ (== size when equal). */
std::size_t
firstDiff(const std::string &a, const std::string &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return n;
}

void
identityViolation(std::vector<Violation> &out, const char *where,
                  const ServiceRequest &req,
                  const std::string &cached,
                  const std::string &fresh)
{
    const std::size_t at = firstDiff(cached, fresh);
    std::ostringstream detail;
    detail << where << ": cached body diverged from a fresh solve "
           << "(policy " << req.policy << ", " << cached.size()
           << " vs " << fresh.size() << " bytes, first diff at byte "
           << at << ")";
    out.push_back(Violation{"result-cache", detail.str()});
}

} // anonymous namespace

ResultCacheFuzzer::ResultCacheFuzzer(std::string snapshot_path)
    : snapshot_path_(std::move(snapshot_path))
{
}

ResultCacheFuzzer::~ResultCacheFuzzer()
{
    std::remove(snapshot_path_.c_str());
}

void
ResultCacheFuzzer::runCase(Rng &rng, const FuzzDomain &domain,
                           std::vector<Violation> &out,
                           ResultCacheFuzzStats *stats,
                           bool break_oracle)
{
    if (stats != nullptr)
        ++stats->cases;

    ServiceRequest req;
    req.id = rng.nextBelow(1000);
    req.traceId = rng.nextBelow(1 << 20) + 1;
    req.policy = kPolicies[rng.nextBelow(
        sizeof(kPolicies) / sizeof(kPolicies[0]))];
    req.workload = randomWorkload(rng, domain);
    const std::uint64_t mutations = rng.nextBelow(3);
    for (std::uint64_t m = 0; m < mutations; ++m)
        req.workload = mutateWorkload(req.workload, rng, domain);
    req.options.compileCores = 1 + rng.nextBelow(3);
    if (rng.nextBelow(4) == 0) {
        req.options.jitterSigma = 0.25;
        req.options.jitterSeed = 1 + rng.nextBelow(100);
    }
    // Keep the exact search cheap on fuzz instances.
    req.options.astarMaxExpansions = 50'000;

    // Fresh solve #1: the body the leader would publish.
    const ServiceResponse resp1 = engine_.serve(req);
    if (!resp1.ok) {
        // Nothing is stored for error answers; the case is vacuous.
        if (stats != nullptr)
            ++stats->errorSkips;
        return;
    }
    std::string body = responseBodyText(resp1);
    if (break_oracle && !body.empty())
        body[body.size() / 2] ^= 0x20; // canary: corrupt the store

    ResultCacheConfig cfg;
    cfg.capacityBytes = 4 << 20;
    ResultCache cache(cfg);
    const ResultCache::Probe lead = cache.begin(req);
    if (lead.kind != ResultCache::Probe::Kind::Leader) {
        out.push_back(Violation{
            "result-cache",
            "first probe of an empty cache was not Leader"});
        return;
    }
    cache.publish(lead, true, body);
    if (stats != nullptr)
        ++stats->published;

    // Request #2: same semantic key, different non-semantic fields.
    ServiceRequest req2 = req;
    req2.id = req.id + 1 + rng.nextBelow(1000);
    req2.traceId = req.traceId + 1;
    req2.options.deadlineMs = 10'000;

    const ResultCache::Probe hit = cache.begin(req2);
    if (hit.kind != ResultCache::Probe::Kind::Hit) {
        out.push_back(Violation{
            "result-cache",
            "published entry did not Hit for a request differing "
            "only in id/trace-id/deadline (policy " +
                req.policy + ")"});
        return;
    }
    const ServiceResponse resp2 = engine_.serve(req2);
    const std::string fresh = responseBodyText(resp2);
    if (hit.body != fresh) {
        identityViolation(out, "store", req2, hit.body, fresh);
        return;
    }
    if (stats != nullptr)
        ++stats->storeHits;

    // Snapshot round trip: write → load into a fresh cache → the
    // served bytes must still be the fresh solve's bytes.
    std::string error;
    if (!cache.saveSnapshot(snapshot_path_, &error)) {
        out.push_back(Violation{"result-cache",
                                "snapshot save failed: " + error});
        return;
    }
    ResultCache reloaded(cfg);
    if (!reloaded.loadSnapshot(snapshot_path_, &error)) {
        out.push_back(Violation{"result-cache",
                                "snapshot load failed: " + error});
        return;
    }
    const ResultCache::Probe warmed = reloaded.begin(req2);
    if (warmed.kind != ResultCache::Probe::Kind::Hit) {
        out.push_back(Violation{
            "result-cache",
            "snapshot round trip lost the entry (no Hit after "
            "load)"});
        return;
    }
    if (warmed.body != fresh) {
        identityViolation(out, "snapshot", req2, warmed.body, fresh);
        return;
    }
    if (stats != nullptr)
        ++stats->roundTrips;
}

} // namespace qa
} // namespace jitsched
