#include "qa/cluster_fuzz.hh"

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "cluster/pool.hh"
#include "cluster/router.hh"
#include "qa/proto_fuzz.hh"
#include "service/engine.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/socket_util.hh"

namespace jitsched {
namespace qa {

namespace {

void
report(std::vector<Violation> &out, std::string oracle,
       std::string detail)
{
    out.push_back({std::move(oracle), std::move(detail)});
}

/** Drop the volatile `stats` line from a raw response frame. */
std::string
stripStats(const std::string &frame)
{
    std::string out;
    std::istringstream is(frame);
    for (std::string line; std::getline(is, line);) {
        if (line.rfind("stats ", 0) != 0)
            out += line + "\n";
    }
    return out;
}

/**
 * A backend that accepts connections and never answers — the "hung
 * daemon" every per-try deadline exists for.  It reads and discards
 * whatever arrives (so peers' writes always succeed) but never
 * writes a byte.
 */
class TarpitBackend
{
  public:
    ~TarpitBackend() { stop(); }

    bool
    start(std::string *error)
    {
        listen_fd_ = listenTcp("127.0.0.1", 0, 16, error);
        if (listen_fd_ < 0)
            return false;
        port_ = boundPort(listen_fd_);
        stopping_.store(false, std::memory_order_release);
        holder_ = std::thread([this] { holdLoop(); });
        return true;
    }

    void
    stop()
    {
        if (listen_fd_ < 0)
            return;
        stopping_.store(true, std::memory_order_release);
        ::shutdown(listen_fd_, SHUT_RDWR);
        closeFd(listen_fd_);
        if (holder_.joinable())
            holder_.join();
        for (const int fd : held_)
            closeFd(fd);
        held_.clear();
        listen_fd_ = -1;
    }

    std::uint16_t port() const { return port_; }

  private:
    void
    holdLoop()
    {
        while (!stopping_.load(std::memory_order_acquire)) {
            const int fd =
                ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                if (stopping_.load(std::memory_order_acquire))
                    return;
                continue;
            }
            held_.push_back(fd);
        }
    }

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread holder_;
    std::vector<int> held_; ///< touched by holder_ only, then stop()
};

/** Raw framed client for the router's port. */
using RouterConn = cluster::BackendConn;

} // anonymous namespace

struct ClusterFuzzer::Impl
{
    static constexpr std::size_t kRealBackends = 3;

    std::vector<std::unique_ptr<ServiceEngine>> engines;
    std::vector<std::unique_ptr<ServiceServer>> servers;
    TarpitBackend tarpit;
    std::unique_ptr<cluster::Router> router;
    ServiceEngine reference;
    bool started = false;
    std::string startError;

    Impl()
    {
        for (std::size_t i = 0; i < kRealBackends; ++i) {
            engines.push_back(std::make_unique<ServiceEngine>());
            servers.push_back(std::make_unique<ServiceServer>(
                *engines.back()));
        }
        for (auto &server : servers) {
            if (!server->start(&startError))
                return;
        }
        if (!tarpit.start(&startError))
            return;

        std::vector<cluster::BackendEndpoint> endpoints;
        for (auto &server : servers)
            endpoints.push_back(
                {server->bindAddress(), server->port()});
        endpoints.push_back({"127.0.0.1", tarpit.port()});

        cluster::RouterConfig cfg;
        cfg.handlerThreads = 2;
        // Tight budgets: the tarpit sits in the ring permanently, so
        // every owner-chain walk through it must cost a bounded
        // fraction of a case, not 5 seconds.
        cfg.tryTimeoutMs = 250;
        cfg.maxTries = 4;
        cfg.backoffBaseMs = 1;
        cfg.backoffMaxMs = 5;
        cfg.pool.connectTimeoutMs = 250;
        cfg.pool.probeTimeoutMs = 100;
        cfg.pool.probeIntervalMs = 10;
        cfg.pool.health.suspectAfter = 1;
        cfg.pool.health.downAfter = 2;
        cfg.pool.health.probeDelayMs = 50;
        cfg.pool.health.probeDelayMaxMs = 400;
        cfg.pool.health.probeSuccesses = 1;
        router = std::make_unique<cluster::Router>(
            std::move(endpoints), cfg);
        if (!router->start(&startError))
            return;
        started = true;
    }

    ~Impl()
    {
        if (router != nullptr)
            router->stop();
        for (auto &server : servers)
            server->stop();
        tarpit.stop();
    }

    /** The deterministic bytes the cluster must answer with. */
    std::string
    directAnswer(const ServiceRequest &req)
    {
        ServiceResponse resp = reference.serve(req);
        resp.stats = {};
        return responseText(resp, /*include_stats=*/false);
    }

    bool
    openRouterConn(RouterConn &conn, std::vector<Violation> &out)
    {
        std::string error;
        cluster::BackendEndpoint ep{router->bindAddress(),
                                    router->port()};
        if (!conn.open(ep, /*connect_timeout_ms=*/2000, &error)) {
            report(out, "cluster-loopback",
                   "connect to router failed: " + error);
            return false;
        }
        // Generous ceiling: a hung *router* is a finding, and per-try
        // deadlines inside it are far shorter than this.
        conn.setReadTimeout(10'000);
        return true;
    }

    /**
     * Send a valid request through the router and require the
     * byte-identical deterministic answer.
     * @return false when a violation was recorded
     */
    bool
    expectValidRoundTrip(RouterConn &conn, const ServiceRequest &req,
                         std::vector<Violation> &out)
    {
        if (!conn.sendFrame(requestText(req))) {
            report(out, "cluster-loopback",
                   "write of a valid frame to the router failed");
            return false;
        }
        const auto raw = conn.readFrame();
        if (!raw.has_value()) {
            report(out, "cluster-loopback",
                   "no response from the router to a valid frame "
                   "(hang or disconnect), policy " +
                       req.policy);
            return false;
        }
        const std::string want = directAnswer(req);
        if (stripStats(*raw) != want) {
            report(out, "cluster-loopback",
                   "routed response diverged from the direct "
                   "library call:\n--- got ---\n" +
                       stripStats(*raw) + "--- want ---\n" + want);
            return false;
        }
        return true;
    }

    /** Wait until backend @p i is routable again; false on timeout. */
    bool
    awaitReadmission(std::size_t i)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
        while (std::chrono::steady_clock::now() < deadline) {
            if (router->pool().routable(i))
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    }
};

ClusterFuzzer::ClusterFuzzer() : impl_(std::make_unique<Impl>()) {}

ClusterFuzzer::~ClusterFuzzer() = default;

bool
ClusterFuzzer::ok() const
{
    return impl_->started;
}

const std::string &
ClusterFuzzer::error() const
{
    return impl_->startError;
}

void
ClusterFuzzer::runCase(Rng &rng, const FuzzDomain &domain,
                       std::vector<Violation> &out,
                       ClusterFuzzStats *stats)
{
    if (!impl_->started) {
        report(out, "cluster-loopback",
               "cluster failed to start: " + impl_->startError);
        return;
    }
    if (stats != nullptr)
        ++stats->cases;

    static const char *const kSafePolicies[] = {
        "iar", "base-only", "opt-only", "lower-bound"};
    ServiceRequest valid;
    valid.id = rng.nextBelow(1 << 20);
    valid.policy = kSafePolicies[rng.nextBelow(4)];
    valid.workload = randomWorkload(rng, domain);

    RouterConn conn;
    if (!impl_->openRouterConn(conn, out))
        return;

    switch (rng.nextBelow(4)) {
    case 0: { // plain valid request; ring may route it via the tarpit
        if (impl_->expectValidRoundTrip(conn, valid, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    case 1: { // kill a real backend mid-run; every answer must hold
        const std::size_t victim =
            rng.nextBelow(Impl::kRealBackends);
        impl_->servers[victim]->stop();
        if (stats != nullptr)
            ++stats->kills;
        bool all_ok = true;
        for (int shot = 0; shot < 3 && all_ok; ++shot) {
            ServiceRequest req = valid;
            req.id = valid.id + static_cast<std::uint64_t>(shot);
            all_ok = impl_->expectValidRoundTrip(conn, req, out);
            if (all_ok && stats != nullptr)
                ++stats->served;
        }
        std::string error;
        if (!impl_->servers[victim]->start(&error)) {
            report(out, "cluster-loopback",
                   "backend restart failed: " + error);
            break;
        }
        if (!impl_->awaitReadmission(victim)) {
            report(out, "cluster-loopback",
                   "backend " + std::to_string(victim) +
                       " not re-admitted within 5s of restart");
            break;
        }
        if (stats != nullptr)
            ++stats->readmissions;
        // And the re-admitted backend must actually serve again.
        if (impl_->expectValidRoundTrip(conn, valid, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    case 2: { // byte-mangled frame; router must answer and recover
        std::string bad = mutateFrameBytes(requestText(valid), rng);
        if (stats != nullptr)
            ++stats->mangled;
        if (bad.empty() || bad.back() != '\n')
            bad += "\n";
        // Count terminated frames so we drain exactly that many
        // responses; close off any unterminated tail.
        std::size_t frames_sent = 0;
        bool tail_open = false;
        {
            std::istringstream is(bad);
            for (std::string line; std::getline(is, line);) {
                if (isFrameEnd(line)) {
                    ++frames_sent;
                    tail_open = false;
                } else {
                    tail_open = true;
                }
            }
        }
        if (frames_sent == 0 || tail_open) {
            bad += "end\n";
            ++frames_sent;
        }
        if (!conn.sendFrame(bad)) {
            report(out, "cluster-loopback",
                   "write of mangled frame to the router failed");
            break;
        }
        bool dropped = false;
        for (std::size_t i = 0; i < frames_sent; ++i) {
            const auto raw = conn.readFrame();
            if (!raw.has_value()) {
                dropped = true; // deliberate disconnect is legal
                break;
            }
            std::istringstream is(*raw);
            std::string perr;
            if (!tryReadResponse(is, &perr).has_value()) {
                std::istringstream is2(*raw);
                if (!tryReadStatsResponse(is2, &perr).has_value()) {
                    std::istringstream is3(*raw);
                    if (!tryReadPongResponse(is3, &perr)
                             .has_value()) {
                        report(out, "cluster-loopback",
                               "unparseable router response to a "
                               "mangled frame:\n" +
                                   *raw);
                        return;
                    }
                }
            }
        }
        if (dropped) {
            RouterConn fresh;
            if (!impl_->openRouterConn(fresh, out))
                break;
            impl_->expectValidRoundTrip(fresh, valid, out);
            break;
        }
        if (impl_->expectValidRoundTrip(conn, valid, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    default: { // mid-frame disconnect; the router must shrug it off
        const std::string frame = requestText(valid);
        const std::size_t cut = 1 + rng.nextBelow(frame.size() - 1);
        conn.sendFrame(frame.substr(0, cut));
        conn.close();
        RouterConn fresh;
        if (!impl_->openRouterConn(fresh, out))
            break;
        if (impl_->expectValidRoundTrip(fresh, valid, out) &&
            stats != nullptr)
            ++stats->served;
        break;
    }
    }
}

} // namespace qa
} // namespace jitsched
