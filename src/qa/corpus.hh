/**
 * @file
 * Reproducer corpus: failing (or interesting) fuzz cases as files.
 *
 * Two kinds of case, told apart by extension:
 *
 *   *.workload   an OCSP instance in the trace/trace_io.hh text
 *                grammar; replay runs the full solver oracle chain
 *                (qa/oracles.hh) on it
 *   *.frame      raw wire-protocol bytes; replay pushes them through
 *                the non-fatal protocol parsers and, when they parse
 *                as a request, through an in-process ServiceEngine —
 *                asserting graceful handling either way
 *
 * Files start with `#` comment lines recording provenance (seed,
 * case id, the oracle that fired) — both grammars tolerate comments,
 * so a reproducer is also directly replayable with
 * `jitsched-fuzz replay <file>` or loadable by any trace tool.
 */

#ifndef JITSCHED_QA_CORPUS_HH
#define JITSCHED_QA_CORPUS_HH

#include <string>

#include "qa/oracles.hh"
#include "trace/workload.hh"

namespace jitsched {
namespace qa {

/** Outcome of replaying one corpus file. */
struct ReplayResult
{
    bool ok = false;

    /** Violations or I/O problems; empty when ok. */
    std::string detail;
};

/**
 * Write a workload reproducer.
 * @param comment provenance, embedded as `#` lines (may be multi-line)
 * @return the path written, empty on I/O failure (with *error set)
 */
std::string writeWorkloadCase(const std::string &dir,
                              const std::string &name,
                              const Workload &w,
                              const std::string &comment,
                              std::string *error = nullptr);

/** Write a protocol-frame reproducer (raw bytes, comment prefixed). */
std::string writeFrameCase(const std::string &dir,
                           const std::string &name,
                           const std::string &frame_bytes,
                           const std::string &comment,
                           std::string *error = nullptr);

/**
 * Replay one corpus file through the oracles appropriate to its
 * extension.  Unknown extensions and unreadable files are failures —
 * a corpus directory must never silently skip a case.
 */
ReplayResult replayFile(const std::string &path,
                        const OracleConfig &cfg = {});

} // namespace qa
} // namespace jitsched

#endif // JITSCHED_QA_CORPUS_HH
