#include "cluster/pool.hh"

#include <sstream>
#include <utility>

#include "obs/instruments.hh"
#include "service/protocol.hh"
#include "support/logging.hh"

namespace jitsched {
namespace cluster {

bool
BackendConn::open(const BackendEndpoint &ep, int connect_timeout_ms,
                  std::string *error)
{
    close();
    fd_ = connectTcpTimeout(ep.address, ep.port, connect_timeout_ms,
                            error);
    if (fd_ < 0)
        return false;
    reader_ = std::make_unique<LineReader>(fd_);
    return true;
}

void
BackendConn::close()
{
    if (fd_ >= 0)
        closeFd(fd_);
    fd_ = -1;
    reader_.reset();
}

void
BackendConn::setReadTimeout(int ms)
{
    if (fd_ >= 0)
        setIoTimeouts(fd_, ms, /*send_timeout_ms=*/-1);
}

bool
BackendConn::sendFrame(const std::string &frame)
{
    return fd_ >= 0 && writeAll(fd_, frame);
}

std::optional<std::string>
BackendConn::readFrame()
{
    if (fd_ < 0 || reader_ == nullptr)
        return std::nullopt;
    // Reassemble the frame from reader lines.  LineReader strips the
    // '\n' terminator (and a trailing '\r', which our own writers
    // never emit), so appending "\n" reproduces the daemon's bytes
    // exactly — what lets the router relay responses verbatim.
    std::string frame;
    while (true) {
        std::optional<std::string> line = reader_->readLine();
        if (!line.has_value())
            return std::nullopt;
        frame += *line;
        frame += '\n';
        if (isFrameEnd(*line))
            return frame;
    }
}

BackendPool::BackendPool(std::vector<BackendEndpoint> backends,
                         BackendPoolConfig cfg)
    : cfg_(cfg)
{
    if (backends.empty())
        JITSCHED_PANIC("a backend pool needs at least one backend");
    slots_.reserve(backends.size());
    for (BackendEndpoint &ep : backends)
        slots_.push_back(
            std::make_unique<Slot>(std::move(ep), cfg_.health));
}

BackendPool::~BackendPool() { stop(); }

void
BackendPool::start()
{
    std::lock_guard<std::mutex> lk(lifecycle_mutex_);
    if (started_)
        return;
    stopping_.store(false, std::memory_order_release);
    prober_ = std::thread([this] { proberLoop(); });
    started_ = true;
}

void
BackendPool::stop()
{
    std::lock_guard<std::mutex> lk(lifecycle_mutex_);
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_release);
    if (prober_.joinable())
        prober_.join();
    started_ = false;
    for (auto &slot : slots_) {
        std::lock_guard<std::mutex> slk(slot->mutex);
        slot->idle.clear();
    }
}

HealthState
BackendPool::state(std::size_t b)
{
    std::lock_guard<std::mutex> lk(slots_[b]->mutex);
    return slots_[b]->health.state();
}

bool
BackendPool::routable(std::size_t b)
{
    std::lock_guard<std::mutex> lk(slots_[b]->mutex);
    return slots_[b]->health.routable();
}

std::unique_ptr<BackendConn>
BackendPool::acquire(std::size_t b, std::string *error)
{
    Slot &slot = *slots_[b];
    {
        std::lock_guard<std::mutex> lk(slot.mutex);
        if (!slot.idle.empty()) {
            std::unique_ptr<BackendConn> conn =
                std::move(slot.idle.back());
            slot.idle.pop_back();
            conn->markReused();
            return conn;
        }
    }
    auto conn = std::make_unique<BackendConn>();
    if (!conn->open(slot.endpoint, cfg_.connectTimeoutMs, error)) {
        recordResult(b, false);
        return nullptr;
    }
    return conn;
}

void
BackendPool::release(std::size_t b, std::unique_ptr<BackendConn> conn,
                     bool reusable)
{
    if (conn == nullptr)
        return;
    if (!reusable || !conn->isOpen() || conn->timedOut())
        return; // destructor closes
    Slot &slot = *slots_[b];
    std::lock_guard<std::mutex> lk(slot.mutex);
    if (slot.idle.size() < cfg_.maxIdleConns)
        slot.idle.push_back(std::move(conn));
}

void
BackendPool::recordResult(std::size_t b, bool ok)
{
    Slot &slot = *slots_[b];
    const auto now = HealthMachine::Clock::now();
    std::uint64_t ejections_before, ejections_after;
    {
        std::lock_guard<std::mutex> lk(slot.mutex);
        ejections_before = slot.health.ejections();
        slot.health.onResult(ok, now);
        ejections_after = slot.health.ejections();
        if (ejections_after != ejections_before) {
            // Pooled conns to an ejected backend are suspect too.
            slot.idle.clear();
        }
    }
    if (ejections_after != ejections_before) {
        JITSCHED_OBS(
            obs::ClusterMetrics::get().backendEjections.add());
        warn("cluster: backend ", slot.endpoint.label(),
             " ejected (down)");
    }
}

std::uint64_t
BackendPool::ejections(std::size_t b)
{
    std::lock_guard<std::mutex> lk(slots_[b]->mutex);
    return slots_[b]->health.ejections();
}

std::uint64_t
BackendPool::readmissions(std::size_t b)
{
    std::lock_guard<std::mutex> lk(slots_[b]->mutex);
    return slots_[b]->health.readmissions();
}

bool
BackendPool::probeBackend(Slot &slot)
{
    BackendConn conn;
    std::string error;
    if (!conn.open(slot.endpoint, cfg_.connectTimeoutMs, &error))
        return false;
    conn.setReadTimeout(cfg_.probeTimeoutMs);
    PingRequest ping;
    ping.id = 1;
    if (!conn.sendFrame(pingRequestText(ping)))
        return false;
    std::optional<std::string> frame = conn.readFrame();
    if (!frame.has_value())
        return false;
    std::istringstream is(*frame);
    std::optional<PongResponse> pong = tryReadPongResponse(is);
    return pong.has_value() && pong->ok && pong->id == ping.id;
}

void
BackendPool::probeOnce()
{
    for (auto &slot_ptr : slots_) {
        Slot &slot = *slot_ptr;
        {
            std::lock_guard<std::mutex> lk(slot.mutex);
            const auto now = HealthMachine::Clock::now();
            if (!slot.health.wantsProbe(now) &&
                slot.health.state() != HealthState::Probing)
                continue;
        }
        // PING with no lock held: a slow probe must not block
        // handler threads recording results for this backend.
        JITSCHED_OBS(obs::ClusterMetrics::get().probesSent.add());
        const bool ok = probeBackend(slot);
        if (!ok)
            JITSCHED_OBS(
                obs::ClusterMetrics::get().probesFailed.add());
        std::uint64_t readmissions_before, readmissions_after;
        {
            std::lock_guard<std::mutex> lk(slot.mutex);
            readmissions_before = slot.health.readmissions();
            slot.health.onProbe(ok, HealthMachine::Clock::now());
            readmissions_after = slot.health.readmissions();
        }
        if (readmissions_after != readmissions_before) {
            JITSCHED_OBS(
                obs::ClusterMetrics::get().backendReadmissions.add());
            inform("cluster: backend ", slot.endpoint.label(),
                   " re-admitted (healthy)");
        }
    }
}

void
BackendPool::proberLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        probeOnce();
        // Sleep in small slices so stop() is prompt.
        const auto tick =
            std::chrono::milliseconds(cfg_.probeIntervalMs);
        const auto wake = HealthMachine::Clock::now() + tick;
        while (!stopping_.load(std::memory_order_acquire) &&
               HealthMachine::Clock::now() < wake) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }
}

} // namespace cluster
} // namespace jitsched
