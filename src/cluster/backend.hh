/**
 * @file
 * Per-backend health bookkeeping for the cluster router: a rolling
 * error-rate window (the circuit breaker) and the four-state health
 * machine it drives.
 *
 *            consecutive failures            breaker trips or
 *            reach suspectAfter              more failures
 *   Healthy ---------------------> Suspect ------------------> Down
 *      ^                             |                          |
 *      |        any success         |                          | probe
 *      +<----------------------------+                          | timer
 *      |                                                        v
 *      +<------------- probeSuccesses ok PINGs ------------- Probing
 *                         (probe failure -> Down, backoff)
 *
 * Healthy and Suspect are routable; Down and Probing are not — a
 * Down backend costs zero client requests while the prober decides
 * when it may return.  The machine is a pure value: every transition
 * takes the current time as an argument, so the unit tests drive it
 * through a whole outage on a fake clock, and the router's pool
 * wraps it in a mutex.
 *
 * The breaker is a bucketed rolling window rather than consecutive
 * counts alone so that a backend failing, say, 60% of requests under
 * concurrent load gets ejected even though successes keep
 * interrupting the failure streaks.
 */

#ifndef JITSCHED_CLUSTER_BACKEND_HH
#define JITSCHED_CLUSTER_BACKEND_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jitsched {
namespace cluster {

/** One backend endpoint (a jitschedd instance). */
struct BackendEndpoint
{
    std::string address = "127.0.0.1";
    std::uint16_t port = 0;

    /** "address:port" — the metrics / log label. */
    std::string label() const;
};

enum class HealthState
{
    Healthy, ///< routable, no recent trouble
    Suspect, ///< routable, but failures are accumulating
    Down,    ///< ejected; no client traffic
    Probing, ///< ejected; a PING probe is deciding re-admission
};

/** Printable state name (tests and the router's log lines). */
const char *healthStateName(HealthState s);

/** Rolling success/failure counts over the last windowMs. */
class RollingWindow
{
  public:
    using Clock = std::chrono::steady_clock;

    RollingWindow(int window_ms, std::size_t buckets,
                  Clock::time_point now);

    void record(bool ok, Clock::time_point now);

    std::uint64_t total(Clock::time_point now);
    std::uint64_t failures(Clock::time_point now);

    /** Failure fraction in [0,1]; 0 when the window is empty. */
    double errorRate(Clock::time_point now);

    void reset(Clock::time_point now);

  private:
    struct Bucket
    {
        std::uint64_t ok = 0;
        std::uint64_t fail = 0;
    };

    /** Rotate stale buckets out so reads see only the window. */
    void advance(Clock::time_point now);

    std::chrono::milliseconds bucketWidth_;
    std::vector<Bucket> buckets_;
    std::size_t current_ = 0;
    Clock::time_point currentStart_;
};

/** Knobs of the health machine + breaker. */
struct HealthConfig
{
    /** Consecutive failures that turn Healthy into Suspect. */
    std::uint32_t suspectAfter = 1;

    /** Consecutive failures that turn Suspect into Down. */
    std::uint32_t downAfter = 3;

    /** Breaker window length and resolution. */
    int windowMs = 2000;
    std::size_t windowBuckets = 10;

    /** Breaker: minimum samples before the error rate can trip. */
    std::uint64_t breakerMinSamples = 8;

    /** Breaker: error rate in the window that ejects the backend. */
    double breakerMaxErrorRate = 0.5;

    /** Down -> Probing delay after ejection (first probe). */
    int probeDelayMs = 100;

    /** Probe-failure backoff: delay doubles up to this cap. */
    int probeDelayMaxMs = 2000;

    /** Ok probes required to re-admit a Probing backend. */
    std::uint32_t probeSuccesses = 2;
};

class HealthMachine
{
  public:
    using Clock = std::chrono::steady_clock;

    HealthMachine(HealthConfig cfg, Clock::time_point now);

    HealthState state() const { return state_; }

    /** Healthy or Suspect — may receive client traffic. */
    bool routable() const
    {
        return state_ == HealthState::Healthy ||
               state_ == HealthState::Suspect;
    }

    /** Record the outcome of one client-request try. */
    void onResult(bool ok, Clock::time_point now);

    /**
     * True when a Down backend's probe timer has expired; the
     * transition to Probing happens here, so exactly one caller wins
     * the probe.
     */
    bool wantsProbe(Clock::time_point now);

    /** Record a PING outcome for a Probing backend. */
    void onProbe(bool ok, Clock::time_point now);

    /** Ejections so far (Healthy/Suspect -> Down transitions). */
    std::uint64_t ejections() const { return ejections_; }

    /** Re-admissions so far (Probing -> Healthy transitions). */
    std::uint64_t readmissions() const { return readmissions_; }

  private:
    void eject(Clock::time_point now);

    HealthConfig cfg_;
    HealthState state_ = HealthState::Healthy;
    RollingWindow window_;
    std::uint32_t consecutiveFailures_ = 0;
    std::uint32_t probeStreak_ = 0;
    int probeDelayMs_;
    Clock::time_point nextProbeAt_;
    std::uint64_t ejections_ = 0;
    std::uint64_t readmissions_ = 0;
};

} // namespace cluster
} // namespace jitsched

#endif // JITSCHED_CLUSTER_BACKEND_HH
