/**
 * @file
 * ClusterHarness: an N-backend scheduling cluster in one process.
 *
 * Each backend is a full ServiceEngine + ServiceServer on an
 * ephemeral loopback port; one Router fronts them.  Tests and
 * bench_cluster use the harness to drive real sockets end to end —
 * and to bounce backends mid-run: killBackend() stops a backend's
 * server (connections die, the port goes dark), restartBackend()
 * brings it back on the same port, where the router's prober finds
 * and re-admits it.
 */

#ifndef JITSCHED_CLUSTER_HARNESS_HH
#define JITSCHED_CLUSTER_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/router.hh"
#include "service/engine.hh"
#include "service/server.hh"

namespace jitsched {
namespace cluster {

/** Knobs of the in-process cluster. */
struct ClusterHarnessConfig
{
    /** Number of jitschedd backends. */
    std::size_t backends = 2;

    /**
     * Router knobs.  bindAddress/port are honored; the backend list
     * is filled in by the harness.
     */
    RouterConfig router;

    /**
     * Per-backend server knobs.  port must stay 0 (every backend
     * gets its own ephemeral port).
     */
    ServerConfig backend;
};

class ClusterHarness
{
  public:
    explicit ClusterHarness(ClusterHarnessConfig cfg = {});

    /** Stops everything. */
    ~ClusterHarness();

    ClusterHarness(const ClusterHarness &) = delete;
    ClusterHarness &operator=(const ClusterHarness &) = delete;

    /**
     * Start every backend, then the router in front of them.
     * @return true on success; false with *error set otherwise
     */
    bool start(std::string *error = nullptr);

    /** Stop the router, then the backends; idempotent. */
    void stop();

    std::size_t backendCount() const { return nodes_.size(); }

    /** The router (valid after start()). */
    Router &router() { return *router_; }
    std::uint16_t routerPort() const { return router_->port(); }

    ServiceServer &backendServer(std::size_t i)
    {
        return nodes_[i]->server;
    }

    ServiceEngine &backendEngine(std::size_t i)
    {
        return nodes_[i]->engine;
    }

    std::uint16_t backendPort(std::size_t i) const
    {
        return nodes_[i]->server.port();
    }

    /**
     * Stop backend @p i: its connections die and its port stops
     * answering, exactly like a crashed daemon (minus RSTs for
     * SYNs — the port refuses instead, which the router treats the
     * same way).
     */
    void killBackend(std::size_t i);

    /** Bring a killed backend back on the port it had before. */
    bool restartBackend(std::size_t i, std::string *error = nullptr);

  private:
    struct Node
    {
        ServiceEngine engine;
        ServiceServer server;

        explicit Node(const ServerConfig &cfg)
            : engine(), server(engine, cfg)
        {
        }
    };

    ClusterHarnessConfig cfg_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<Router> router_;
    bool started_ = false;
};

} // namespace cluster
} // namespace jitsched

#endif // JITSCHED_CLUSTER_HARNESS_HH
