/**
 * @file
 * jitsched-router's serving core: a fingerprint-affine TCP proxy in
 * front of N jitschedd backends.
 *
 * The router speaks the existing wire protocol on both sides — a
 * client cannot tell it from a single daemon.  Each request frame is
 * parsed (malformed frames get the same INVALID_ARGUMENT response a
 * daemon would produce), fingerprinted with requestFingerprint(),
 * and forwarded to the backend the consistent-hash ring assigns.
 * Because a response is a pure function of its request apart from
 * the volatile `stats` line, the router relays the backend's bytes
 * verbatim: responses through the router are byte-identical to a
 * direct daemon (stats line aside), which is what the differential
 * tests in tests/cluster assert.
 *
 * Request hygiene around each forward:
 *  - per-try deadlines: each try's read timeout is the configured
 *    try budget, clipped to what is left of the request's own
 *    `deadline-ms` option when it carries one;
 *  - bounded retries with jittered exponential backoff, walking the
 *    ring's deterministic spill chain — retries are safe because
 *    scheduling requests are idempotent;
 *  - bounded-load spill: an owner with too many requests in flight
 *    is skipped for the next chain node even while healthy;
 *  - optional hedging: if the owner has not answered within
 *    hedgeDelayMs, the request is also sent to the next backend in
 *    the chain and the first full response wins.
 *
 * Try outcomes feed the BackendPool's health machines; the pool's
 * prober re-admits ejected backends behind the router's back.
 */

#ifndef JITSCHED_CLUSTER_ROUTER_HH
#define JITSCHED_CLUSTER_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/pool.hh"
#include "cluster/ring.hh"
#include "service/protocol.hh"

namespace jitsched {
namespace cluster {

/** How the router picks a request's first-choice backend. */
enum class RoutingMode
{
    /** Consistent-hash on the request fingerprint (the default). */
    Affinity,

    /** Rotate through backends; the bench's affinity baseline. */
    RoundRobin,
};

/** Knobs of the router front end. */
struct RouterConfig
{
    /** Address to bind; loopback by default. */
    std::string bindAddress = "127.0.0.1";

    /** Port to bind; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;

    /** listen(2) backlog. */
    int acceptBacklog = 64;

    /** Concurrent connection handlers. */
    std::size_t handlerThreads = 4;

    /** Largest accepted request frame, as in ServerConfig. */
    std::size_t maxFrameBytes = std::size_t(1) << 20;

    /** Ring points per backend. */
    std::size_t vnodes = 64;

    RoutingMode mode = RoutingMode::Affinity;

    /** Total tries per request (first try + retries). */
    int maxTries = 3;

    /** Per-try response deadline. */
    int tryTimeoutMs = 5000;

    /** Retry backoff: base * 2^attempt, jittered, capped. */
    int backoffBaseMs = 5;
    int backoffMaxMs = 100;

    /** Seed of the backoff-jitter stream. */
    std::uint64_t jitterSeed = 0x9e3779b97f4a7c15ull;

    /**
     * Hedging: when >= 0 and the owner has not answered within this
     * many ms, send the request to the next chain backend too and
     * take whichever full response lands first.  < 0 disables.
     */
    int hedgeDelayMs = -1;

    /**
     * Bounded-load spill: a backend already carrying this many
     * in-flight router requests is skipped for the next chain node.
     * 0 disables the bound.
     */
    std::size_t maxInflightPerBackend = 0;

    /** Backend pool + health knobs. */
    BackendPoolConfig pool;
};

class Router
{
  public:
    explicit Router(std::vector<BackendEndpoint> backends,
                    RouterConfig cfg = {});

    /** Stops and joins everything. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Bind, listen, spawn acceptor + handlers + the pool's prober.
     * @return true on success; false with *error set otherwise
     */
    bool start(std::string *error = nullptr);

    /** Stop accepting, close connections, join threads; idempotent. */
    void stop();

    /** The port actually bound (valid after start()). */
    std::uint16_t port() const { return port_; }

    const std::string &bindAddress() const
    {
        return cfg_.bindAddress;
    }

    BackendPool &pool() { return pool_; }
    const HashRing &ring() const { return ring_; }

    /** Request frames answered (valid and malformed). */
    std::uint64_t framesServed() const
    {
        return frames_.load(std::memory_order_relaxed);
    }

    /** Requests answered from a non-owner backend. */
    std::uint64_t requestsSpilled() const
    {
        return spilled_.load(std::memory_order_relaxed);
    }

    /** Requests the router failed to get any backend to answer. */
    std::uint64_t requestsFailed() const
    {
        return failed_.load(std::memory_order_relaxed);
    }

    /**
     * Route one already-parsed request and return the response
     * frame's bytes — the whole forwarding path (affinity, spill,
     * retries, hedging) without a socket in front.  What the
     * in-process harness and the TSan hammer drive.
     */
    std::string route(const ServiceRequest &req);

  private:
    struct Exchange
    {
        std::string frame;    ///< response bytes when ok
        bool ok = false;
        bool timedOut = false;
        bool hedged = false;   ///< the second lane was launched
        bool hedgeWon = false; ///< ...and answered first
    };

    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    /** First-choice chain for @p req under the configured mode. */
    std::vector<std::size_t> chainFor(std::uint64_t fingerprint);

    /**
     * Pick the next backend to try: first routable chain entry not
     * yet tried, preferring ones under the in-flight bound; falls
     * back to over-bound routable entries; nullopt when nothing is
     * routable at all.
     */
    std::optional<std::size_t>
    pickBackend(const std::vector<std::size_t> &chain,
                const std::vector<bool> &tried, bool *over_bound);

    /** One send + read-response on @p backend. */
    Exchange tryExchange(std::size_t backend,
                         const std::string &canonical, int try_ms);

    /**
     * Hedged exchange: primary first, secondary launched after
     * hedgeDelayMs of silence; first full frame wins.
     */
    Exchange hedgedExchange(std::size_t primary,
                            std::size_t secondary,
                            const std::string &canonical, int try_ms);

    /** Jittered backoff before retry @p attempt, capped. */
    int backoffMs(int attempt);

    const RouterConfig cfg_;
    HashRing ring_;
    BackendPool pool_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::mutex conn_mutex_;
    std::condition_variable conn_cv_;
    std::deque<int> conn_queue_;
    std::unordered_set<int> active_fds_;

    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> spilled_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> rr_next_{0};
    std::atomic<std::uint64_t> jitter_case_{0};

    /** In-flight router requests per backend (bounded-load spill). */
    std::vector<std::unique_ptr<std::atomic<std::size_t>>> inflight_;

    std::thread acceptor_;
    std::vector<std::thread> handlers_;
};

} // namespace cluster
} // namespace jitsched

#endif // JITSCHED_CLUSTER_ROUTER_HH
