/**
 * @file
 * Consistent-hash ring for fingerprint-affine request routing.
 *
 * Each backend owns many pseudo-random points on a 64-bit ring
 * (virtual nodes); a request fingerprint is owned by the backend
 * whose point follows it clockwise.  Two properties make this the
 * right structure for a cache-affine scheduling cluster (see
 * DESIGN.md Sec. 5e and Hassidim et al., arXiv:1210.4053):
 *
 *  - stability: removing a backend remaps only the keys it owned —
 *    every other backend's EvalCache working set stays put;
 *  - spill order: walking the ring past the owner yields a
 *    deterministic per-key failover sequence, so when the owner is
 *    down or saturated the *same* second-choice backend sees a given
 *    workload every time, and its cache warms for exactly that
 *    spilled slice.
 *
 * The ring is a plain value type: build it once from the backend
 * list, copy it freely.  It is deliberately time-free and
 * I/O-free — health is the BackendPool's job; the ring only answers
 * "who would own this key, and who is next in line".
 */

#ifndef JITSCHED_CLUSTER_RING_HH
#define JITSCHED_CLUSTER_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jitsched {
namespace cluster {

class HashRing
{
  public:
    /**
     * @param backends number of backends, ids 0..backends-1
     * @param vnodes ring points per backend; more points smooth the
     *        key distribution at O(backends * vnodes * log) build
     *        cost.  64 keeps the max/min owned-share ratio under
     *        ~1.5 for small clusters.
     */
    explicit HashRing(std::size_t backends, std::size_t vnodes = 64);

    std::size_t backends() const { return backends_; }

    /** The backend owning @p fingerprint. */
    std::size_t ownerOf(std::uint64_t fingerprint) const;

    /**
     * Owner followed by the spill order: every backend exactly once,
     * in ring order from the fingerprint's successor point.  The
     * router walks this chain when the owner is ejected or
     * saturated.
     */
    std::vector<std::size_t>
    ownerChain(std::uint64_t fingerprint) const;

  private:
    struct Point
    {
        std::uint64_t position;
        std::size_t backend;

        bool
        operator<(const Point &other) const
        {
            // Tie-break on backend id so the ring order is total and
            // identical on every router instance.
            return position != other.position
                       ? position < other.position
                       : backend < other.backend;
        }
    };

    std::size_t backends_;
    std::vector<Point> points_; ///< sorted by position
};

} // namespace cluster
} // namespace jitsched

#endif // JITSCHED_CLUSTER_RING_HH
