#include "cluster/harness.hh"

#include <utility>

#include "support/logging.hh"

namespace jitsched {
namespace cluster {

ClusterHarness::ClusterHarness(ClusterHarnessConfig cfg)
    : cfg_(std::move(cfg))
{
    if (cfg_.backends == 0)
        JITSCHED_PANIC("a cluster harness needs >= 1 backend");
    if (cfg_.backend.port != 0)
        JITSCHED_PANIC(
            "harness backends must use ephemeral ports (port 0)");
    nodes_.reserve(cfg_.backends);
    for (std::size_t i = 0; i < cfg_.backends; ++i)
        nodes_.push_back(std::make_unique<Node>(cfg_.backend));
}

ClusterHarness::~ClusterHarness() { stop(); }

bool
ClusterHarness::start(std::string *error)
{
    if (started_)
        return true;
    std::vector<BackendEndpoint> endpoints;
    endpoints.reserve(nodes_.size());
    for (auto &node : nodes_) {
        if (!node->server.start(error)) {
            for (auto &up : nodes_)
                up->server.stop();
            return false;
        }
        endpoints.push_back(
            {node->server.bindAddress(), node->server.port()});
    }
    router_ = std::make_unique<Router>(std::move(endpoints),
                                       cfg_.router);
    if (!router_->start(error)) {
        for (auto &node : nodes_)
            node->server.stop();
        router_.reset();
        return false;
    }
    started_ = true;
    return true;
}

void
ClusterHarness::stop()
{
    if (!started_)
        return;
    if (router_ != nullptr)
        router_->stop();
    for (auto &node : nodes_)
        node->server.stop();
    started_ = false;
}

void
ClusterHarness::killBackend(std::size_t i)
{
    nodes_[i]->server.stop();
}

bool
ClusterHarness::restartBackend(std::size_t i, std::string *error)
{
    return nodes_[i]->server.start(error);
}

} // namespace cluster
} // namespace jitsched
