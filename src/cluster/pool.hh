/**
 * @file
 * BackendPool: the router's registry of jitschedd backends.
 *
 * Per backend it owns (1) the health machine + circuit breaker of
 * backend.hh, wrapped in a mutex so handler threads and the prober
 * can feed it concurrently, (2) a small stack of idle, already
 * connected sockets so repeat requests skip the TCP handshake, and
 * (3) the probe schedule: one background prober thread PINGs Down
 * backends on their backoff timer and walks them through
 * Probing -> Healthy re-admission.
 *
 * The pool never decides *where* a request goes — that is the
 * ring's and the router's job.  It answers "is backend b routable",
 * hands out connections, and digests try outcomes.
 */

#ifndef JITSCHED_CLUSTER_POOL_HH
#define JITSCHED_CLUSTER_POOL_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.hh"
#include "service/socket_util.hh"

namespace jitsched {
namespace cluster {

/** Knobs of the pool and its prober. */
struct BackendPoolConfig
{
    HealthConfig health;

    /** connect(2) deadline for backend sockets. */
    int connectTimeoutMs = 500;

    /** PING round-trip deadline for probes. */
    int probeTimeoutMs = 500;

    /** Prober thread tick; probes fire on each backend's own timer. */
    int probeIntervalMs = 25;

    /** Idle connections kept per backend. */
    std::size_t maxIdleConns = 8;
};

/**
 * One pooled backend connection: a connected fd plus its line
 * reader.  The reader must live as long as the connection (it may
 * have buffered bytes), so the pair travels together.  Not
 * thread-safe; at most one handler uses a connection at a time.
 */
class BackendConn
{
  public:
    ~BackendConn() { close(); }

    BackendConn() = default;
    BackendConn(const BackendConn &) = delete;
    BackendConn &operator=(const BackendConn &) = delete;

    bool open(const BackendEndpoint &ep, int connect_timeout_ms,
              std::string *error);

    bool isOpen() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void close();

    /** Arm the read deadline for the next readFrame(). */
    void setReadTimeout(int ms);

    bool sendFrame(const std::string &frame);

    /**
     * One whole frame (through `end`), or nullopt on EOF, error or
     * read-deadline expiry (timedOut() distinguishes).  After a
     * timeout the connection must be discarded — a late response
     * would desynchronize framing.
     */
    std::optional<std::string> readFrame();

    bool timedOut() const
    {
        return reader_ != nullptr && reader_->timedOut();
    }

    /**
     * True when this conn came from the idle pool.  An instant EOF
     * on a reused conn usually means the backend closed it while it
     * sat idle (a bounce) — the router retries such a failure on a
     * fresh connection before blaming the backend's health.
     */
    bool reused() const { return reused_; }
    void markReused() { reused_ = true; }

  private:
    int fd_ = -1;
    bool reused_ = false;
    std::unique_ptr<LineReader> reader_;
};

class BackendPool
{
  public:
    BackendPool(std::vector<BackendEndpoint> backends,
                BackendPoolConfig cfg = {});

    /** Stops the prober and closes every pooled connection. */
    ~BackendPool();

    BackendPool(const BackendPool &) = delete;
    BackendPool &operator=(const BackendPool &) = delete;

    /** Spawn the prober thread; idempotent. */
    void start();

    /** Join the prober; idempotent. */
    void stop();

    std::size_t size() const { return slots_.size(); }

    const BackendEndpoint &
    endpoint(std::size_t b) const
    {
        return slots_[b]->endpoint;
    }

    HealthState state(std::size_t b);

    /** May backend @p b receive client traffic right now? */
    bool routable(std::size_t b);

    /**
     * A connection to backend @p b: pooled if one is idle, freshly
     * connected otherwise.  nullptr with *error set on connect
     * failure (which is also recorded against the backend's
     * health).
     */
    std::unique_ptr<BackendConn> acquire(std::size_t b,
                                         std::string *error);

    /**
     * Return a connection after use.  @p reusable only when the
     * exchange completed cleanly — a conn that timed out or died
     * mid-frame is closed instead.
     */
    void release(std::size_t b, std::unique_ptr<BackendConn> conn,
                 bool reusable);

    /** Digest the outcome of one client-request try on @p b. */
    void recordResult(std::size_t b, bool ok);

    std::uint64_t ejections(std::size_t b);
    std::uint64_t readmissions(std::size_t b);

    /**
     * Run one probe pass synchronously (what the prober thread does
     * every tick).  Exposed so tests can step re-admission without
     * sleeping on the wall clock.
     */
    void probeOnce();

  private:
    struct Slot
    {
        BackendEndpoint endpoint;
        std::mutex mutex; ///< guards health and idle
        HealthMachine health;
        std::vector<std::unique_ptr<BackendConn>> idle;

        Slot(BackendEndpoint ep, const HealthConfig &hc)
            : endpoint(std::move(ep)),
              health(hc, HealthMachine::Clock::now())
        {
        }
    };

    void proberLoop();

    /** PING @p slot once; true on an ok pong within the deadline. */
    bool probeBackend(Slot &slot);

    const BackendPoolConfig cfg_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::atomic<bool> stopping_{false};
    std::thread prober_;
    bool started_ = false;
    std::mutex lifecycle_mutex_;
};

} // namespace cluster
} // namespace jitsched

#endif // JITSCHED_CLUSTER_POOL_HH
