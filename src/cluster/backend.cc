#include "cluster/backend.hh"

#include "support/logging.hh"

namespace jitsched {
namespace cluster {

std::string
BackendEndpoint::label() const
{
    return address + ":" + std::to_string(port);
}

const char *
healthStateName(HealthState s)
{
    switch (s) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Suspect:
        return "suspect";
    case HealthState::Down:
        return "down";
    case HealthState::Probing:
        return "probing";
    }
    return "?";
}

RollingWindow::RollingWindow(int window_ms, std::size_t buckets,
                             Clock::time_point now)
    : bucketWidth_(std::chrono::milliseconds(
          window_ms / static_cast<int>(buckets) > 0
              ? window_ms / static_cast<int>(buckets)
              : 1)),
      buckets_(buckets > 0 ? buckets : 1), currentStart_(now)
{
}

void
RollingWindow::advance(Clock::time_point now)
{
    // Rotate one bucket per elapsed width; cap the walk at one full
    // revolution (everything is stale after that).
    std::size_t steps = 0;
    while (now - currentStart_ >= bucketWidth_ &&
           steps < buckets_.size()) {
        current_ = (current_ + 1) % buckets_.size();
        buckets_[current_] = {};
        currentStart_ += bucketWidth_;
        ++steps;
    }
    if (now - currentStart_ >= bucketWidth_) {
        // Idle longer than the whole window: every bucket was
        // cleared above; just resynchronize the epoch.
        currentStart_ = now;
    }
}

void
RollingWindow::record(bool ok, Clock::time_point now)
{
    advance(now);
    if (ok)
        ++buckets_[current_].ok;
    else
        ++buckets_[current_].fail;
}

std::uint64_t
RollingWindow::total(Clock::time_point now)
{
    advance(now);
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.ok + b.fail;
    return n;
}

std::uint64_t
RollingWindow::failures(Clock::time_point now)
{
    advance(now);
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.fail;
    return n;
}

double
RollingWindow::errorRate(Clock::time_point now)
{
    const std::uint64_t all = total(now);
    if (all == 0)
        return 0.0;
    return static_cast<double>(failures(now)) /
           static_cast<double>(all);
}

void
RollingWindow::reset(Clock::time_point now)
{
    for (Bucket &b : buckets_)
        b = {};
    current_ = 0;
    currentStart_ = now;
}

HealthMachine::HealthMachine(HealthConfig cfg, Clock::time_point now)
    : cfg_(cfg),
      window_(cfg.windowMs, cfg.windowBuckets, now),
      probeDelayMs_(cfg.probeDelayMs), nextProbeAt_(now)
{
}

void
HealthMachine::eject(Clock::time_point now)
{
    state_ = HealthState::Down;
    ++ejections_;
    consecutiveFailures_ = 0;
    probeStreak_ = 0;
    probeDelayMs_ = cfg_.probeDelayMs;
    nextProbeAt_ = now + std::chrono::milliseconds(probeDelayMs_);
}

void
HealthMachine::onResult(bool ok, Clock::time_point now)
{
    if (state_ == HealthState::Down ||
        state_ == HealthState::Probing) {
        // Stragglers from requests in flight when the backend was
        // ejected; the probe cycle owns the state now.
        return;
    }
    window_.record(ok, now);
    if (ok) {
        consecutiveFailures_ = 0;
        state_ = HealthState::Healthy;
        return;
    }
    ++consecutiveFailures_;
    const bool breakerTripped =
        window_.total(now) >= cfg_.breakerMinSamples &&
        window_.errorRate(now) >= cfg_.breakerMaxErrorRate;
    if (state_ == HealthState::Healthy) {
        if (breakerTripped) {
            eject(now);
            return;
        }
        if (consecutiveFailures_ >= cfg_.suspectAfter)
            state_ = HealthState::Suspect;
        return;
    }
    // Suspect.
    if (breakerTripped || consecutiveFailures_ >= cfg_.downAfter)
        eject(now);
}

bool
HealthMachine::wantsProbe(Clock::time_point now)
{
    if (state_ != HealthState::Down || now < nextProbeAt_)
        return false;
    state_ = HealthState::Probing;
    return true;
}

void
HealthMachine::onProbe(bool ok, Clock::time_point now)
{
    if (state_ != HealthState::Probing)
        return;
    if (!ok) {
        probeStreak_ = 0;
        probeDelayMs_ = std::min(probeDelayMs_ * 2,
                                 cfg_.probeDelayMaxMs);
        state_ = HealthState::Down;
        nextProbeAt_ =
            now + std::chrono::milliseconds(probeDelayMs_);
        return;
    }
    if (++probeStreak_ >= cfg_.probeSuccesses) {
        state_ = HealthState::Healthy;
        ++readmissions_;
        consecutiveFailures_ = 0;
        probeStreak_ = 0;
        probeDelayMs_ = cfg_.probeDelayMs;
        window_.reset(now);
        return;
    }
    // Partial streak: stay Probing; the prober sends the next PING
    // immediately (wantsProbe only gates Down -> Probing).
}

} // namespace cluster
} // namespace jitsched
