/**
 * @file
 * jitsched-router — the cluster front end.
 *
 * Binds a loopback TCP port, prints the bound address, and routes
 * scheduling requests over a set of jitschedd backends until
 * SIGINT/SIGTERM.  Speaks the same wire protocol as jitschedd on
 * both sides, so existing clients (jitsched-cli included) work
 * unchanged.  All the interesting machinery lives in the library
 * (cluster/router.hh); this file is argument parsing and signal
 * plumbing.
 *
 * Usage:
 *   jitsched-router --backend HOST:PORT [--backend HOST:PORT ...]
 *                   [--address A] [--port P] [--handlers N]
 *                   [--mode affinity|round-robin] [--tries N]
 *                   [--try-timeout-ms T] [--hedge-ms T]
 *                   [--max-inflight N] [--trace-out FILE]
 */

#include <signal.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/router.hh"
#include "obs/instruments.hh"
#include "obs/span.hh"
#include "obs/trace_event.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

using namespace jitsched;
using namespace jitsched::cluster;

namespace {

[[noreturn]] void
usage(int rc)
{
    std::cerr <<
        "usage: jitsched-router --backend HOST:PORT [...] [options]\n"
        "  --backend H:P        a jitschedd backend (repeatable,\n"
        "                       at least one required)\n"
        "  --address A          bind address (default 127.0.0.1)\n"
        "  --port P             bind port; 0 = ephemeral (default 0)\n"
        "  --handlers N         connection handler threads (default 4)\n"
        "  --mode M             affinity | round-robin (default affinity)\n"
        "  --tries N            tries per request (default 3)\n"
        "  --try-timeout-ms T   per-try response deadline (default 5000)\n"
        "  --hedge-ms T         hedge delay; negative disables (default -1)\n"
        "  --max-inflight N     per-backend in-flight bound; 0 = none\n"
        "  --trace-out FILE     at shutdown, write collected route\n"
        "                       spans as Chrome/Perfetto trace JSON\n"
        "  --help               this text\n";
    std::exit(rc);
}

std::int64_t
intArg(const std::string &flag, const std::string &value,
       std::int64_t min)
{
    const auto v = parseInt(value);
    if (!v || *v < min)
        JITSCHED_FATAL(flag, " needs an integer >= ", min,
                       ", got '", value, "'");
    return *v;
}

BackendEndpoint
parseBackend(const std::string &spec)
{
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        JITSCHED_FATAL("--backend needs HOST:PORT, got '", spec,
                       "'");
    BackendEndpoint ep;
    ep.address = spec.substr(0, colon);
    const auto port = parseInt(spec.substr(colon + 1));
    if (!port || *port <= 0 || *port > 65535)
        JITSCHED_FATAL("--backend port out of range in '", spec,
                       "'");
    ep.port = static_cast<std::uint16_t>(*port);
    return ep;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RouterConfig cfg;
    std::string trace_out;
    std::vector<BackendEndpoint> backends;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                JITSCHED_FATAL(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--backend") {
            backends.push_back(parseBackend(next()));
        } else if (arg == "--address") {
            cfg.bindAddress = next();
        } else if (arg == "--port") {
            cfg.port = static_cast<std::uint16_t>(
                intArg(arg, next(), 0));
        } else if (arg == "--handlers") {
            cfg.handlerThreads = static_cast<std::size_t>(
                intArg(arg, next(), 1));
        } else if (arg == "--mode") {
            const std::string m = next();
            if (m == "affinity")
                cfg.mode = RoutingMode::Affinity;
            else if (m == "round-robin")
                cfg.mode = RoutingMode::RoundRobin;
            else
                JITSCHED_FATAL("--mode must be affinity or "
                               "round-robin, got '", m, "'");
        } else if (arg == "--tries") {
            cfg.maxTries =
                static_cast<int>(intArg(arg, next(), 1));
        } else if (arg == "--try-timeout-ms") {
            cfg.tryTimeoutMs =
                static_cast<int>(intArg(arg, next(), 1));
        } else if (arg == "--hedge-ms") {
            const auto v = parseInt(next());
            if (!v)
                JITSCHED_FATAL("--hedge-ms needs an integer");
            cfg.hedgeDelayMs = static_cast<int>(*v);
        } else if (arg == "--max-inflight") {
            cfg.maxInflightPerBackend = static_cast<std::size_t>(
                intArg(arg, next(), 0));
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else {
            std::cerr << "jitsched-router: unknown option '" << arg
                      << "'\n";
            usage(2);
        }
    }
    if (backends.empty()) {
        std::cerr << "jitsched-router: at least one --backend is "
                     "required\n";
        usage(2);
    }

    sigset_t wait_set;
    sigemptyset(&wait_set);
    sigaddset(&wait_set, SIGINT);
    sigaddset(&wait_set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &wait_set, nullptr);

    // Pre-create the cluster instrument inventory so a STATS scrape
    // of a fresh router already carries the complete key set.
    {
        std::vector<std::string> labels;
        labels.reserve(backends.size());
        for (const BackendEndpoint &ep : backends)
            labels.push_back(ep.label());
        obs::registerClusterInstruments(labels);
    }

    Router router(backends, cfg);
    std::string error;
    if (!router.start(&error))
        JITSCHED_FATAL("cannot start: ", error);

    // One line on stdout so scripts can scrape the ephemeral port.
    std::cout << "jitsched-router listening on "
              << router.bindAddress() << ":" << router.port()
              << std::endl;
    {
        std::cout << "backends:";
        for (const BackendEndpoint &ep : backends)
            std::cout << " " << ep.label();
        std::cout << std::endl;
    }

    int sig = 0;
    while (sigwait(&wait_set, &sig) != 0) {
    }

    std::cout << "jitsched-router: shutting down ("
              << router.framesServed() << " frames, "
              << router.requestsSpilled() << " spilled, "
              << router.requestsFailed() << " failed)" << std::endl;
    router.stop();

    if (!trace_out.empty()) {
        // Stopped first, so every in-flight route's spans landed.
        // An idle router writes nothing: --trace-smoke only checks
        // files that exist.
        obs::SpanCollector &spans = obs::SpanCollector::global();
        if (spans.snapshot().empty()) {
            std::cout << "jitsched-router: no spans collected; "
                         "skipping " << trace_out << std::endl;
        } else {
            obs::TraceEventSink sink;
            spans.exportTo(sink);
            sink.writeFile(trace_out);
            std::cout << "jitsched-router: wrote " << sink.size()
                      << " trace events to " << trace_out
                      << std::endl;
        }
    }
    return 0;
}
