#include "cluster/ring.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {
namespace cluster {

namespace {

/** splitmix64 finalizer — the repo's standard bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

HashRing::HashRing(std::size_t backends, std::size_t vnodes)
    : backends_(backends)
{
    if (backends == 0)
        JITSCHED_PANIC("a hash ring needs at least one backend");
    if (vnodes == 0)
        JITSCHED_PANIC("vnodes must be >= 1");
    points_.reserve(backends * vnodes);
    for (std::size_t b = 0; b < backends; ++b)
        for (std::size_t v = 0; v < vnodes; ++v)
            points_.push_back(
                {mix64(mix64(b + 1) ^ mix64(v)), b});
    std::sort(points_.begin(), points_.end());
}

std::size_t
HashRing::ownerOf(std::uint64_t fingerprint) const
{
    // First point strictly after the key, wrapping at the top.
    auto it = std::upper_bound(
        points_.begin(), points_.end(),
        Point{fingerprint, backends_}); // backend field > any real id
    if (it == points_.end())
        it = points_.begin();
    return it->backend;
}

std::vector<std::size_t>
HashRing::ownerChain(std::uint64_t fingerprint) const
{
    std::vector<std::size_t> chain;
    chain.reserve(backends_);
    std::vector<bool> seen(backends_, false);
    auto it = std::upper_bound(
        points_.begin(), points_.end(),
        Point{fingerprint, backends_});
    for (std::size_t walked = 0;
         walked < points_.size() && chain.size() < backends_;
         ++walked, ++it) {
        if (it == points_.end())
            it = points_.begin();
        if (!seen[it->backend]) {
            seen[it->backend] = true;
            chain.push_back(it->backend);
        }
    }
    return chain;
}

} // namespace cluster
} // namespace jitsched
