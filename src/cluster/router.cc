#include "cluster/router.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/flight_recorder.hh"
#include "obs/instruments.hh"
#include "obs/span.hh"
#include "service/socket_util.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace jitsched {
namespace cluster {

namespace {

using SteadyClock = std::chrono::steady_clock;

/**
 * True when a relayed response frame's stats line says the backend
 * answered from its result cache (store hit or singleflight
 * collapse).  The marker token is emitted only when nonzero, so its
 * mere presence on the stats line is the signal; the scan is pinned
 * to the line starting with `stats ` because error lines may carry
 * arbitrary message text.
 */
[[maybe_unused]] bool
frameServedFromCache(const std::string &frame)
{
    std::size_t pos = 0;
    while (pos < frame.size()) {
        std::size_t eol = frame.find('\n', pos);
        if (eol == std::string::npos)
            eol = frame.size();
        if (frame.compare(pos, 6, "stats ") == 0) {
            const std::size_t hit =
                frame.find(" result-cache ", pos);
            return hit != std::string::npos && hit < eol;
        }
        pos = eol + 1;
    }
    return false;
}

/** Milliseconds until @p deadline, clamped at 0. */
int
msUntil(SteadyClock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - SteadyClock::now())
            .count();
    if (left <= 0)
        return 0;
    if (left > INT_MAX)
        return INT_MAX;
    return static_cast<int>(left);
}

} // anonymous namespace

Router::Router(std::vector<BackendEndpoint> backends,
               RouterConfig cfg)
    : cfg_(std::move(cfg)), ring_(backends.size(), cfg_.vnodes),
      pool_(std::move(backends), cfg_.pool)
{
    // A panicking router dumps its flight recorder too — the last N
    // routed requests are usually the story of why it died.
    obs::installPanicDump();
    inflight_.reserve(pool_.size());
    for (std::size_t b = 0; b < pool_.size(); ++b)
        inflight_.push_back(
            std::make_unique<std::atomic<std::size_t>>(0));
}

Router::~Router() { stop(); }

bool
Router::start(std::string *error)
{
    if (started_) {
        if (error != nullptr)
            *error = "router is already running";
        return false;
    }
    // Same restart contract as ServiceServer: a bounced router comes
    // back on the port its first start() landed on.
    const std::uint16_t bind_port = port_ != 0 ? port_ : cfg_.port;
    listen_fd_ = listenTcp(cfg_.bindAddress, bind_port,
                           cfg_.acceptBacklog, error);
    if (listen_fd_ < 0)
        return false;
    port_ = boundPort(listen_fd_);

    pool_.start();
    stopping_.store(false, std::memory_order_release);
    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    const std::size_t handlers =
        cfg_.handlerThreads > 0 ? cfg_.handlerThreads : 1;
    handlers_.reserve(handlers);
    for (std::size_t i = 0; i < handlers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
Router::stop()
{
    if (!started_)
        return;
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;

    ::shutdown(listen_fd_, SHUT_RDWR);
    closeFd(listen_fd_);
    if (acceptor_.joinable())
        acceptor_.join();

    {
        std::lock_guard<std::mutex> lk(conn_mutex_);
        for (const int fd : active_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();

    for (const int fd : conn_queue_)
        closeFd(fd);
    conn_queue_.clear();

    pool_.stop();

    handlers_.clear();
    listen_fd_ = -1;
    started_ = false;
}

void
Router::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            if (errno != EINTR && errno != ECONNABORTED)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            continue;
        }
        JITSCHED_OBS(
            obs::ClusterMetrics::get().connectionsAccepted.add());
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            conn_queue_.push_back(fd);
        }
        conn_cv_.notify_one();
    }
}

void
Router::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(conn_mutex_);
            conn_cv_.wait(lk, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !conn_queue_.empty();
            });
            if (stopping_.load(std::memory_order_acquire))
                return;
            fd = conn_queue_.front();
            conn_queue_.pop_front();
            active_fds_.insert(fd);
        }
        handleConnection(fd);
        {
            std::lock_guard<std::mutex> lk(conn_mutex_);
            active_fds_.erase(fd);
        }
        closeFd(fd);
    }
}

void
Router::handleConnection(int fd)
{
    // The framing loop is ServiceServer::handleConnection's: a
    // malformed frame body must not desynchronize the connection,
    // and an unbounded frame must not pin the handler.
    LineReader reader(fd, cfg_.maxFrameBytes);
    for (;;) {
        std::string frame;
        bool got_end = false;
        bool oversized = false;
        while (auto line = reader.readLine()) {
            if (frame.size() + line->size() + 1 > cfg_.maxFrameBytes) {
                oversized = true;
                break;
            }
            frame += *line;
            frame += '\n';
            if (isFrameEnd(*line)) {
                got_end = true;
                break;
            }
        }
        if (oversized || reader.overflowed()) {
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ClusterMetrics &m = obs::ClusterMetrics::get();
                m.framesServed.add();
                m.badFrames.add();
            });
            writeAll(fd, responseText(makeErrorResponse(
                             0, errcode::invalidArgument,
                             "request frame exceeds " +
                                 std::to_string(cfg_.maxFrameBytes) +
                                 " bytes")));
            ::shutdown(fd, SHUT_WR);
            char discard[4096];
            pollfd pfd{fd, POLLIN, 0};
            std::size_t drained = 0;
            while (drained < (std::size_t(64) << 10)) {
                if (::poll(&pfd, 1, 100) <= 0)
                    break;
                const ssize_t n =
                    ::read(fd, discard, sizeof(discard));
                if (n <= 0)
                    break;
                drained += static_cast<std::size_t>(n);
            }
            return;
        }
        if (!got_end)
            return; // EOF

        if (stopping_.load(std::memory_order_acquire))
            return;

        // PING asks about the *router's* liveness; answered locally.
        if (isPingRequestFrame(frame)) {
            std::istringstream pis(frame);
            std::string ping_error;
            PongResponse pong;
            if (const auto preq =
                    tryReadPingRequest(pis, &ping_error)) {
                pong = makePongResponse(preq->id);
            } else {
                pong.code = errcode::invalidArgument;
                pong.error = ping_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ClusterMetrics &m = obs::ClusterMetrics::get();
                m.framesServed.add();
                m.pingsServed.add();
            });
            if (!writeAll(fd, pongResponseText(pong)))
                return;
            continue;
        }

        // STATS scrapes the router's own registry (cluster.* keys).
        if (isStatsRequestFrame(frame)) {
            std::istringstream sis(frame);
            std::string stats_error;
            StatsResponse sresp;
            if (const auto sreq =
                    tryReadStatsRequest(sis, &stats_error)) {
                sresp = makeStatsResponse(
                    sreq->id,
                    sreq->prom
                        ? obs::MetricsRegistry::global()
                              .snapshotProm()
                        : obs::MetricsRegistry::global()
                              .snapshotText(),
                    sreq->prom);
            } else {
                sresp.code = errcode::invalidArgument;
                sresp.error = stats_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS({
                obs::ClusterMetrics &m = obs::ClusterMetrics::get();
                m.framesServed.add();
                m.statsServed.add();
            });
            if (!writeAll(fd, statsResponseText(sresp)))
                return;
            continue;
        }

        // DUMP scrapes the router's own flight recorder, inline like
        // STATS: when no backend answers, the router's record of the
        // last N routed requests is the evidence.
        if (isDumpRequestFrame(frame)) {
            std::istringstream dis(frame);
            std::string dump_error;
            DumpResponse dresp;
            if (const auto dreq =
                    tryReadDumpRequest(dis, &dump_error)) {
                dresp = makeDumpResponse(
                    dreq->id,
                    obs::FlightRecorder::global().snapshot());
            } else {
                dresp.code = errcode::invalidArgument;
                dresp.error = dump_error;
            }
            frames_.fetch_add(1, std::memory_order_relaxed);
            JITSCHED_OBS(
                obs::ClusterMetrics::get().framesServed.add());
            if (!writeAll(fd, dumpResponseText(dresp)))
                return;
            continue;
        }

        std::istringstream is(frame);
        std::string parse_error;
        const auto req = tryReadRequest(is, &parse_error);

        std::string resp_text;
        if (!req) {
            // Same parser, same error string, same builder as the
            // daemon: a malformed frame's answer is byte-identical
            // whether it hits a router or a backend.
            JITSCHED_OBS(obs::ClusterMetrics::get().badFrames.add());
            resp_text = responseText(makeErrorResponse(
                0, errcode::invalidArgument, parse_error));
        } else {
            resp_text = route(*req);
        }
        frames_.fetch_add(1, std::memory_order_relaxed);
        JITSCHED_OBS(obs::ClusterMetrics::get().framesServed.add());
        if (!writeAll(fd, resp_text))
            return; // peer went away
    }
}

std::vector<std::size_t>
Router::chainFor(std::uint64_t fingerprint)
{
    if (cfg_.mode == RoutingMode::Affinity)
        return ring_.ownerChain(fingerprint);
    // Round-robin: rotate the first choice, keep the rest in index
    // order — every request still has a full failover chain.
    std::vector<std::size_t> chain;
    chain.reserve(pool_.size());
    const std::size_t start =
        rr_next_.fetch_add(1, std::memory_order_relaxed) %
        pool_.size();
    for (std::size_t i = 0; i < pool_.size(); ++i)
        chain.push_back((start + i) % pool_.size());
    return chain;
}

std::optional<std::size_t>
Router::pickBackend(const std::vector<std::size_t> &chain,
                    const std::vector<bool> &tried, bool *over_bound)
{
    *over_bound = false;
    std::optional<std::size_t> saturated;
    for (const std::size_t b : chain) {
        if (tried[b] || !pool_.routable(b))
            continue;
        const std::size_t load =
            inflight_[b]->load(std::memory_order_relaxed);
        if (cfg_.maxInflightPerBackend == 0 ||
            load < cfg_.maxInflightPerBackend)
            return b;
        if (!saturated.has_value())
            saturated = b; // fallback: over bound beats nothing
    }
    if (saturated.has_value())
        *over_bound = true;
    return saturated;
}

int
Router::backoffMs(int attempt)
{
    long long ms = cfg_.backoffBaseMs;
    for (int i = 0; i < attempt && ms < cfg_.backoffMaxMs; ++i)
        ms *= 2;
    ms = std::min<long long>(ms, cfg_.backoffMaxMs);
    if (ms <= 1)
        return static_cast<int>(ms);
    // Jitter into [ms/2, ms] so synchronized clients fan out.
    Rng rng = Rng::caseStream(
        cfg_.jitterSeed,
        jitter_case_.fetch_add(1, std::memory_order_relaxed));
    const long long half = ms / 2;
    return static_cast<int>(half +
                            static_cast<long long>(rng.nextBelow(
                                static_cast<std::uint64_t>(ms - half +
                                                           1))));
}

Router::Exchange
Router::tryExchange(std::size_t backend,
                    const std::string &canonical, int try_ms)
{
    Exchange result;
    // A pooled conn may have died while idle (backend bounce): an
    // instant EOF on a reused conn is retried on a fresh connection
    // without blaming the backend.  Bounded by the idle-stack depth.
    for (std::size_t i = 0; i <= cfg_.pool.maxIdleConns; ++i) {
        std::string error;
        std::unique_ptr<BackendConn> conn =
            pool_.acquire(backend, &error);
        if (conn == nullptr)
            return result; // acquire recorded the failure
        const bool reused = conn->reused();
        conn->setReadTimeout(try_ms);
        if (!conn->sendFrame(canonical)) {
            if (reused)
                continue; // stale; fresh conn next round
            pool_.recordResult(backend, false);
            return result;
        }
        std::optional<std::string> frame = conn->readFrame();
        if (!frame.has_value()) {
            if (reused && !conn->timedOut())
                continue; // stale; fresh conn next round
            result.timedOut = conn->timedOut();
            pool_.recordResult(backend, false);
            return result;
        }
        pool_.recordResult(backend, true);
        pool_.release(backend, std::move(conn), /*reusable=*/true);
        result.frame = *std::move(frame);
        result.ok = true;
        return result;
    }
    pool_.recordResult(backend, false);
    return result;
}

Router::Exchange
Router::hedgedExchange(std::size_t primary, std::size_t secondary,
                       const std::string &canonical, int try_ms)
{
    Exchange result;
    const auto deadline =
        SteadyClock::now() + std::chrono::milliseconds(try_ms);

    std::string error;
    std::unique_ptr<BackendConn> a = pool_.acquire(primary, &error);
    if (a == nullptr || !a->sendFrame(canonical)) {
        if (a != nullptr)
            pool_.recordResult(primary, false);
        // Primary unreachable: plain try on the secondary.
        result = tryExchange(secondary, canonical,
                             msUntil(deadline));
        return result;
    }

    // Give the owner hedgeDelayMs of silence before spending a
    // second backend's cache on this request.
    pollfd pa{a->fd(), POLLIN, 0};
    const int wait_ms =
        std::min(cfg_.hedgeDelayMs, msUntil(deadline));
    if (::poll(&pa, 1, wait_ms) > 0) {
        a->setReadTimeout(msUntil(deadline));
        std::optional<std::string> frame = a->readFrame();
        if (frame.has_value()) {
            pool_.recordResult(primary, true);
            pool_.release(primary, std::move(a), true);
            result.frame = *std::move(frame);
            result.ok = true;
            return result;
        }
        pool_.recordResult(primary, false);
        result = tryExchange(secondary, canonical,
                             msUntil(deadline));
        return result;
    }

    // Hedge fires.
    result.hedged = true;
    JITSCHED_OBS(obs::ClusterMetrics::get().requestsHedged.add());
    std::unique_ptr<BackendConn> b =
        pool_.acquire(secondary, &error);
    if (b != nullptr && !b->sendFrame(canonical)) {
        pool_.recordResult(secondary, false);
        b.reset();
    }
    if (b == nullptr) {
        // No second lane after all; keep waiting on the primary.
        a->setReadTimeout(msUntil(deadline));
        std::optional<std::string> frame = a->readFrame();
        if (frame.has_value()) {
            pool_.recordResult(primary, true);
            pool_.release(primary, std::move(a), true);
            result.frame = *std::move(frame);
            result.ok = true;
        } else {
            result.timedOut = a->timedOut();
            pool_.recordResult(primary, false);
        }
        return result;
    }

    // First lane to turn readable commits us to its full frame; the
    // loser is closed mid-flight (its response is a duplicate of a
    // pure function's value anyway).
    pollfd lanes[2] = {{a->fd(), POLLIN, 0}, {b->fd(), POLLIN, 0}};
    const int both_ms = msUntil(deadline);
    const int ready = ::poll(lanes, 2, both_ms);
    const bool a_ready = ready > 0 && (lanes[0].revents & POLLIN);
    const bool b_ready = ready > 0 && (lanes[1].revents & POLLIN);

    auto finish = [&](std::size_t backend,
                      std::unique_ptr<BackendConn> winner,
                      std::unique_ptr<BackendConn> loser,
                      bool won_by_hedge) -> bool {
        winner->setReadTimeout(msUntil(deadline));
        std::optional<std::string> frame = winner->readFrame();
        if (!frame.has_value()) {
            result.timedOut = winner->timedOut();
            pool_.recordResult(backend, false);
            return false;
        }
        pool_.recordResult(backend, true);
        pool_.release(backend, std::move(winner), true);
        loser.reset(); // closed; never recorded — slow is not down
        result.frame = *std::move(frame);
        result.ok = true;
        result.hedgeWon = won_by_hedge;
        if (won_by_hedge)
            JITSCHED_OBS(obs::ClusterMetrics::get().hedgeWins.add());
        return true;
    };

    if (a_ready || (!b_ready && ready > 0)) {
        if (finish(primary, std::move(a), std::move(b), false))
            return result;
        // Primary produced garbage after all; try the hedge lane
        // with what time is left (b may be gone if finish consumed
        // it — it did not: finish only took a).
        result = Exchange{};
        result.hedged = true;
        return result;
    }
    if (b_ready) {
        if (finish(secondary, std::move(b), std::move(a), true))
            return result;
        result = Exchange{};
        result.hedged = true;
        return result;
    }
    // Neither answered within the try budget.
    result.timedOut = true;
    pool_.recordResult(primary, false);
    pool_.recordResult(secondary, false);
    return result;
}

std::string
Router::route(const ServiceRequest &req)
{
    // First contact mints the trace id when the client did not; the
    // canonical frame below then carries it to every backend try, so
    // one id names the whole fan-out.  Fingerprinting ignores it, so
    // affinity is unchanged by tracing.
    ServiceRequest traced;
    const ServiceRequest *rp = &req;
    if (req.traceId == 0) {
        traced = req;
        traced.traceId = obs::mintTraceId();
        rp = &traced;
    }
    const std::uint64_t trace_id = rp->traceId;
    const auto route_t0 = SteadyClock::now();

    // The canonical re-serialization parses to the same request the
    // client sent, so the backend's answer is the answer.
    const std::string canonical = requestText(*rp);
    const std::uint64_t fingerprint = requestFingerprint(*rp);
    const std::vector<std::size_t> chain = chainFor(fingerprint);

    const bool has_deadline = req.options.deadlineMs >= 0;
    const auto overall =
        SteadyClock::now() +
        std::chrono::milliseconds(
            has_deadline ? req.options.deadlineMs : 0);

    std::vector<bool> tried(pool_.size(), false);
    const int max_tries = std::max(cfg_.maxTries, 1);
    bool any_timeout = false;
    int attempts_made = 0;

    // Router-side flight record: one slot per routed request, written
    // whether the fan-out succeeded or not.  hops counts the tries
    // actually spent.
    auto recordFlight = [&](const std::string &status,
                            std::size_t bytes) {
        obs::FlightRecord fr;
        fr.traceId = trace_id;
        fr.requestId = req.id;
        fr.policy = req.policy;
        fr.status = status;
        fr.bytes = bytes;
        fr.hops = attempts_made;
        obs::FlightRecorder::global().record(fr);
        obs::noteRequestLatency(
            trace_id,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                SteadyClock::now() - route_t0)
                .count(),
            "cluster");
    };

    for (int attempt = 0; attempt < max_tries; ++attempt) {
        if (has_deadline && msUntil(overall) <= 0)
            break;
        bool over_bound = false;
        const std::optional<std::size_t> picked =
            pickBackend(chain, tried, &over_bound);
        if (!picked.has_value())
            break; // nothing routable
        const std::size_t backend = *picked;
        tried[backend] = true;

        int try_ms = cfg_.tryTimeoutMs;
        if (has_deadline)
            try_ms = std::min(try_ms, msUntil(overall));
        if (try_ms <= 0)
            break;

        // Hedge only on the first, un-saturated try: retries already
        // have a fallback, and a saturated cluster should not double
        // its own load.
        std::optional<std::size_t> hedge_mate;
        if (cfg_.hedgeDelayMs >= 0 && attempt == 0 && !over_bound) {
            for (const std::size_t b : chain) {
                if (b != backend && !tried[b] && pool_.routable(b)) {
                    hedge_mate = b;
                    break;
                }
            }
        }

        if (attempt > 0)
            JITSCHED_OBS(
                obs::ClusterMetrics::get().requestsRetried.add());

        ++attempts_made;
        inflight_[backend]->fetch_add(1, std::memory_order_relaxed);
        if (hedge_mate.has_value())
            inflight_[*hedge_mate]->fetch_add(
                1, std::memory_order_relaxed);
        const auto t0 = SteadyClock::now();
        Exchange ex =
            hedge_mate.has_value()
                ? hedgedExchange(backend, *hedge_mate, canonical,
                                 try_ms)
                : tryExchange(backend, canonical, try_ms);
        const auto elapsed_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                SteadyClock::now() - t0)
                .count();
        inflight_[backend]->fetch_sub(1, std::memory_order_relaxed);
        if (hedge_mate.has_value())
            inflight_[*hedge_mate]->fetch_sub(
                1, std::memory_order_relaxed);

        const std::size_t served_by =
            ex.hedgeWon && hedge_mate.has_value() ? *hedge_mate
                                                  : backend;
        JITSCHED_OBS(obs::ClusterMetrics::tryNsFor(
                         pool_.endpoint(served_by).label())
                         .observe(elapsed_ns));

        // One route_attempt span per try, anchored on the exchange
        // window.  The outcome tag tells the trace reader what this
        // hop meant: ok / retry (failed, chain continues) / spill
        // (answered off-owner) / hedge-won / hedge-lost.
        {
            std::string outcome;
            if (!ex.ok)
                outcome = "retry";
            else if (ex.hedged && ex.hedgeWon)
                outcome = "hedge-won";
            else if (ex.hedged)
                outcome = "hedge-lost";
            else if (served_by != chain[0])
                outcome = "spill";
            else
                outcome = "ok";
            obs::SpanCollector::global().recordBetween(
                trace_id, "cluster.route_attempt", t0,
                t0 + std::chrono::nanoseconds(elapsed_ns),
                {{"backend", pool_.endpoint(served_by).label()},
                 {"outcome", std::move(outcome)},
                 {"attempt", std::to_string(attempt)}});
        }

        if (ex.ok) {
            if (ex.hedgeWon && hedge_mate.has_value())
                tried[*hedge_mate] = true;
            JITSCHED_OBS({
                obs::ClusterMetrics &m = obs::ClusterMetrics::get();
                m.requestsRouted.add();
                obs::ClusterMetrics::routedToFor(
                    pool_.endpoint(served_by).label())
                    .add();
                if (frameServedFromCache(ex.frame))
                    obs::ClusterMetrics::resultCacheHitsFor(
                        pool_.endpoint(served_by).label())
                        .add();
            });
            if (served_by != chain[0]) {
                spilled_.fetch_add(1, std::memory_order_relaxed);
                JITSCHED_OBS(obs::ClusterMetrics::get()
                                 .requestsSpilled.add());
            }
            recordFlight("ok", ex.frame.size());
            return ex.frame;
        }
        any_timeout = any_timeout || ex.timedOut;
        if (ex.hedged && hedge_mate.has_value())
            tried[*hedge_mate] = true;

        // Jittered backoff before the next lane, clipped to the
        // deadline: better to try late than to answer late.
        if (attempt + 1 < max_tries) {
            int sleep_ms = backoffMs(attempt);
            if (has_deadline)
                sleep_ms = std::min(sleep_ms, msUntil(overall));
            if (sleep_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleep_ms));
        }
    }

    failed_.fetch_add(1, std::memory_order_relaxed);
    JITSCHED_OBS(obs::ClusterMetrics::get().requestsFailed.add());
    ServiceResponse err;
    if (has_deadline && msUntil(overall) <= 0) {
        err = makeErrorResponse(
            req.id, errcode::deadlineExceeded,
            "deadline-ms budget exhausted before any backend "
            "answered");
    } else {
        err = makeErrorResponse(
            req.id, errcode::unavailable,
            any_timeout ? "no backend answered within the try budget"
                        : "no routable backend");
    }
    err.stats.traceId = trace_id;
    const std::string err_text = responseText(err);
    recordFlight(err.code, err_text.size());
    return err_text;
}

} // namespace cluster
} // namespace jitsched
