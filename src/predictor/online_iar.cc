#include "predictor/online_iar.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace jitsched {

Schedule
completeScheduleFor(const Workload &w, const Schedule &planned,
                    std::size_t *missing)
{
    // First planned event per function, and the rest (recompiles).
    std::vector<std::int64_t> first_event(w.numFunctions(), -1);
    for (std::size_t i = 0; i < planned.size(); ++i) {
        const FuncId f = planned[i].func;
        if (f < w.numFunctions() && first_event[f] < 0)
            first_event[f] = static_cast<std::int64_t>(i);
    }

    Schedule out;
    std::size_t n_missing = 0;
    // Initial segment: every called function's first compile, in the
    // *actual* first-appearance order; planned level if the plan knew
    // the function, on-demand level 0 otherwise.
    for (const FuncId f : w.firstAppearanceOrder()) {
        if (first_event[f] >= 0) {
            const CompileEvent &ev =
                planned[static_cast<std::size_t>(first_event[f])];
            const Level max_level = w.function(f).highestLevel();
            out.append(f, std::min(ev.level, max_level));
        } else {
            out.append(f, 0);
            ++n_missing;
        }
    }
    // Recompiles: planned events that are not a function's first,
    // for functions that actually get called, clamped to real levels
    // and kept strictly increasing.
    std::vector<int> emitted(w.numFunctions(), -1);
    for (const CompileEvent &ev : out.events())
        emitted[ev.func] = ev.level;
    for (std::size_t i = 0; i < planned.size(); ++i) {
        const FuncId f = planned[i].func;
        if (f >= w.numFunctions() || w.callCount(f) == 0)
            continue;
        if (static_cast<std::int64_t>(i) == first_event[f])
            continue;
        const Level max_level = w.function(f).highestLevel();
        const Level level = std::min(planned[i].level, max_level);
        if (static_cast<int>(level) <= emitted[f])
            continue;
        out.append(f, level);
        emitted[f] = level;
    }

    if (missing != nullptr)
        *missing = n_missing;
    return out;
}

OnlineIarResult
onlineIarSchedule(const Workload &actual,
                  const NGramPredictor &predictor,
                  const ProfileRepository &repo,
                  const OnlineIarConfig &cfg)
{
    if (!repo.ready())
        JITSCHED_FATAL("onlineIarSchedule: empty profile repository");

    OnlineIarResult res;

    // --- Observe a prefix of the actual run.
    const auto &calls = actual.calls();
    const std::size_t prefix_len =
        std::min(cfg.observedPrefix, calls.size());
    const std::vector<FuncId> prefix(calls.begin(),
                                     calls.begin() + prefix_len);

    // --- Predict the rest of the sequence.
    std::size_t predicted_len = cfg.predictedLength;
    if (predicted_len == 0) {
        double expected_total = 0.0;
        for (const double c : repo.expectedCallCounts())
            expected_total += c;
        predicted_len = static_cast<std::size_t>(
            std::llround(std::max(expected_total,
                                  static_cast<double>(prefix_len))));
    }
    // Stochastic extrapolation: a greedy argmax walk would collapse
    // into a cycle over the hottest functions and starve the plan of
    // everything else.
    Rng rng(cfg.seed);
    std::vector<FuncId> predicted =
        predictor.extrapolateStochastic(prefix, predicted_len, rng);
    if (predicted.empty())
        predicted = prefix;

    // --- Build the planning workload: predicted sequence with the
    // repository's time estimates as its (believed) cost table.
    const TimeEstimates est = repo.estimates();
    std::vector<FunctionProfile> believed;
    believed.reserve(actual.numFunctions());
    for (std::size_t f = 0; f < actual.numFunctions(); ++f) {
        believed.emplace_back(actual.function(static_cast<FuncId>(f))
                                  .name(),
                              actual.function(static_cast<FuncId>(f))
                                  .size(),
                              est.perFunc[f]);
    }
    // Drop predicted ids outside the table (defensive; the predictor
    // was trained on runs of the same program).
    std::erase_if(predicted, [&](FuncId f) {
        return f >= believed.size();
    });
    const Workload planning("predicted:" + actual.name(),
                            std::move(believed),
                            std::move(predicted));

    // --- Plan with IAR on the predicted future.
    const std::vector<CandidatePair> cands = repo.candidateLevels();
    const IarResult iar = iarSchedule(planning, cands, cfg.iar);
    res.plannedSchedule = iar.schedule;

    // --- Patch to a schedule valid for the actual run.
    res.schedule = completeScheduleFor(actual, res.plannedSchedule,
                                       &res.unpredictedFunctions);
    res.predictionAccuracy = predictor.accuracy(calls);
    return res;
}

} // namespace jitsched
