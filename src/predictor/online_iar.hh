/**
 * @file
 * Online IAR: a deployable scheduler built from the Sec. 8 pieces.
 *
 * The limit study assumes the full call sequence and exact times are
 * known.  This module assembles the practical counterpart the paper
 * sketches: predict the call sequence with a cross-run n-gram model,
 * take the times and hotness from a cross-run profile repository, run
 * IAR on the *predicted* future, and fall back to on-demand low-level
 * compilation for anything the prediction missed.
 */

#ifndef JITSCHED_PREDICTOR_ONLINE_IAR_HH
#define JITSCHED_PREDICTOR_ONLINE_IAR_HH

#include <cstddef>

#include "core/iar.hh"
#include "core/schedule.hh"
#include "predictor/ngram.hh"
#include "predictor/profile_repository.hh"
#include "trace/workload.hh"

namespace jitsched {

/** Knobs of the online scheduler. */
struct OnlineIarConfig
{
    /** Calls observed before the schedule is planned. */
    std::size_t observedPrefix = 1024;

    /** Length of the predicted sequence IAR plans against. */
    std::size_t predictedLength = 0; ///< 0 = repository average

    /** Seed of the stochastic sequence extrapolation. */
    std::uint64_t seed = 7;

    /** IAR tunables. */
    IarConfig iar;
};

/** What the online scheduler produced. */
struct OnlineIarResult
{
    /** The deployable schedule (covers all actually called funcs). */
    Schedule schedule;

    /** The schedule IAR produced on the predicted sequence. */
    Schedule plannedSchedule;

    /** Functions the prediction missed (patched on-demand). */
    std::size_t unpredictedFunctions = 0;

    /** Top-1 accuracy of the predictor on the actual sequence. */
    double predictionAccuracy = 0.0;
};

/**
 * Plan a schedule for @p actual using only prediction-time knowledge
 * (the predictor, the repository, and the first observedPrefix calls
 * of the actual run), then patch it so it is valid for the whole
 * actual workload: every called-but-unplanned function gets a
 * low-level compile, merged in actual first-appearance order.
 */
OnlineIarResult onlineIarSchedule(const Workload &actual,
                                  const NGramPredictor &predictor,
                                  const ProfileRepository &repo,
                                  const OnlineIarConfig &cfg = {});

/**
 * Merge helper (exposed for tests): make @p planned valid for @p w by
 * inserting low-level compiles of missing called functions, keeping
 * first compiles in first-appearance order and recompiles in planned
 * order.
 */
Schedule completeScheduleFor(const Workload &w,
                             const Schedule &planned,
                             std::size_t *missing = nullptr);

} // namespace jitsched

#endif // JITSCHED_PREDICTOR_ONLINE_IAR_HH
