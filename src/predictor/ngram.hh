/**
 * @file
 * N-gram call-sequence predictor.
 *
 * Sec. 8 names call-sequence estimation as the first barrier to
 * deploying a good compilation scheduler, pointing at cross-run
 * behavior prediction as the remedy.  This module provides that
 * substrate: an order-k Markov model over function calls, trained on
 * call sequences from previous runs, able to extrapolate a likely
 * continuation from a freshly observed prefix.
 */

#ifndef JITSCHED_PREDICTOR_NGRAM_HH
#define JITSCHED_PREDICTOR_NGRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/rng.hh"
#include "support/types.hh"

namespace jitsched {

/**
 * Order-k Markov predictor over FuncId streams with backoff.
 *
 * Prediction uses the longest trained context available, backing off
 * to shorter contexts (down to the unigram distribution) when a
 * context was never observed.
 */
class NGramPredictor
{
  public:
    /** @param order context length k (>= 1). */
    explicit NGramPredictor(std::size_t order = 3);

    /** Accumulate counts from one training sequence. */
    void train(const std::vector<FuncId> &sequence);

    /**
     * Most likely next function after the given context (ties break
     * toward the smaller id); invalidFuncId when nothing was trained.
     */
    FuncId predictNext(const std::vector<FuncId> &context) const;

    /**
     * Extrapolate a sequence: starting from @p prefix, repeatedly
     * predict and append until @p total_length entries exist (the
     * prefix counts toward the total).  Deterministic: each step
     * appends the most likely successor.  Note that greedy argmax
     * walks can collapse into short cycles over the hottest
     * functions; schedulers should prefer extrapolateStochastic.
     */
    std::vector<FuncId> extrapolate(const std::vector<FuncId> &prefix,
                                    std::size_t total_length) const;

    /**
     * Extrapolate by *sampling* each successor from the trained
     * distribution (with backoff).  Statistically faithful to the
     * training sequences — call-count proportions are preserved in
     * expectation — which is what schedule planning needs.
     */
    std::vector<FuncId>
    extrapolateStochastic(const std::vector<FuncId> &prefix,
                          std::size_t total_length, Rng &rng) const;

    /**
     * Sample the next function after the given context;
     * invalidFuncId when nothing was trained.
     */
    FuncId sampleNext(const std::vector<FuncId> &context,
                      Rng &rng) const;

    /**
     * Top-1 accuracy of next-call prediction over a test sequence:
     * fraction of positions (after the first `order`) predicted
     * exactly.
     */
    double accuracy(const std::vector<FuncId> &sequence) const;

    std::size_t order() const { return order_; }

    /** Number of distinct contexts stored across all orders. */
    std::size_t contextCount() const;

  private:
    /** Pack a context window into a hashable key. */
    static std::uint64_t hashContext(const FuncId *ctx,
                                     std::size_t len);

    using Counts = std::unordered_map<FuncId, std::uint64_t>;

    std::size_t order_;
    /** tables_[k] maps length-(k+1) contexts to successor counts. */
    std::vector<std::unordered_map<std::uint64_t, Counts>> tables_;
    Counts unigram_;
};

} // namespace jitsched

#endif // JITSCHED_PREDICTOR_NGRAM_HH
