/**
 * @file
 * Cross-run profile repository.
 *
 * Sec. 8's second barrier to deploying a scheduler is obtaining
 * accurate per-level times.  Following the cross-run profile
 * repository idea the paper cites (Arnold et al.), this module
 * accumulates observations over multiple runs and exposes blended
 * estimates: times average across runs, call counts average too, and
 * confidence grows with the number of runs observed.
 */

#ifndef JITSCHED_PREDICTOR_PROFILE_REPOSITORY_HH
#define JITSCHED_PREDICTOR_PROFILE_REPOSITORY_HH

#include <cstdint>
#include <vector>

#include "core/candidate_levels.hh"
#include "trace/workload.hh"

namespace jitsched {

/**
 * Accumulates per-function observations across program runs.
 *
 * All runs must agree on the function table shape (same ids, same
 * level counts) — they are runs of the same program.
 */
class ProfileRepository
{
  public:
    ProfileRepository() = default;

    /**
     * Record one run: the workload carries the observed per-level
     * times and the call sequence of that run.
     *
     * @param observation_noise multiplicative log-normal sigma
     *        applied to the recorded times, modeling measurement
     *        jitter between runs (0 = exact).
     * @param seed noise seed for this run.
     */
    void recordRun(const Workload &run, double observation_noise = 0.0,
                   std::uint64_t seed = 1);

    /** Number of runs recorded. */
    std::size_t runCount() const { return runs_; }

    /** True once at least one run is recorded. */
    bool ready() const { return runs_ > 0; }

    /** Blended per-level time estimates (averages across runs). */
    TimeEstimates estimates() const;

    /** Average per-function call counts across runs. */
    std::vector<double> expectedCallCounts() const;

    /**
     * Candidate levels chosen from the repository's estimates and
     * expected call counts (what an online scheduler would use).
     */
    std::vector<CandidatePair> candidateLevels() const;

  private:
    std::size_t runs_ = 0;
    /** Per function, per level: summed observed times. */
    std::vector<std::vector<LevelCosts>> time_sums_;
    /** Per function: summed call counts. */
    std::vector<std::uint64_t> count_sums_;
};

} // namespace jitsched

#endif // JITSCHED_PREDICTOR_PROFILE_REPOSITORY_HH
