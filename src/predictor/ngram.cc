#include "predictor/ngram.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jitsched {

NGramPredictor::NGramPredictor(std::size_t order) : order_(order)
{
    if (order_ == 0)
        JITSCHED_FATAL("NGramPredictor: order must be >= 1");
    tables_.resize(order_);
}

std::uint64_t
NGramPredictor::hashContext(const FuncId *ctx, std::size_t len)
{
    // FNV-1a over the window; collisions only soften predictions.
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= ctx[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
NGramPredictor::train(const std::vector<FuncId> &sequence)
{
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        ++unigram_[sequence[i]];
        for (std::size_t k = 1; k <= order_; ++k) {
            if (i < k)
                break;
            const std::uint64_t key =
                hashContext(&sequence[i - k], k);
            ++tables_[k - 1][key][sequence[i]];
        }
    }
}

namespace {

/** Argmax over a successor-count map; smaller id wins ties. */
FuncId
argmax(const std::unordered_map<FuncId, std::uint64_t> &counts)
{
    FuncId best = invalidFuncId;
    std::uint64_t best_count = 0;
    for (const auto &[f, c] : counts) {
        if (c > best_count || (c == best_count && f < best)) {
            best = f;
            best_count = c;
        }
    }
    return best;
}

/** Draw a successor proportionally to its count. */
FuncId
weightedDraw(const std::unordered_map<FuncId, std::uint64_t> &counts,
             Rng &rng)
{
    std::uint64_t total = 0;
    for (const auto &[f, c] : counts)
        total += c;
    if (total == 0)
        return invalidFuncId;
    std::uint64_t pick = rng.nextBelow(total);
    for (const auto &[f, c] : counts) {
        if (pick < c)
            return f;
        pick -= c;
    }
    return invalidFuncId; // unreachable
}

} // anonymous namespace

FuncId
NGramPredictor::predictNext(const std::vector<FuncId> &context) const
{
    const std::size_t have = std::min(order_, context.size());
    // Longest-context-first backoff.
    for (std::size_t k = have; k >= 1; --k) {
        const std::uint64_t key =
            hashContext(&context[context.size() - k], k);
        const auto &table = tables_[k - 1];
        const auto it = table.find(key);
        if (it != table.end() && !it->second.empty())
            return argmax(it->second);
    }
    if (!unigram_.empty())
        return argmax(unigram_);
    return invalidFuncId;
}

std::vector<FuncId>
NGramPredictor::extrapolate(const std::vector<FuncId> &prefix,
                            std::size_t total_length) const
{
    std::vector<FuncId> out = prefix;
    out.reserve(std::max(total_length, prefix.size()));
    while (out.size() < total_length) {
        const FuncId next = predictNext(out);
        if (next == invalidFuncId)
            break;
        out.push_back(next);
    }
    return out;
}

FuncId
NGramPredictor::sampleNext(const std::vector<FuncId> &context,
                           Rng &rng) const
{
    const std::size_t have = std::min(order_, context.size());
    for (std::size_t k = have; k >= 1; --k) {
        const std::uint64_t key =
            hashContext(&context[context.size() - k], k);
        const auto &table = tables_[k - 1];
        const auto it = table.find(key);
        if (it != table.end() && !it->second.empty())
            return weightedDraw(it->second, rng);
    }
    if (!unigram_.empty())
        return weightedDraw(unigram_, rng);
    return invalidFuncId;
}

std::vector<FuncId>
NGramPredictor::extrapolateStochastic(
    const std::vector<FuncId> &prefix, std::size_t total_length,
    Rng &rng) const
{
    std::vector<FuncId> out = prefix;
    out.reserve(std::max(total_length, prefix.size()));
    while (out.size() < total_length) {
        const FuncId next = sampleNext(out, rng);
        if (next == invalidFuncId)
            break;
        out.push_back(next);
    }
    return out;
}

double
NGramPredictor::accuracy(const std::vector<FuncId> &sequence) const
{
    if (sequence.size() <= order_)
        return 0.0;
    std::uint64_t hits = 0, total = 0;
    std::vector<FuncId> context;
    for (std::size_t i = order_; i < sequence.size(); ++i) {
        // Only the last `order_` calls matter for prediction.
        context.assign(sequence.begin() + (i - order_),
                       sequence.begin() + i);
        if (predictNext(context) == sequence[i])
            ++hits;
        ++total;
    }
    return static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t
NGramPredictor::contextCount() const
{
    std::size_t n = 0;
    for (const auto &table : tables_)
        n += table.size();
    return n;
}

} // namespace jitsched
