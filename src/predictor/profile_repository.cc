#include "predictor/profile_repository.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace jitsched {

void
ProfileRepository::recordRun(const Workload &run,
                             double observation_noise,
                             std::uint64_t seed)
{
    if (runs_ == 0) {
        time_sums_.resize(run.numFunctions());
        for (std::size_t f = 0; f < run.numFunctions(); ++f)
            time_sums_[f].assign(
                run.function(static_cast<FuncId>(f)).numLevels(),
                LevelCosts{});
        count_sums_.assign(run.numFunctions(), 0);
    } else if (time_sums_.size() != run.numFunctions()) {
        JITSCHED_FATAL("ProfileRepository: run has ",
                       run.numFunctions(), " functions, repository ",
                       time_sums_.size());
    }

    Rng rng(seed);
    for (std::size_t f = 0; f < run.numFunctions(); ++f) {
        const auto &prof = run.function(static_cast<FuncId>(f));
        if (prof.numLevels() != time_sums_[f].size())
            JITSCHED_FATAL("ProfileRepository: function ",
                           prof.name(), " changed level count");
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            double c =
                static_cast<double>(prof.compileTime(
                    static_cast<Level>(j)));
            double e = static_cast<double>(
                prof.execTime(static_cast<Level>(j)));
            if (observation_noise > 0.0) {
                c *= rng.nextLogNormal(0.0, observation_noise);
                e *= rng.nextLogNormal(0.0, observation_noise);
            }
            time_sums_[f][j].compile +=
                static_cast<Tick>(std::llround(c));
            time_sums_[f][j].exec +=
                static_cast<Tick>(std::llround(std::max(1.0, e)));
        }
        count_sums_[f] += run.callCount(static_cast<FuncId>(f));
    }
    ++runs_;
}

TimeEstimates
ProfileRepository::estimates() const
{
    if (runs_ == 0)
        JITSCHED_PANIC("ProfileRepository::estimates before any run");
    TimeEstimates est;
    est.perFunc.resize(time_sums_.size());
    const auto n = static_cast<Tick>(runs_);
    for (std::size_t f = 0; f < time_sums_.size(); ++f) {
        est.perFunc[f].resize(time_sums_[f].size());
        for (std::size_t j = 0; j < time_sums_[f].size(); ++j) {
            est.perFunc[f][j].compile = time_sums_[f][j].compile / n;
            est.perFunc[f][j].exec =
                std::max<Tick>(1, time_sums_[f][j].exec / n);
        }
        // Averaged noisy observations can wobble; restore the
        // invariants so downstream code can rely on them.
        for (std::size_t j = 1; j < est.perFunc[f].size(); ++j) {
            est.perFunc[f][j].compile =
                std::max(est.perFunc[f][j].compile,
                         est.perFunc[f][j - 1].compile);
            est.perFunc[f][j].exec = std::min(
                est.perFunc[f][j].exec, est.perFunc[f][j - 1].exec);
        }
    }
    return est;
}

std::vector<double>
ProfileRepository::expectedCallCounts() const
{
    if (runs_ == 0)
        JITSCHED_PANIC("ProfileRepository::expectedCallCounts before "
                       "any run");
    std::vector<double> out(count_sums_.size());
    for (std::size_t f = 0; f < count_sums_.size(); ++f)
        out[f] = static_cast<double>(count_sums_[f]) /
                 static_cast<double>(runs_);
    return out;
}

std::vector<CandidatePair>
ProfileRepository::candidateLevels() const
{
    return chooseCandidateLevels(estimates(), expectedCallCounts());
}

} // namespace jitsched
