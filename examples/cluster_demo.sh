#!/usr/bin/env bash
#
# Sharded-cluster demo: two jitschedd backends behind one
# jitsched-router, all on ephemeral loopback ports.  Shows the three
# things the cluster layer is for:
#
#   1. transparency — the same wire protocol in front: jitsched-cli
#      talks to the router exactly as it would to a single daemon;
#   2. cache affinity — a repeated request is routed to the backend
#      that already solved it (watch the stats line's cache hits);
#   3. fault tolerance — kill a backend mid-demo and requests keep
#      being answered by the survivor.
#
#   examples/cluster_demo.sh [build-dir]     # default: build
#
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
jitschedd="$build_dir/bin/jitschedd"
router="$build_dir/bin/jitsched-router"
cli="$build_dir/bin/jitsched-cli"
for bin in "$jitschedd" "$router" "$cli"; do
    if [ ! -x "$bin" ]; then
        echo "missing $bin — build first: cmake --build $build_dir" >&2
        exit 1
    fi
done

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# The Fig. 2 instance: three functions, calls f0 f1 f2 f1 f2
# (trace/paper_examples.hh).
cat > "$workdir/workload" <<'EOF'
# jitsched workload trace
workload paper-fig2
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 5
0 1 2 1 2
EOF

scrape_port() { # logfile binary-name
    local port="" i
    for i in $(seq 1 50); do
        port="$(sed -n "s/^$2 listening on .*:\([0-9]*\)$/\1/p" "$1")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "$2 did not come up:" >&2
        cat "$1" >&2
        exit 1
    fi
    echo "$port"
}

"$jitschedd" --port 0 > "$workdir/a.log" &
pids+=($!)
backend_a_pid=$!
"$jitschedd" --port 0 > "$workdir/b.log" &
pids+=($!)
port_a="$(scrape_port "$workdir/a.log" jitschedd)"
port_b="$(scrape_port "$workdir/b.log" jitschedd)"
echo "backends up on 127.0.0.1:$port_a and 127.0.0.1:$port_b"

"$router" --port 0 --backend "127.0.0.1:$port_a" \
    --backend "127.0.0.1:$port_b" > "$workdir/router.log" &
pids+=($!)
port_r="$(scrape_port "$workdir/router.log" jitsched-router)"
echo "router up on 127.0.0.1:$port_r"
echo

echo "== 1. a request through the router (same protocol as a daemon) =="
"$cli" --port "$port_r" --policy iar --id 1 "$workdir/workload"
echo

echo "== 2. the identical request again: affinity routes it to the"
echo "==    same backend, whose EvalCache now answers (stats line) =="
"$cli" --port "$port_r" --policy iar --id 2 "$workdir/workload"
echo

echo "== 3. kill backend A mid-run; the survivor keeps answering =="
kill "$backend_a_pid" 2>/dev/null || true
wait "$backend_a_pid" 2>/dev/null || true
"$cli" --port "$port_r" --policy iar --id 3 "$workdir/workload"
echo

echo "== router health, as the router's own STATS scrape sees it =="
"$cli" --port "$port_r" stats | grep -E \
    "cluster\.(frames\.served|requests\.(routed|spilled|retried)|backend\.(ejections|readmissions)|probes\.sent)" \
    || true
echo
echo "Responses 1-3 are byte-identical above the stats line: the"
echo "cluster is invisible to clients, failures included."
