#!/usr/bin/env bash
#
# Scheduling-as-a-service demo: start jitschedd on an ephemeral
# loopback port, submit the paper's Fig. 2 worked example under every
# built-in policy with jitsched-cli, and print the resulting
# schedules side by side.
#
#   examples/service_demo.sh [build-dir]     # default: build
#
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
jitschedd="$build_dir/bin/jitschedd"
cli="$build_dir/bin/jitsched-cli"
for bin in "$jitschedd" "$cli"; do
    if [ ! -x "$bin" ]; then
        echo "missing $bin — build first: cmake --build $build_dir" >&2
        exit 1
    fi
done

# The Fig. 2 instance: three functions, calls f0 f1 f2 f1 f2
# (trace/paper_examples.hh).  The same text a client would save to
# disk is what goes over the wire.
workload="$(mktemp)"
log="$(mktemp)"
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -f "$workload" "$log"' EXIT
cat > "$workload" <<'EOF'
# jitsched workload trace
workload paper-fig2
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 5
0 1 2 1 2
EOF

# Port 0 = let the kernel pick; scrape the port from the daemon's
# "listening on" line.
"$jitschedd" --port 0 > "$log" &
daemon_pid=$!
port=""
for _ in $(seq 1 50); do
    port="$(sed -n 's/^jitschedd listening on .*:\([0-9]*\)$/\1/p' \
        "$log")"
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "jitschedd did not come up:" >&2
    cat "$log" >&2
    exit 1
fi
echo "jitschedd up on 127.0.0.1:$port"
echo

# One request per policy; --no-stats keeps the output deterministic.
policies="iar astar base-only opt-only lower-bound jikes v8"
id=1
for policy in $policies; do
    "$cli" --port "$port" --policy "$policy" --id "$id" --no-stats \
        "$workload" > "$log.$policy" || true
    id=$((id + 1))
done

echo "== responses, side by side =="
paste_args=()
for policy in $policies; do
    # Column: policy name, then the response frame.
    { echo "[$policy]"; cat "$log.$policy"; } > "$log.$policy.col"
    paste_args+=("$log.$policy.col")
done
# Tab-joined columns, expanded to fixed 26-char stops (the frames'
# longest lines), three policies per row block for 80-col terminals.
paste "${paste_args[0]}" "${paste_args[1]}" "${paste_args[2]}" \
    "${paste_args[3]}" | expand -t 26
echo
paste "${paste_args[4]}" "${paste_args[5]}" "${paste_args[6]}" \
    | expand -t 26
rm -f "$log".*

echo
echo "Reading the schedules: 'schedule K' + K '<func> <level>' lines"
echo "is the compile order each policy chose; 'makespan' is the end-"
echo "to-end time the simulator assigns it; 'lower-bound' is the"
echo "paper's Sec. 5.2 bound on any schedule for this instance."
