/**
 * @file
 * Quickstart: build a small OCSP instance by hand, evaluate a few
 * compilation schedules, and let IAR find a near-optimal one.
 *
 * This walks exactly the objects a user needs: FunctionProfile /
 * Workload to describe the program, Schedule + simulate() to score a
 * compilation order, and iarSchedule() to generate a good one.
 */

#include <iostream>

#include "core/brute_force.hh"
#include "core/candidate_levels.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "trace/workload.hh"

using namespace jitsched;

int
main()
{
    // --- Describe the program: three functions, two JIT levels.
    // Times are in ticks (nanoseconds); level 1 compiles slower but
    // produces faster code, per the paper's cost model.
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("parse", 120,
                       std::vector<LevelCosts>{{200, 900},
                                               {2000, 250}});
    funcs.emplace_back("eval", 80,
                       std::vector<LevelCosts>{{150, 400},
                                               {1500, 120}});
    funcs.emplace_back("print", 40,
                       std::vector<LevelCosts>{{100, 300},
                                               {900, 200}});

    // --- The dynamic call sequence: parse once, then an eval-heavy
    // loop with occasional printing.
    std::vector<FuncId> calls{0};
    for (int i = 0; i < 40; ++i) {
        calls.push_back(1);
        if (i % 8 == 0)
            calls.push_back(2);
    }
    const Workload w("quickstart", std::move(funcs), calls);

    std::cout << "Workload: " << w.numCalls() << " calls over "
              << w.numFunctions() << " functions\n\n";

    // --- Score two hand-written schedules.
    const Schedule naive({{0, 0}, {1, 0}, {2, 0}});
    const Schedule eager({{0, 1}, {1, 1}, {2, 1}});
    std::cout << "all-baseline schedule      "
              << naive.toString(w) << "\n  make-span "
              << formatTicks(simulate(w, naive).makespan) << "\n";
    std::cout << "all-optimized schedule     "
              << eager.toString(w) << "\n  make-span "
              << formatTicks(simulate(w, eager).makespan) << "\n";

    // --- Let IAR schedule it.
    const auto cands = oracleCandidateLevels(w);
    const IarResult iar = iarSchedule(w, cands);
    const SimResult best = simulate(w, iar.schedule);
    std::cout << "IAR schedule               "
              << iar.schedule.toString(w) << "\n  make-span "
              << formatTicks(best.makespan) << " ("
              << best.bubbleCount << " bubbles, "
              << formatTicks(best.totalBubble) << " waiting)\n";

    // --- Compare against the bound and the true optimum (tiny
    // instance, so exhaustive search is feasible).
    std::cout << "\nlower bound                "
              << formatTicks(lowerBoundCandidates(w, cands)) << "\n";
    const BruteForceResult opt = bruteForceOptimal(w);
    std::cout << "optimal (exhaustive)       "
              << formatTicks(opt.makespan) << "   schedule: "
              << opt.schedule.toString(w) << "\n";
    return 0;
}
