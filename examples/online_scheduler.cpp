/**
 * @file
 * Online scheduling demo: the Sec. 8 deployment story end to end.
 *
 * A "program" is run several times (different seeds model run-to-run
 * variation).  Earlier runs feed the cross-run profile repository and
 * the n-gram call-sequence predictor; on the next run, the online
 * IAR scheduler observes a short prefix, predicts the rest of the
 * sequence, plans with IAR on the prediction, and patches the plan
 * with on-demand compiles for anything it missed.  We compare:
 *
 *  - the default adaptive scheme (no cross-run knowledge),
 *  - online IAR (prediction-based, deployable),
 *  - offline IAR (knows the true sequence — the paper's limit).
 */

#include <iostream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "predictor/online_iar.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

/**
 * One run of "the program": identical function profiles and hotness
 * structure, run-specific call interleaving (the sequenceSeed only
 * varies the dynamic draws).
 */
Workload
programRun(const char *benchmark, std::size_t scale,
           std::uint64_t run_seed)
{
    SyntheticConfig cfg = dacapoConfig(dacapoSpec(benchmark), scale);
    cfg.sequenceSeed = 1 + run_seed * 104729;
    return generateSynthetic(cfg);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *benchmark = argc > 1 ? argv[1] : "luindex";
    const std::size_t scale = 64;
    const std::size_t training_runs = 3;

    std::cout << "program: " << benchmark << " (scale 1/" << scale
              << "), " << training_runs << " training runs\n\n";

    // --- Accumulate cross-run knowledge.
    NGramPredictor predictor(3);
    ProfileRepository repo;
    for (std::uint64_t r = 0; r < training_runs; ++r) {
        const Workload past = programRun(benchmark, scale, r);
        predictor.train(past.calls());
        // 10% observation noise models measurement jitter.
        repo.recordRun(past, 0.1, r + 1);
        std::cout << "trained on run " << r + 1 << " ("
                  << formatCount(past.numCalls()) << " calls)\n";
    }

    // --- Today's run: unseen sequence of the same program.
    const Workload today =
        programRun(benchmark, scale, training_runs);
    std::cout << "\ntoday's run: " << formatCount(today.numCalls())
              << " calls\n";
    std::cout << "predictor top-1 accuracy on it: "
              << formatFixed(predictor.accuracy(today.calls()) * 100,
                             1)
              << "%\n\n";

    // --- The three schedulers.
    const TimeEstimates est = buildDefaultEstimates(today);
    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(today);
    const Tick adaptive =
        runAdaptive(today, est, acfg).sim.makespan;

    OnlineIarConfig ocfg;
    ocfg.observedPrefix = 2048;
    const OnlineIarResult online =
        onlineIarSchedule(today, predictor, repo, ocfg);
    const Tick online_span =
        simulate(today, online.schedule).makespan;

    const auto cands = oracleCandidateLevels(today);
    const Tick offline =
        simulate(today, iarSchedule(today, cands).schedule)
            .makespan;
    const Tick lb = lowerBoundCandidates(today, cands);

    AsciiTable t({"scheduler", "make-span", "vs lower bound"});
    auto row = [&](const char *name, Tick span) {
        t.addRow({name, formatTicks(span),
                  formatFixed(static_cast<double>(span) /
                                  static_cast<double>(lb),
                              3)});
    };
    row("default adaptive (no cross-run data)", adaptive);
    row("online IAR (predicted sequence)", online_span);
    row("offline IAR (true sequence, the limit)", offline);
    t.print(std::cout);

    std::cout << "\nonline plan: "
              << online.plannedSchedule.size()
              << " planned compiles; " << online.unpredictedFunctions
              << " functions patched on demand\n";
    std::cout << "Reading: cross-run prediction recovers most of the "
                 "gap between the default scheme and the offline "
                 "limit, which is the deployment path Sec. 8 "
                 "sketches.\n";
    return 0;
}
