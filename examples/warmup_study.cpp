/**
 * @file
 * Warmup-run study: the paper's Fig. 5 experiment as a command-line
 * tool.  Point it at a Table-1 benchmark (or a workload trace file)
 * and it reports how every scheduling scheme does against the lower
 * bound, with the compile-level mix and bubble accounting that
 * explain *why*.
 *
 * Usage:
 *   warmup_study [benchmark|path.wl] [scale] [--oracle]
 *
 *   benchmark  one of the Table-1 names (default: antlr); an
 *              argument containing '/' or '.' is read as a trace
 *              file instead
 *   scale      divide the call-sequence length by this (default 16)
 *   --oracle   use the oracle cost-benefit model (Fig. 6 variant)
 */

#include <iostream>
#include <string>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "trace/binary_io.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"

using namespace jitsched;

namespace {

void
report(const std::string &name, const Workload &w,
       const SimResult &r, Tick lb, AsciiTable &table)
{
    std::string mix;
    for (std::size_t j = 0; j < r.callsAtLevel.size(); ++j) {
        if (j != 0)
            mix += '/';
        mix += formatFixed(100.0 *
                               static_cast<double>(
                                   r.callsAtLevel[j]) /
                               static_cast<double>(w.numCalls()),
                           0);
    }
    table.addRow({name,
                  formatFixed(static_cast<double>(r.makespan) /
                                  static_cast<double>(lb),
                              3),
                  formatTicks(r.makespan), formatTicks(r.totalBubble),
                  mix + " %"});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string which = argc > 1 ? argv[1] : "antlr";
    std::size_t scale = 16;
    bool oracle = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--oracle")
            oracle = true;
        else if (const auto v = parseInt(arg))
            scale = static_cast<std::size_t>(*v);
    }

    const bool from_file = which.find('/') != std::string::npos ||
                           which.find('.') != std::string::npos;
    const Workload w = from_file
                           ? loadWorkloadAuto(which)
                           : makeDacapoWorkload(which, scale);

    std::cout << "workload '" << w.name() << "': "
              << formatCount(w.numCalls()) << " calls, "
              << w.numFunctions() << " functions, "
              << w.maxLevels() << " JIT levels\n";
    std::cout << "cost-benefit model: "
              << (oracle ? "oracle" : "default (estimates)")
              << "\n\n";

    CostBenefitConfig mcfg;
    mcfg.kind = oracle ? ModelKind::Oracle : ModelKind::Default;
    const TimeEstimates est = buildEstimates(w, mcfg);
    const auto cands = modelCandidateLevels(w, mcfg);
    const Tick lb = lowerBoundCandidates(w, cands);

    AsciiTable table({"scheme", "norm. make-span", "make-span",
                      "waiting (bubbles)", "calls per level"});

    const IarResult iar = iarSchedule(w, cands);
    report("IAR", w, simulate(w, iar.schedule), lb, table);

    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w);
    report("default (Jikes scheme)", w,
           runAdaptive(w, est, acfg).sim, lb, table);

    report("base-level only", w,
           simulate(w, baseLevelSchedule(w, cands)), lb, table);
    report("optimizing-level only", w,
           simulate(w, optimizingLevelSchedule(w, cands)), lb,
           table);

    table.print(std::cout);
    std::cout << "\nlower bound (all calls at their cost-effective "
                 "level): "
              << formatTicks(lb) << "\n";
    std::cout << "IAR decisions: " << iar.numReplace
              << " compiled high up front, " << iar.numAppend
              << " recompiled after startup, " << iar.numOther
              << " left at the base level; " << iar.slackUpgrades
              << " slack upgrades, " << iar.gapAppends
              << " ending-gap appends.\n";
    return 0;
}
