/**
 * @file
 * Trace tooling: generate synthetic workloads, save them in the text
 * trace format, reload them, and print summary statistics — the
 * round trip a user needs to plug their own collected traces into
 * the schedulers.
 *
 * Usage:
 *   trace_tools gen <benchmark|name> <out.wl|out.jsw> [scale]
 *   trace_tools info <in.wl|in.jsw>
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "core/candidate_levels.hh"
#include "core/lower_bound.hh"
#include "support/strutil.hh"
#include "support/table.hh"
#include "trace/dacapo.hh"
#include "trace/binary_io.hh"
#include "trace/trace_io.hh"

using namespace jitsched;

namespace {

int
generate(const std::string &name, const std::string &path,
         std::size_t scale)
{
    Workload w = [&] {
        for (const DacapoSpec &spec : dacapoSpecs()) {
            if (spec.name == name)
                return makeDacapoWorkload(name, scale);
        }
        SyntheticConfig cfg;
        cfg.name = name;
        cfg.numFunctions = 500;
        cfg.numCalls = 250'000 / scale;
        cfg.targetLevel0ExecTime =
            static_cast<Tick>(500 * ticksPerMs / scale);
        cfg.compileTimeScale = 1.0 / static_cast<double>(scale);
        return generateSynthetic(cfg);
    }();
    if (path.size() > 4 &&
        path.compare(path.size() - 4, 4, ".jsw") == 0)
        writeWorkloadBinaryFile(path, w);
    else
        writeWorkloadFile(path, w);
    std::cout << "wrote '" << path << "': "
              << formatCount(w.numCalls()) << " calls, "
              << w.numFunctions() << " functions\n";
    return 0;
}

int
info(const std::string &path)
{
    const Workload w = loadWorkloadAuto(path);
    std::cout << "workload '" << w.name() << "'\n";

    AsciiTable t({"property", "value"});
    t.addRow({"functions", std::to_string(w.numFunctions())});
    t.addRow({"called functions",
              std::to_string(w.numCalledFunctions())});
    t.addRow({"calls", formatCount(w.numCalls())});
    t.addRow({"JIT levels", std::to_string(w.maxLevels())});
    for (std::size_t j = 0; j < w.maxLevels(); ++j)
        t.addRow({"exec time if all at level " + std::to_string(j),
                  formatTicks(w.totalExecAtLevel(
                      static_cast<Level>(j)))});
    const auto cands = oracleCandidateLevels(w);
    t.addRow({"lower bound (cost-effective levels)",
              formatTicks(lowerBoundCandidates(w, cands))});

    // Hotness profile: share of calls by the top functions.
    std::vector<std::uint64_t> counts;
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        counts.push_back(w.callCount(static_cast<FuncId>(f)));
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top10 = 0, top100 = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i < 10)
            top10 += counts[i];
        if (i < 100)
            top100 += counts[i];
    }
    t.addRow({"calls in hottest 10 functions",
              formatFixed(100.0 * static_cast<double>(top10) /
                              static_cast<double>(w.numCalls()),
                          1) +
                  " %"});
    t.addRow({"calls in hottest 100 functions",
              formatFixed(100.0 * static_cast<double>(top100) /
                              static_cast<double>(w.numCalls()),
                          1) +
                  " %"});
    t.print(std::cout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "gen" && argc >= 4) {
        std::size_t scale = 16;
        if (argc >= 5) {
            if (const auto v = parseInt(argv[4]))
                scale = static_cast<std::size_t>(*v);
        }
        return generate(argv[2], argv[3], scale);
    }
    if (cmd == "info" && argc >= 3)
        return info(argv[2]);

    std::cout << "usage:\n"
              << "  trace_tools gen <benchmark|name> <out.wl> "
                 "[scale]\n"
              << "  trace_tools info <in.wl>\n";
    return cmd.empty() ? 0 : 1;
}
