/**
 * @file
 * Theorem 2 made concrete: the PARTITION -> OCSP reduction.
 *
 * Takes a multiset of integers (from the command line, or a default),
 * builds the paper's OCSP instance, and demonstrates both directions
 * of the equivalence:
 *  - a perfect partition (found by DP) converts into a compilation
 *    schedule that achieves the make-span bound 2(1 + t + n);
 *  - conversely, a schedule achieving the bound yields a partition;
 *  - when no perfect partition exists, exhaustive search confirms
 *    that no schedule reaches the bound.
 *
 * Usage: npcomplete_demo [v1 v2 v3 ...]
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/brute_force.hh"
#include "npc/reduction.hh"
#include "sim/makespan.hh"
#include "support/strutil.hh"

using namespace jitsched;

int
main(int argc, char **argv)
{
    PartitionInstance inst;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i) {
            const auto v = parseInt(argv[i]);
            if (!v || *v < 0) {
                std::cerr << "values must be non-negative integers\n";
                return 1;
            }
            inst.values.push_back(
                static_cast<std::uint64_t>(*v));
        }
    } else {
        inst.values = {3, 1, 1, 2, 2, 1};
    }

    std::cout << "PARTITION instance S = {";
    for (std::size_t i = 0; i < inst.values.size(); ++i)
        std::cout << (i ? ", " : "") << inst.values[i];
    std::cout << "}, total " << inst.total() << "\n";

    if (inst.total() % 2 != 0) {
        std::cout << "odd total: trivially no perfect partition "
                     "(the reduction needs an even total)\n";
        return 0;
    }

    const ReductionInstance red = buildReduction(inst);
    std::cout << "reduced OCSP instance: "
              << red.workload.numFunctions() << " functions, "
              << red.workload.numCalls()
              << " calls; Theorem-2 bound 2(1+t+n) = " << red.bound
              << "\n\n";

    const auto subset = solvePartition(inst);
    if (subset) {
        std::cout << "DP found a perfect partition: X = {indices ";
        for (std::size_t i = 0; i < subset->size(); ++i)
            std::cout << (i ? ", " : "") << (*subset)[i];
        std::cout << "}\n";

        const Schedule s = scheduleFromPartition(red, *subset);
        const SimResult r = simulate(red.workload, s);
        std::cout << "witness schedule: "
                  << s.toString(red.workload) << "\n";
        std::cout << "its make-span: " << r.makespan
                  << (r.makespan == red.bound
                          ? "  == bound, as Theorem 2 promises\n"
                          : "  (UNEXPECTED: differs from bound!)\n");

        const auto back = partitionFromSchedule(inst, red, s);
        std::cout << "extracting the partition back from the "
                     "schedule: "
                  << (back ? "succeeded" : "FAILED") << "\n";
    } else {
        std::cout << "DP: no perfect partition exists.\n";
        if (inst.values.size() <= 5) {
            const BruteForceResult bf =
                bruteForceOptimal(red.workload);
            std::cout << "exhaustive search over schedules: optimal "
                         "make-span "
                      << bf.makespan << " > bound " << red.bound
                      << " — no schedule reaches the bound, "
                         "matching the converse direction.\n";
        } else {
            std::cout << "(instance too large for the exhaustive "
                         "converse check; try <= 5 values)\n";
        }
    }
    return 0;
}
