#!/usr/bin/env bash
#
# Tier-1 gate: configure (if needed), build, and run the fast test
# suite.  This is the command every change must keep green.
#
#   scripts/check.sh           # build + ctest -L tier1
#   scripts/check.sh --tsan    # also build the thread-heavy tests
#                              # (`exec` and `service` ctest labels)
#                              # with -fsanitize=thread in build-tsan/
#                              # and run them (thread pool, eval
#                              # cache, batch determinism, admission
#                              # queue, loopback server)
#   scripts/check.sh --bench-smoke
#                              # also run bench_astar --smoke and diff
#                              # its deterministic search counters
#                              # against bench/expectations/ — catches
#                              # unintended changes to A* expansion
#                              # order, pruning, or evaluation totals
#
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
run_bench_smoke=0
for arg in "$@"; do
    case "$arg" in
        --tsan) run_tsan=1 ;;
        --bench-smoke) run_bench_smoke=1 ;;
        *)
            echo "usage: scripts/check.sh [--tsan] [--bench-smoke]" >&2
            exit 2
            ;;
    esac
done

cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest -L tier1 --output-on-failure -j "$(nproc)")

if [ "$run_bench_smoke" -eq 1 ]; then
    echo "== Bench smoke (deterministic A* counters) =="
    ./build/bench/bench_astar --smoke > build/astar_smoke.out
    if ! diff -u bench/expectations/astar_smoke.txt \
            build/astar_smoke.out; then
        echo "bench smoke: A* counters diverged from" \
             "bench/expectations/astar_smoke.txt" >&2
        echo "(if the change is intentional, regenerate with:" \
             "./build/bench/bench_astar --smoke >" \
             "bench/expectations/astar_smoke.txt)" >&2
        exit 1
    fi
    echo "bench smoke: counters match"
fi

if [ "$run_tsan" -eq 1 ]; then
    echo "== ThreadSanitizer pass (exec + service tests) =="
    cmake -B build-tsan -S . -DJITSCHED_TSAN=ON \
        -DJITSCHED_BUILD_BENCH=OFF -DJITSCHED_BUILD_EXAMPLES=OFF \
        >/dev/null
    cmake --build build-tsan --target test_exec test_service -j
    # More than one executor thread, so the pool and the sharded
    # cache actually race if they can.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_exec \
        --gtest_filter='ThreadPool*:EvalCache*:Batch*'
    # The whole service stack is concurrent: acceptor + handler
    # threads, admission worker, evaluation pool, parallel clients.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_service
fi

echo "check.sh: all green"
