#!/usr/bin/env bash
#
# Tier-1 gate: configure (if needed), build, and run the fast test
# suite.  This is the command every change must keep green.
#
#   scripts/check.sh           # build + ctest -L tier1
#   scripts/check.sh --tsan    # also build the thread-heavy tests
#                              # (`exec`, `service` and `cluster`
#                              # ctest labels) with -fsanitize=thread
#                              # in build-tsan/ and run them (thread
#                              # pool, eval cache, batch determinism,
#                              # admission queue, loopback server,
#                              # cluster router + health prober)
#   scripts/check.sh --bench-smoke
#                              # also run bench_astar --smoke and diff
#                              # its deterministic search counters
#                              # against bench/expectations/ — catches
#                              # unintended changes to A* expansion
#                              # order, pruning, or evaluation totals
#   scripts/check.sh --par-smoke
#                              # also run bench_astar_par --smoke and
#                              # diff its deterministic counters
#                              # (single-worker parallel A*, incumbent
#                              # pruning, cross-mode cost agreement)
#                              # against bench/expectations/
#   scripts/check.sh --obs-smoke
#                              # also exercise the observability
#                              # surface end to end: start jitschedd,
#                              # submit the Fig. 1 workload with
#                              # --trace-out and validate the Chrome
#                              # trace JSON with jitsched-trace-check,
#                              # then scrape STATS and diff the
#                              # instrument key set against
#                              # bench/expectations/obs_keys.txt
#   scripts/check.sh --fuzz-smoke
#                              # also run the differential fuzzer:
#                              # ~20s of jitsched-fuzz solvers, ~10s
#                              # of jitsched-fuzz protocol and ~10s of
#                              # jitsched-fuzz result-cache, plus the
#                              # broken-oracle canaries (runs with the
#                              # lower-bound / astar-par /
#                              # result-cache oracles deliberately
#                              # broken MUST fail — proves the harness
#                              # can still detect a broken oracle)
#   scripts/check.sh --asan    # also build the tree with
#                              # -fsanitize=address,undefined in
#                              # build-asan/ and run the `qa` and
#                              # `service` test labels plus a short
#                              # fuzz smoke under the sanitizers
#   scripts/check.sh --cluster-smoke
#                              # also drive the real cluster binaries
#                              # end to end: two jitschedd backends +
#                              # jitsched-router on ephemeral ports,
#                              # byte-compare routed responses against
#                              # a direct daemon, kill one backend
#                              # mid-run (answers must keep coming),
#                              # and scrape the router's STATS
#   scripts/check.sh --trace-smoke
#                              # also exercise distributed tracing end
#                              # to end: 2 jitschedd + jitsched-router,
#                              # all with --trace-out, drive traced
#                              # requests through the router, scrape
#                              # the flight recorder with DUMP,
#                              # validate every written trace with
#                              # jitsched-trace-check, and diff the
#                              # observed span-name set against
#                              # bench/expectations/span_keys.txt
#   scripts/check.sh --result-cache-smoke
#                              # also exercise the request-level
#                              # result cache end to end: jitschedd
#                              # with --result-cache-mb + a snapshot
#                              # file, the same workload twice (the
#                              # second answer must come from the
#                              # store, byte-identical to the fresh
#                              # solve), `jitsched-cli snapshot`, and
#                              # a warm restart whose first answer is
#                              # already a hit — plus the cache-off
#                              # default, whose wire bytes must not
#                              # mention the cache at all
#
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
run_bench_smoke=0
run_par_smoke=0
run_obs_smoke=0
run_fuzz_smoke=0
run_asan=0
run_cluster_smoke=0
run_trace_smoke=0
run_result_cache_smoke=0
for arg in "$@"; do
    case "$arg" in
        --tsan) run_tsan=1 ;;
        --bench-smoke) run_bench_smoke=1 ;;
        --par-smoke) run_par_smoke=1 ;;
        --obs-smoke) run_obs_smoke=1 ;;
        --fuzz-smoke) run_fuzz_smoke=1 ;;
        --asan) run_asan=1 ;;
        --cluster-smoke) run_cluster_smoke=1 ;;
        --trace-smoke) run_trace_smoke=1 ;;
        --result-cache-smoke) run_result_cache_smoke=1 ;;
        *)
            echo "usage: scripts/check.sh [--tsan] [--bench-smoke]" \
                 "[--par-smoke] [--obs-smoke] [--fuzz-smoke]" \
                 "[--asan] [--cluster-smoke] [--trace-smoke]" \
                 "[--result-cache-smoke]" >&2
            exit 2
            ;;
    esac
done

cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest -L tier1 --output-on-failure -j "$(nproc)")

if [ "$run_bench_smoke" -eq 1 ]; then
    echo "== Bench smoke (deterministic A* counters) =="
    ./build/bench/bench_astar --smoke > build/astar_smoke.out
    if ! diff -u bench/expectations/astar_smoke.txt \
            build/astar_smoke.out; then
        echo "bench smoke: A* counters diverged from" \
             "bench/expectations/astar_smoke.txt" >&2
        echo "(if the change is intentional, regenerate with:" \
             "./build/bench/bench_astar --smoke >" \
             "bench/expectations/astar_smoke.txt)" >&2
        exit 1
    fi
    echo "bench smoke: counters match"
fi

if [ "$run_par_smoke" -eq 1 ]; then
    echo "== Parallel A* smoke (deterministic astar-par counters) =="
    ./build/bench/bench_astar_par --smoke > build/astar_par_smoke.out
    if ! diff -u bench/expectations/astar_par_smoke.txt \
            build/astar_par_smoke.out; then
        echo "par smoke: astar-par counters diverged from" \
             "bench/expectations/astar_par_smoke.txt" >&2
        echo "(if the change is intentional, regenerate with:" \
             "./build/bench/bench_astar_par --smoke >" \
             "bench/expectations/astar_par_smoke.txt)" >&2
        exit 1
    fi
    echo "par smoke: counters match"
fi

if [ "$run_obs_smoke" -eq 1 ]; then
    echo "== Observability smoke (trace export + STATS key set) =="
    workload="$(mktemp)" log="$(mktemp)" trace="$(mktemp --suffix=.json)"
    daemon_pid=""
    cleanup_obs() {
        [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
        [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
        rm -f "$workload" "$log" "$trace" "$log.stats"
    }
    trap cleanup_obs EXIT
    # The paper's Fig. 1 instance (trace/paper_examples.hh).
    cat > "$workload" <<'EOF'
# jitsched workload trace
workload paper-fig1
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 4
0 1 2 1
EOF
    ./build/bin/jitschedd --port 0 > "$log" &
    daemon_pid=$!
    port=""
    for _ in $(seq 1 50); do
        port="$(sed -n \
            's/^jitschedd listening on .*:\([0-9]*\)$/\1/p' "$log")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "obs smoke: jitschedd did not come up:" >&2
        cat "$log" >&2
        exit 1
    fi
    # Solve + timeline export, then validate the trace JSON.
    ./build/bin/jitsched-cli --port "$port" --policy iar --no-stats \
        --trace-out "$trace" "$workload" > /dev/null
    ./build/bin/jitsched-trace-check "$trace"
    # The STATS key set must match the checked-in inventory (values
    # are volatile; the keys are the scrape contract).
    ./build/bin/jitsched-cli --port "$port" stats > "$log.stats"
    if ! awk '/^snapshot /{s=1; next} /^end$/{s=0} s{print $1, $2}' \
            "$log.stats" | diff -u bench/expectations/obs_keys.txt -
    then
        echo "obs smoke: STATS keys diverged from" \
             "bench/expectations/obs_keys.txt" >&2
        echo "(if the change is intentional, regenerate the" \
             "expectation from the awk output above)" >&2
        exit 1
    fi
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
    echo "obs smoke: trace valid, STATS keys match"
fi

if [ "$run_cluster_smoke" -eq 1 ]; then
    echo "== Cluster smoke (2 jitschedd + jitsched-router) =="
    cs_dir="$(mktemp -d)"
    cs_pids=()
    cleanup_cluster() {
        for pid in "${cs_pids[@]:-}"; do
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        done
        rm -rf "$cs_dir"
    }
    trap cleanup_cluster EXIT
    # The paper's Fig. 1 instance (trace/paper_examples.hh).
    cat > "$cs_dir/workload" <<'EOF'
# jitsched workload trace
workload paper-fig1
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 4
0 1 2 1
EOF
    scrape_port() { # logfile binary-name
        local port="" i
        for i in $(seq 1 50); do
            port="$(sed -n \
                "s/^$2 listening on .*:\([0-9]*\)$/\1/p" "$1")"
            [ -n "$port" ] && break
            sleep 0.1
        done
        if [ -z "$port" ]; then
            echo "cluster smoke: $2 did not come up:" >&2
            cat "$1" >&2
            exit 1
        fi
        echo "$port"
    }
    ./build/bin/jitschedd --port 0 > "$cs_dir/a.log" &
    cs_pids+=($!)
    ./build/bin/jitschedd --port 0 > "$cs_dir/b.log" &
    cs_pids+=($!)
    port_a="$(scrape_port "$cs_dir/a.log" jitschedd)"
    port_b="$(scrape_port "$cs_dir/b.log" jitschedd)"
    ./build/bin/jitsched-router --port 0 \
        --backend "127.0.0.1:$port_a" \
        --backend "127.0.0.1:$port_b" > "$cs_dir/router.log" &
    router_pid=$!
    cs_pids+=("$router_pid")
    port_r="$(scrape_port "$cs_dir/router.log" jitsched-router)"

    # Byte-identity: the same request through the router and against
    # a daemon directly must print the same response (--no-stats
    # drops the one volatile line).
    ./build/bin/jitsched-cli --port "$port_r" --policy iar --id 1 \
        --no-stats --timeout-ms 10000 "$cs_dir/workload" \
        > "$cs_dir/via-router.out"
    ./build/bin/jitsched-cli --port "$port_a" --policy iar --id 1 \
        --no-stats --timeout-ms 10000 "$cs_dir/workload" \
        > "$cs_dir/direct.out"
    if ! diff -u "$cs_dir/direct.out" "$cs_dir/via-router.out"; then
        echo "cluster smoke: routed response diverged from the" \
             "direct daemon" >&2
        exit 1
    fi

    # Fault tolerance: kill backend A; requests must keep being
    # answered, and still byte-identically, by the survivor.  (The
    # request id is kept at 1 so the reference bytes stay valid.)
    kill "${cs_pids[0]}" 2>/dev/null || true
    wait "${cs_pids[0]}" 2>/dev/null || true
    for shot in 1 2 3; do
        ./build/bin/jitsched-cli --port "$port_r" --policy iar \
            --id 1 --no-stats --timeout-ms 10000 \
            "$cs_dir/workload" > "$cs_dir/after-kill.$shot.out"
        if ! diff -u "$cs_dir/direct.out" \
                "$cs_dir/after-kill.$shot.out"; then
            echo "cluster smoke: response $shot after the backend" \
                 "kill diverged" >&2
            exit 1
        fi
    done

    # The router's own STATS surface.
    ./build/bin/jitsched-cli --port "$port_r" --timeout-ms 10000 \
        stats > "$cs_dir/stats.out"
    if ! grep -q "cluster.frames.served" "$cs_dir/stats.out"; then
        echo "cluster smoke: router STATS is missing cluster.*" \
             "instruments" >&2
        cat "$cs_dir/stats.out" >&2
        exit 1
    fi
    echo "cluster smoke: byte-identical routing, failover, STATS ok"
fi

if [ "$run_trace_smoke" -eq 1 ]; then
    echo "== Trace smoke (distributed tracing through the router) =="
    tr_dir="$(mktemp -d)"
    tr_pids=()
    cleanup_trace_smoke() {
        for pid in "${tr_pids[@]:-}"; do
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        done
        rm -rf "$tr_dir"
    }
    trap cleanup_trace_smoke EXIT
    # The paper's Fig. 1 instance (trace/paper_examples.hh).
    cat > "$tr_dir/workload" <<'EOF'
# jitsched workload trace
workload paper-fig1
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 4
0 1 2 1
EOF
    tr_scrape_port() { # logfile binary-name
        local port="" i
        for i in $(seq 1 50); do
            port="$(sed -n \
                "s/^$2 listening on .*:\([0-9]*\)$/\1/p" "$1")"
            [ -n "$port" ] && break
            sleep 0.1
        done
        if [ -z "$port" ]; then
            echo "trace smoke: $2 did not come up:" >&2
            cat "$1" >&2
            exit 1
        fi
        echo "$port"
    }
    # The backends run with the result cache on so the probe span
    # (service.result_cache) is part of the observed taxonomy.
    ./build/bin/jitschedd --port 0 --result-cache-mb 16 \
        --trace-out "$tr_dir/a.json" > "$tr_dir/a.log" &
    tr_pids+=($!)
    ./build/bin/jitschedd --port 0 --result-cache-mb 16 \
        --trace-out "$tr_dir/b.json" > "$tr_dir/b.log" &
    tr_pids+=($!)
    port_a="$(tr_scrape_port "$tr_dir/a.log" jitschedd)"
    port_b="$(tr_scrape_port "$tr_dir/b.log" jitschedd)"
    ./build/bin/jitsched-router --port 0 \
        --backend "127.0.0.1:$port_a" \
        --backend "127.0.0.1:$port_b" \
        --trace-out "$tr_dir/router.json" > "$tr_dir/router.log" &
    tr_pids+=($!)
    port_r="$(tr_scrape_port "$tr_dir/router.log" jitsched-router)"

    # One request with a caller-chosen trace id, one where the CLI
    # mints its own; both must be answered and traced.
    ./build/bin/jitsched-cli --port "$port_r" --policy iar --id 1 \
        --trace-id deadbeef --timeout-ms 10000 \
        "$tr_dir/workload" > /dev/null
    ./build/bin/jitsched-cli --port "$port_r" --policy iar --id 2 \
        --timeout-ms 10000 "$tr_dir/workload" > /dev/null

    # The router's flight recorder must remember the traced request,
    # scrapeable over the wire with the DUMP verb.
    ./build/bin/jitsched-cli --port "$port_r" --timeout-ms 10000 \
        dump > "$tr_dir/dump.out"
    if ! grep -q "trace deadbeef " "$tr_dir/dump.out"; then
        echo "trace smoke: DUMP through the router is missing the" \
             "deadbeef flight record" >&2
        cat "$tr_dir/dump.out" >&2
        exit 1
    fi

    # Graceful SIGTERM so every process writes its trace file.
    for pid in "${tr_pids[@]}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    tr_pids=()

    # Every trace file actually written must validate (an idle
    # backend skips its file), and the union of span names across
    # them is the checked-in taxonomy.
    wrote=0
    for f in a.json b.json router.json; do
        [ -f "$tr_dir/$f" ] || continue
        ./build/bin/jitsched-trace-check "$tr_dir/$f"
        wrote=$((wrote + 1))
    done
    if [ "$wrote" -lt 2 ]; then
        echo "trace smoke: expected at least the router and one" \
             "backend to write traces, got $wrote file(s)" >&2
        exit 1
    fi
    if ! sed -n 's/.*"name": "\([^"]*\)", "cat": "span".*/\1/p' \
            "$tr_dir"/*.json | sort -u \
            | diff -u bench/expectations/span_keys.txt -; then
        echo "trace smoke: observed span names diverged from" \
             "bench/expectations/span_keys.txt" >&2
        echo "(if the taxonomy change is intentional, regenerate" \
             "the expectation from the sed output above)" >&2
        exit 1
    fi
    echo "trace smoke: traces valid, DUMP ok, span names match"
fi

if [ "$run_result_cache_smoke" -eq 1 ]; then
    echo "== Result-cache smoke (hits, snapshot, warm restart) =="
    rc_dir="$(mktemp -d)"
    rc_pid=""
    cleanup_result_cache() {
        [ -n "$rc_pid" ] && kill "$rc_pid" 2>/dev/null || true
        [ -n "$rc_pid" ] && wait "$rc_pid" 2>/dev/null || true
        rm -rf "$rc_dir"
    }
    trap cleanup_result_cache EXIT
    # The paper's Fig. 1 instance (trace/paper_examples.hh).
    cat > "$rc_dir/workload" <<'EOF'
# jitsched workload trace
workload paper-fig1
levels 2
func 0 f0 1 1 1 1 1
func 1 f1 1 1 3 3 2
func 2 f2 1 3 3 5 1
calls 4
0 1 2 1
EOF
    rc_scrape_port() { # logfile
        local port="" i
        for i in $(seq 1 50); do
            port="$(sed -n \
                's/^jitschedd listening on .*:\([0-9]*\)$/\1/p' "$1")"
            [ -n "$port" ] && break
            sleep 0.1
        done
        if [ -z "$port" ]; then
            echo "result-cache smoke: jitschedd did not come up:" >&2
            cat "$1" >&2
            exit 1
        fi
        echo "$port"
    }

    # Cache off (the default): the wire must not mention the cache.
    ./build/bin/jitschedd --port 0 > "$rc_dir/off.log" &
    rc_pid=$!
    port="$(rc_scrape_port "$rc_dir/off.log")"
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 1 \
        --timeout-ms 10000 "$rc_dir/workload" > "$rc_dir/off.out"
    if grep -q "result-cache" "$rc_dir/off.out"; then
        echo "result-cache smoke: cache-off response mentions the" \
             "result cache — the off path is no longer byte-clean" >&2
        cat "$rc_dir/off.out" >&2
        exit 1
    fi
    kill "$rc_pid" 2>/dev/null || true
    wait "$rc_pid" 2>/dev/null || true
    rc_pid=""

    # Cache on, with a snapshot file.
    ./build/bin/jitschedd --port 0 --result-cache-mb 16 \
        --snapshot-file "$rc_dir/snap" > "$rc_dir/on.log" &
    rc_pid=$!
    port="$(rc_scrape_port "$rc_dir/on.log")"

    # The same request twice: a fresh solve, then a store hit that
    # must be byte-identical (--no-stats drops the one volatile
    # line; the id is kept equal so the echo matches too).
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 7 \
        --no-stats --timeout-ms 10000 "$rc_dir/workload" \
        > "$rc_dir/fresh.out"
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 7 \
        --no-stats --timeout-ms 10000 "$rc_dir/workload" \
        > "$rc_dir/cached.out"
    if ! diff -u "$rc_dir/fresh.out" "$rc_dir/cached.out"; then
        echo "result-cache smoke: cached response diverged from the" \
             "fresh solve" >&2
        exit 1
    fi
    # With the stats line kept, the repeat must declare itself a
    # store hit (`result-cache 1`).
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 8 \
        --timeout-ms 10000 "$rc_dir/workload" > "$rc_dir/hit.out"
    if ! grep -q " result-cache 1" "$rc_dir/hit.out"; then
        echo "result-cache smoke: repeat was not served from the" \
             "store" >&2
        cat "$rc_dir/hit.out" >&2
        exit 1
    fi
    # The daemon's own counters agree.
    ./build/bin/jitsched-cli --port "$port" --timeout-ms 10000 \
        stats > "$rc_dir/stats.out"
    rc_hits="$(awk '$2 == "service.result_cache.hits" {print $3}' \
        "$rc_dir/stats.out")"
    if [ -z "$rc_hits" ] || [ "$rc_hits" -lt 1 ]; then
        echo "result-cache smoke: STATS hit counter missing or" \
             "zero (got '${rc_hits:-}')" >&2
        cat "$rc_dir/stats.out" >&2
        exit 1
    fi

    # Concurrent burst on a fresh key (a policy the cache has not
    # seen): exactly one request leads the solve; every other one
    # must be served by the cache — collapsed onto the in-flight
    # solve or answered from the store once it lands — so exactly 7
    # of the 8 responses carry a result-cache marker, independent of
    # timing.
    burst_pids=()
    for i in 1 2 3 4 5 6 7 8; do
        ./build/bin/jitsched-cli --port "$port" \
            --policy lower-bound --id "$((100 + i))" \
            --timeout-ms 10000 "$rc_dir/workload" \
            > "$rc_dir/burst.$i.out" &
        burst_pids+=($!)
    done
    for pid in "${burst_pids[@]}"; do
        wait "$pid"
    done
    burst_served="$(cat "$rc_dir"/burst.*.out \
        | grep -c " result-cache " || true)"
    if [ "$burst_served" -ne 7 ]; then
        echo "result-cache smoke: expected 7 of 8 burst responses" \
             "served by the cache, got $burst_served" >&2
        cat "$rc_dir"/burst.*.out >&2
        exit 1
    fi

    # On-demand snapshot over the wire (the SNAPSHOT verb).
    ./build/bin/jitsched-cli --port "$port" --timeout-ms 10000 \
        snapshot > "$rc_dir/snapshot.out"
    if ! grep -q "^snapshot 2 entries" "$rc_dir/snapshot.out"; then
        echo "result-cache smoke: unexpected snapshot reply:" >&2
        cat "$rc_dir/snapshot.out" >&2
        exit 1
    fi
    if [ ! -s "$rc_dir/snap" ]; then
        echo "result-cache smoke: snapshot file was not written" >&2
        exit 1
    fi

    # Warm restart: a clean shutdown re-writes the snapshot; the
    # next daemon must load it and serve its very first request from
    # the store — still byte-identical to the original fresh solve.
    kill "$rc_pid" 2>/dev/null || true
    wait "$rc_pid" 2>/dev/null || true
    rc_pid=""
    ./build/bin/jitschedd --port 0 --result-cache-mb 16 \
        --snapshot-file "$rc_dir/snap" > "$rc_dir/warm.log" &
    rc_pid=$!
    port="$(rc_scrape_port "$rc_dir/warm.log")"
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 9 \
        --timeout-ms 10000 "$rc_dir/workload" > "$rc_dir/warm.out"
    if ! grep -q " result-cache 1" "$rc_dir/warm.out"; then
        echo "result-cache smoke: first request after the warm" \
             "restart was not served from the snapshot" >&2
        cat "$rc_dir/warm.out" "$rc_dir/warm.log" >&2
        exit 1
    fi
    ./build/bin/jitsched-cli --port "$port" --policy iar --id 7 \
        --no-stats --timeout-ms 10000 "$rc_dir/workload" \
        > "$rc_dir/warm7.out"
    if ! diff -u "$rc_dir/fresh.out" "$rc_dir/warm7.out"; then
        echo "result-cache smoke: snapshot-warmed response diverged" \
             "from the original fresh solve" >&2
        exit 1
    fi
    kill "$rc_pid" 2>/dev/null || true
    wait "$rc_pid" 2>/dev/null || true
    rc_pid=""
    echo "result-cache smoke: off-path clean, hits byte-identical," \
         "snapshot + warm restart ok"
fi

if [ "$run_fuzz_smoke" -eq 1 ]; then
    echo "== Fuzz smoke (solvers 20s + protocol 10s +" \
         "result-cache 10s + canaries) =="
    fuzz_corpus="$(mktemp -d)"
    trap 'rm -rf "$fuzz_corpus"' EXIT
    ./build/bin/jitsched-fuzz solvers --seconds 20 --seed 1 \
        --corpus-dir "$fuzz_corpus"
    ./build/bin/jitsched-fuzz protocol --seconds 10 --seed 1 \
        --corpus-dir "$fuzz_corpus"
    ./build/bin/jitsched-fuzz result-cache --seconds 10 --seed 1 \
        --corpus-dir "$fuzz_corpus"
    # Test the tester: with the lower-bound oracle inverted the run
    # must FAIL, fast.  A canary that passes means the fuzz loop can
    # no longer see a broken oracle — itself a gate failure.
    if ./build/bin/jitsched-fuzz solvers --seconds 20 --seed 1 \
        --break-oracle lower-bound --corpus-dir "$fuzz_corpus" \
        > /dev/null 2>&1; then
        echo "fuzz smoke: the broken-oracle canary PASSED — the" \
             "harness failed to detect a deliberately inverted" \
             "lower-bound oracle" >&2
        exit 1
    fi
    # Same self-check for the parallel-A* differential: a perturbed
    # astar-par cost must be flagged against the sequential solvers.
    if ./build/bin/jitsched-fuzz solvers --seconds 20 --seed 1 \
        --break-oracle astar-par --corpus-dir "$fuzz_corpus" \
        > /dev/null 2>&1; then
        echo "fuzz smoke: the broken-oracle canary PASSED — the" \
             "harness failed to detect a deliberately perturbed" \
             "astar-par cost" >&2
        exit 1
    fi
    # And for the result-cache store/snapshot identity oracles: a
    # deliberately corrupted cached body must be flagged against the
    # fresh solve.
    if ./build/bin/jitsched-fuzz result-cache --seconds 10 --seed 1 \
        --break-oracle result-cache --corpus-dir "$fuzz_corpus" \
        > /dev/null 2>&1; then
        echo "fuzz smoke: the broken-oracle canary PASSED — the" \
             "harness failed to detect a deliberately corrupted" \
             "result-cache body" >&2
        exit 1
    fi
    echo "fuzz smoke: clean run + canaries fired"
fi

if [ "$run_asan" -eq 1 ]; then
    echo "== ASan+UBSan pass (qa + service labels, fuzz smoke) =="
    cmake -B build-asan -S . -DJITSCHED_ASAN=ON \
        -DJITSCHED_BUILD_BENCH=OFF -DJITSCHED_BUILD_EXAMPLES=OFF \
        >/dev/null
    cmake --build build-asan --target test_qa test_service \
        jitsched-fuzz -j
    # Run the binaries directly (as the TSan pass does): only these
    # targets exist in build-asan/, so ctest's discovery files for
    # the rest of the suite would be missing.
    ./build-asan/tests/test_qa
    ./build-asan/tests/test_service
    asan_corpus="$(mktemp -d)"
    ./build-asan/bin/jitsched-fuzz solvers --seconds 10 --seed 2 \
        --corpus-dir "$asan_corpus"
    ./build-asan/bin/jitsched-fuzz protocol --seconds 5 --seed 2 \
        --corpus-dir "$asan_corpus"
    rm -rf "$asan_corpus"
fi

if [ "$run_tsan" -eq 1 ]; then
    echo "== ThreadSanitizer pass (exec + service + cluster + obs" \
         "+ qa + core_par) =="
    cmake -B build-tsan -S . -DJITSCHED_TSAN=ON \
        -DJITSCHED_BUILD_BENCH=OFF -DJITSCHED_BUILD_EXAMPLES=OFF \
        >/dev/null
    cmake --build build-tsan --target test_exec test_service \
        test_cluster test_obs test_qa test_core_par -j
    # More than one executor thread, so the pool and the sharded
    # cache actually race if they can.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_exec \
        --gtest_filter='ThreadPool*:EvalCache*:Batch*'
    # The hash-distributed parallel A* (the `core_par` ctest label):
    # MPSC inboxes, the atomic incumbent, the live-node terminator,
    # and per-worker memory accounting, all under real concurrency.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_core_par
    # The whole service stack is concurrent: acceptor + handler
    # threads, admission worker, evaluation pool, parallel clients.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_service
    # The cluster layer on top of it: router handlers, the health
    # prober, and a backend bouncing while requests route.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_cluster
    # The striped metrics instruments, the span collector and the
    # flight recorder under a deliberate thread hammer (the
    # satellite concurrency suites).
    JITSCHED_THREADS=4 ./build-tsan/tests/test_obs \
        --gtest_filter='MetricsConcurrency*:SpanConcurrency*:FlightRecorderConcurrency*'
    # The corpus replay drives the protocol frames through the
    # loopback server's full thread stack; the reproducers must stay
    # race-free too.
    JITSCHED_THREADS=4 ./build-tsan/tests/test_qa
fi

echo "check.sh: all green"
