/**
 * @file
 * Tests for multi-threaded execution of static schedules.
 */

#include <gtest/gtest.h>

#include "core/iar.hh"
#include "sim/multithread.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(Multithread, SingleThreadMatchesPlainSimulator)
{
    const Workload w = figure1Workload();
    const Schedule s = figureSchemeS3();
    const MtSimResult mt = simulateMt(w, {w.calls()}, s);
    const SimResult st = simulate(w, s);
    ASSERT_EQ(mt.threads.size(), 1u);
    EXPECT_EQ(mt.makespan, st.makespan);
    EXPECT_EQ(mt.totalBubble, st.totalBubble);
    EXPECT_EQ(mt.totalExec, st.totalExec);
}

TEST(Multithread, MakespanIsSlowestThread)
{
    const Workload w = figure1Workload();
    const Schedule s = figureSchemeS1();
    // Thread 0 runs everything of fig1 (ends at 11); thread 1 runs
    // a single quick f0 call (ends at 2).
    const MtSimResult mt =
        simulateMt(w, {{0, 1, 2, 1}, {0}}, s);
    EXPECT_EQ(mt.threads[0].execEnd, 11);
    EXPECT_EQ(mt.threads[1].execEnd, 2);
    EXPECT_EQ(mt.makespan, 11);
}

TEST(Multithread, SharedCodeCacheBenefitsEveryThread)
{
    // One compiled version serves all threads: both threads' f1
    // calls use the level-1 version once it exists.
    const Workload w = figure1Workload();
    const Schedule s = figureSchemeS3(); // recompiles f1 at 8
    const MtSimResult mt =
        simulateMt(w, {{1, 1, 1}, {1, 1, 1}}, s);
    // Identical sequences -> identical timelines.
    EXPECT_EQ(mt.threads[0].execEnd, mt.threads[1].execEnd);
    EXPECT_EQ(mt.threads[0].callsAtLevel[1],
              mt.threads[1].callsAtLevel[1]);
}

TEST(Multithread, SplitTracePreservesCallsPerThreadOrder)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 40;
    cfg.numCalls = 8000;
    cfg.seed = 91;
    const Workload w = generateSynthetic(cfg);

    Rng rng(5);
    const auto threads = splitTrace(w.calls(), 4, rng);
    std::size_t total = 0;
    std::vector<std::uint64_t> counts(w.numFunctions(), 0);
    for (const auto &t : threads) {
        total += t.size();
        for (const FuncId f : t)
            ++counts[f];
    }
    EXPECT_EQ(total, w.numCalls());
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        EXPECT_EQ(counts[f], w.callCount(static_cast<FuncId>(f)));
}

TEST(Multithread, MergeRoundTripKeepsCounts)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 30;
    cfg.numCalls = 3000;
    cfg.seed = 93;
    const Workload w = generateSynthetic(cfg);
    Rng rng(7);
    const auto threads = splitTrace(w.calls(), 3, rng);
    const Workload merged = mergeThreads(w, threads);
    EXPECT_EQ(merged.numCalls(), w.numCalls());
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        EXPECT_EQ(merged.callCount(static_cast<FuncId>(f)),
                  w.callCount(static_cast<FuncId>(f)));
}

TEST(Multithread, MoreThreadsFinishNoLater)
{
    // Spreading the same work over more threads cannot make the
    // slowest thread slower (per-thread work shrinks; the shared
    // compile timeline is unchanged).
    SyntheticConfig cfg;
    cfg.numFunctions = 60;
    cfg.numCalls = 12000;
    cfg.seed = 95;
    const Workload w = generateSynthetic(cfg);
    const Schedule s = iarScheduleOracle(w).schedule;

    Rng rng(9);
    const auto two = splitTrace(w.calls(), 2, rng);
    Rng rng2(9);
    const auto eight = splitTrace(w.calls(), 8, rng2);
    // Not a strict theorem for arbitrary splits, but holds for the
    // burst-dealing splitter on these workloads.
    EXPECT_LE(simulateMt(w, eight, s).makespan * 95 / 100,
              simulateMt(w, two, s).makespan);
}

TEST(Multithread, ScheduleFromMergedTraceServesAllThreads)
{
    // The paper's methodology: schedule on the merged sequence, run
    // the threads against it.
    SyntheticConfig cfg;
    cfg.numFunctions = 80;
    cfg.numCalls = 16000;
    cfg.seed = 97;
    const Workload w = generateSynthetic(cfg);
    Rng rng(11);
    const auto threads = splitTrace(w.calls(), 4, rng);
    const Workload merged = mergeThreads(w, threads);
    const Schedule s = iarScheduleOracle(merged).schedule;
    const MtSimResult mt = simulateMt(w, threads, s);
    EXPECT_GT(mt.makespan, 0);
    EXPECT_EQ(mt.threads.size(), 4u);
}

TEST(MultithreadDeath, Validation)
{
    const Workload w = figure1Workload();
    EXPECT_EXIT(simulateMt(w, {}, figureSchemeS1()),
                ::testing::ExitedWithCode(1), "at least one thread");
    Rng rng(1);
    EXPECT_EXIT(splitTrace(w.calls(), 0, rng),
                ::testing::ExitedWithCode(1), "at least one thread");
    // Missing compile for a called function.
    EXPECT_DEATH(simulateMt(w, {w.calls()}, Schedule({{0, 0}})),
                 "invalid schedule");
}

} // anonymous namespace
} // namespace jitsched
