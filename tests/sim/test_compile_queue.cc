/**
 * @file
 * Unit tests for the multi-core compile queue.
 */

#include <gtest/gtest.h>

#include "sim/compile_queue.hh"

namespace jitsched {
namespace {

TEST(CompileQueue, SingleCoreSerializes)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 5), 15);
    EXPECT_EQ(q.submit(0, 1), 16);
    EXPECT_EQ(q.allDone(), 16);
    EXPECT_EQ(q.busyTime(), 16);
    EXPECT_EQ(q.jobCount(), 3u);
}

TEST(CompileQueue, ArrivalGapIdles)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(0, 4), 4);
    // Arrives after the core went idle.
    EXPECT_EQ(q.submit(10, 3), 13);
    EXPECT_EQ(q.busyTime(), 7);
}

TEST(CompileQueue, TwoCoresRunInParallel)
{
    CompileQueue q(2);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 10), 20);
    EXPECT_EQ(q.allDone(), 20);
}

TEST(CompileQueue, FifoGoesToEarliestFreeCore)
{
    CompileQueue q(2);
    q.submit(0, 100); // core A busy until 100
    q.submit(0, 1);   // core B busy until 1
    // Next job lands on B (free at 1), not A.
    EXPECT_EQ(q.submit(0, 5), 6);
}

TEST(CompileQueue, ZeroDurationJob)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(3, 0), 3);
    EXPECT_EQ(q.busyTime(), 0);
}

TEST(CompileQueue, LastCompletionTracksMostRecentJob)
{
    CompileQueue q(2);
    q.submit(0, 100);
    EXPECT_EQ(q.lastCompletion(), 100);
    q.submit(0, 1);
    EXPECT_EQ(q.lastCompletion(), 1);
}

TEST(CompileQueue, ResetClearsState)
{
    CompileQueue q(2);
    q.submit(0, 5);
    q.reset();
    EXPECT_EQ(q.jobCount(), 0u);
    EXPECT_EQ(q.busyTime(), 0);
    EXPECT_EQ(q.allDone(), 0);
    EXPECT_EQ(q.submit(0, 2), 2);
}

TEST(CompileQueue, ManyCoresBoundedByLongestJob)
{
    CompileQueue q(16);
    for (int i = 0; i < 16; ++i)
        q.submit(0, 7);
    EXPECT_EQ(q.allDone(), 7);
    EXPECT_EQ(q.busyTime(), 7 * 16);
}

TEST(CompileQueueDeath, DecreasingArrivalPanics)
{
    CompileQueue q(1);
    q.submit(10, 1);
    EXPECT_DEATH(q.submit(9, 1), "non-decreasing");
}

TEST(CompileQueueDeath, NegativeDurationPanics)
{
    CompileQueue q(1);
    EXPECT_DEATH(q.submit(0, -1), "negative duration");
}

TEST(CompileQueueDeath, ZeroCoresPanics)
{
    EXPECT_DEATH(CompileQueue(0), "at least one core");
}

} // anonymous namespace
} // namespace jitsched
