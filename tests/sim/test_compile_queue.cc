/**
 * @file
 * Unit tests for the multi-core compile queue.
 */

#include <gtest/gtest.h>

#include "sim/compile_queue.hh"

namespace jitsched {
namespace {

TEST(CompileQueue, SingleCoreSerializes)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 5), 15);
    EXPECT_EQ(q.submit(0, 1), 16);
    EXPECT_EQ(q.allDone(), 16);
    EXPECT_EQ(q.busyTime(), 16);
    EXPECT_EQ(q.jobCount(), 3u);
}

TEST(CompileQueue, ArrivalGapIdles)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(0, 4), 4);
    // Arrives after the core went idle.
    EXPECT_EQ(q.submit(10, 3), 13);
    EXPECT_EQ(q.busyTime(), 7);
}

TEST(CompileQueue, TwoCoresRunInParallel)
{
    CompileQueue q(2);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 10), 10);
    EXPECT_EQ(q.submit(0, 10), 20);
    EXPECT_EQ(q.allDone(), 20);
}

TEST(CompileQueue, FifoGoesToEarliestFreeCore)
{
    CompileQueue q(2);
    q.submit(0, 100); // core A busy until 100
    q.submit(0, 1);   // core B busy until 1
    // Next job lands on B (free at 1), not A.
    EXPECT_EQ(q.submit(0, 5), 6);
}

TEST(CompileQueue, ZeroDurationJob)
{
    CompileQueue q(1);
    EXPECT_EQ(q.submit(3, 0), 3);
    EXPECT_EQ(q.busyTime(), 0);
}

TEST(CompileQueue, LastCompletionTracksMostRecentJob)
{
    CompileQueue q(2);
    q.submit(0, 100);
    EXPECT_EQ(q.lastCompletion(), 100);
    q.submit(0, 1);
    EXPECT_EQ(q.lastCompletion(), 1);
}

TEST(CompileQueue, ResetClearsState)
{
    CompileQueue q(2);
    q.submit(0, 5);
    q.reset();
    EXPECT_EQ(q.jobCount(), 0u);
    EXPECT_EQ(q.busyTime(), 0);
    EXPECT_EQ(q.allDone(), 0);
    EXPECT_EQ(q.submit(0, 2), 2);
}

TEST(CompileQueue, ManyCoresBoundedByLongestJob)
{
    CompileQueue q(16);
    for (int i = 0; i < 16; ++i)
        q.submit(0, 7);
    EXPECT_EQ(q.allDone(), 7);
    EXPECT_EQ(q.busyTime(), 7 * 16);
}

TEST(CompileQueueDeath, DecreasingArrivalPanics)
{
    CompileQueue q(1);
    q.submit(10, 1);
    EXPECT_DEATH(q.submit(9, 1), "non-decreasing");
}

/**
 * Regression test for the submit() precondition: a decreasing
 * arrival must panic *before* any state is touched.  A check placed
 * after the dispatch would corrupt the core free-times and the busy
 * accounting, and every later completion time would be silently
 * wrong — the panic message also has to name both arrivals so the
 * offending submission is identifiable.
 */
TEST(CompileQueueDeath, DecreasingArrivalPanicsBeforeMutation)
{
    CompileQueue q(2);
    q.submit(5, 7); // core A busy until 12
    EXPECT_DEATH(q.submit(3, 100), "got 3 after 5");

    // EXPECT_DEATH runs the bad submission in a child process; the
    // parent's queue keeps working, which pins down that the panic
    // path itself performs no partial update before aborting.
    EXPECT_EQ(q.submit(5, 1), 6); // core B: free, starts at arrival
    EXPECT_EQ(q.jobCount(), 2u);
    EXPECT_EQ(q.busyTime(), 8);
    EXPECT_EQ(q.allDone(), 12);
}

TEST(CompileQueueDeath, NegativeDurationPanicsBeforeMutation)
{
    CompileQueue q(1);
    q.submit(2, 4); // busy until 6
    EXPECT_DEATH(q.submit(3, -1), "negative duration");
    // A rejected duration must not advance the arrival watermark or
    // the accounting either.
    EXPECT_EQ(q.submit(3, 2), 8);
    EXPECT_EQ(q.jobCount(), 2u);
    EXPECT_EQ(q.busyTime(), 6);
}

TEST(CompileQueueDeath, NegativeDurationPanics)
{
    CompileQueue q(1);
    EXPECT_DEATH(q.submit(0, -1), "negative duration");
}

TEST(CompileQueueDeath, ZeroCoresPanics)
{
    EXPECT_DEATH(CompileQueue(0), "at least one core");
}

} // anonymous namespace
} // namespace jitsched
