/**
 * @file
 * Unit tests for the make-span simulator — anchored on the paper's
 * Fig. 1 and Fig. 2 worked examples.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/makespan.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace {

TEST(MakespanFig1, SchemeS1Is11)
{
    const Workload w = figure1Workload();
    const SimResult r = simulate(w, figureSchemeS1());
    EXPECT_EQ(r.makespan, 11);
}

TEST(MakespanFig1, SchemeS2Is12)
{
    const Workload w = figure1Workload();
    const SimResult r = simulate(w, figureSchemeS2());
    EXPECT_EQ(r.makespan, 12);
}

TEST(MakespanFig1, SchemeS3Is10AndBest)
{
    const Workload w = figure1Workload();
    EXPECT_EQ(simulate(w, figureSchemeS3()).makespan, 10);
}

TEST(MakespanFig2, AppendedCallFlipsTheWinner)
{
    // Fig. 2: with the fifth call, s1+c21 becomes best (12) while s3
    // (without the appending, as in the paper) becomes worst (13).
    const Workload w = figure2Workload();
    EXPECT_EQ(simulate(w, figureSchemeS1Extended()).makespan, 12);
    EXPECT_EQ(simulate(w, figureSchemeS2Extended()).makespan, 13);
    EXPECT_EQ(simulate(w, figureSchemeS3()).makespan, 13);
}

TEST(MakespanFig1, BubbleAccounting)
{
    // Scheme s2 on Fig. 1: bubbles at [0,1) (the very first call
    // waits for c00), [2,4) (waiting for c11) and [6,7) (waiting for
    // c20) -> 4 units over 3 bubbles.
    const SimResult r = simulate(figure1Workload(), figureSchemeS2());
    EXPECT_EQ(r.totalBubble, 4);
    EXPECT_EQ(r.bubbleCount, 3u);
}

TEST(MakespanFig1, ExecAndCompileTotals)
{
    const SimResult r = simulate(figure1Workload(), figureSchemeS3());
    // s3 executes e00 + e10 + e20 + e11 = 1 + 3 + 3 + 2 = 9.
    EXPECT_EQ(r.totalExec, 9);
    // Compiles c00 + c10 + c20 + c11 = 1 + 1 + 3 + 3 = 8.
    EXPECT_EQ(r.totalCompile, 8);
    EXPECT_EQ(r.compileEnd, 8);
    EXPECT_EQ(r.execEnd, 10);
}

TEST(MakespanFig1, CallsAtLevel)
{
    const SimResult r = simulate(figure1Workload(), figureSchemeS3());
    ASSERT_EQ(r.callsAtLevel.size(), 2u);
    EXPECT_EQ(r.callsAtLevel[0], 3u); // f0, f1@0, f2
    EXPECT_EQ(r.callsAtLevel[1], 1u); // second f1 call
}

TEST(Makespan, LatestCompilationWins)
{
    // One function, three calls; a recompile completing between call
    // 1 and call 2 switches the version used.
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{2, 10}, {12, 1}});
    const Workload w("w", std::move(funcs), {0, 0, 0});
    const Schedule s({{0, 0}, {0, 1}});
    // Compiles done at 2 and 14.  Exec: [2,12) level 0, [12,22) level
    // 0 (high not ready at 12), [22,23) level 1.
    const SimResult r = simulate(w, s);
    EXPECT_EQ(r.makespan, 23);
    EXPECT_EQ(r.callsAtLevel[0], 2u);
    EXPECT_EQ(r.callsAtLevel[1], 1u);
}

TEST(Makespan, VersionReadyExactlyAtStartIsUsed)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{2, 10}, {10, 1}});
    const Workload w("w", std::move(funcs), {0, 0});
    const Schedule s({{0, 0}, {0, 1}});
    // Compiles at 2 and 12; first exec [2,12); recompile completes at
    // 12 == second call start -> second call uses level 1.
    const SimResult r = simulate(w, s);
    EXPECT_EQ(r.makespan, 13);
    EXPECT_EQ(r.callsAtLevel[1], 1u);
}

TEST(Makespan, MoreCompileCoresShortenBubbles)
{
    const Workload w = figure1Workload();
    const Schedule s = figureSchemeS2();
    const SimResult one = simulate(w, s, {.compileCores = 1});
    const SimResult two = simulate(w, s, {.compileCores = 2});
    EXPECT_LT(two.makespan, one.makespan);
    EXPECT_LE(two.totalBubble, one.totalBubble);
}

TEST(Makespan, CompileEndCanExceedExecEnd)
{
    // A recompile appended after the last call: it runs past the end
    // of execution and must not extend the make-span.
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{1, 2}, {100, 1}});
    const Workload w("w", std::move(funcs), {0});
    const Schedule s({{0, 0}, {0, 1}});
    const SimResult r = simulate(w, s);
    EXPECT_EQ(r.makespan, 3);
    EXPECT_EQ(r.compileEnd, 101);
}

TEST(Makespan, ExecEndDecomposition)
{
    // execEnd == totalExec + totalBubble (execution starts at 0).
    for (const Schedule &s : {figureSchemeS1(), figureSchemeS2(),
                              figureSchemeS3()}) {
        const SimResult r = simulate(figure1Workload(), s);
        EXPECT_EQ(r.execEnd, r.totalExec + r.totalBubble);
    }
}

class RecordingObserver : public SimObserver
{
  public:
    void
    onCompiled(std::size_t idx, const CompileEvent &ev,
               Tick completion) override
    {
        compiled.push_back({idx, ev, completion});
    }

    void
    onCall(std::size_t idx, FuncId f, Tick start, Tick dur,
           Level level) override
    {
        calls.push_back({idx, f, start, dur, level});
    }

    struct Compiled
    {
        std::size_t index;
        CompileEvent ev;
        Tick completion;
    };
    struct Call
    {
        std::size_t index;
        FuncId func;
        Tick start;
        Tick dur;
        Level level;
    };
    std::vector<Compiled> compiled;
    std::vector<Call> calls;
};

TEST(Makespan, ObserverSeesFullTimeline)
{
    RecordingObserver obs;
    const Workload w = figure1Workload();
    simulate(w, figureSchemeS3(), SimOptions{}, obs);

    ASSERT_EQ(obs.compiled.size(), 4u);
    EXPECT_EQ(obs.compiled[0].completion, 1);
    EXPECT_EQ(obs.compiled[3].completion, 8);
    EXPECT_EQ(obs.compiled[3].ev.func, 1u);
    EXPECT_EQ(obs.compiled[3].ev.level, 1);

    ASSERT_EQ(obs.calls.size(), 4u);
    EXPECT_EQ(obs.calls[0].start, 1);
    EXPECT_EQ(obs.calls[1].start, 2);
    EXPECT_EQ(obs.calls[2].start, 5);
    EXPECT_EQ(obs.calls[3].start, 8);
    EXPECT_EQ(obs.calls[3].level, 1);
}

TEST(MakespanDeath, InvalidSchedulePanics)
{
    const Workload w = figure1Workload();
    // Missing f2's compile.
    const Schedule s({{0, 0}, {1, 0}});
    EXPECT_DEATH(simulate(w, s), "invalid schedule");
}

} // anonymous namespace
} // namespace jitsched
