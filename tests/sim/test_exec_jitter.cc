/**
 * @file
 * Tests for per-invocation execution-time variation (Sec. 8 / the
 * Assumption-1 discussion): profiles carry *average* per-call times;
 * the simulator can vary each call around them.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/candidate_levels.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
sample(std::uint64_t seed = 201)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 150;
    cfg.numCalls = 30000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(ExecJitter, ZeroSigmaIsBitIdentical)
{
    const Workload w = sample();
    const Schedule s = iarScheduleOracle(w).schedule;
    SimOptions none;
    SimOptions zero;
    zero.execJitterSigma = 0.0;
    zero.jitterSeed = 42;
    EXPECT_EQ(simulate(w, s, none).makespan,
              simulate(w, s, zero).makespan);
}

TEST(ExecJitter, DeterministicPerSeed)
{
    const Workload w = sample();
    const Schedule s = iarScheduleOracle(w).schedule;
    SimOptions a, b, c;
    a.execJitterSigma = b.execJitterSigma = c.execJitterSigma = 0.5;
    a.jitterSeed = b.jitterSeed = 7;
    c.jitterSeed = 8;
    EXPECT_EQ(simulate(w, s, a).makespan,
              simulate(w, s, b).makespan);
    EXPECT_NE(simulate(w, s, a).makespan,
              simulate(w, s, c).makespan);
}

TEST(ExecJitter, MeanOneFactorPreservesTotals)
{
    // The mean-one correction keeps the total execution time close
    // to the unjittered run — the property the paper leans on when
    // arguing averages do not skew the lower bound (Sec. 8).
    const Workload w = sample();
    const Schedule s = iarScheduleOracle(w).schedule;
    const SimResult base = simulate(w, s);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SimOptions opts;
        opts.execJitterSigma = 0.5;
        opts.jitterSeed = seed;
        const SimResult jit = simulate(w, s, opts);
        const double ratio =
            static_cast<double>(jit.totalExec) /
            static_cast<double>(base.totalExec);
        EXPECT_NEAR(ratio, 1.0, 0.03) << "seed " << seed;
    }
}

TEST(ExecJitter, HigherSigmaSpreadsDurations)
{
    const Workload w = sample();
    const Schedule s = iarScheduleOracle(w).schedule;

    class SpreadObserver : public SimObserver
    {
      public:
        void
        onCall(std::size_t, FuncId, Tick, Tick dur, Level) override
        {
            min_dur = std::min(min_dur, dur);
            max_dur = std::max(max_dur, dur);
        }
        Tick min_dur = maxTick;
        Tick max_dur = 0;
    };

    SpreadObserver flat, wide;
    SimOptions fo;
    simulate(w, s, fo, flat);
    SimOptions wo;
    wo.execJitterSigma = 1.0;
    simulate(w, s, wo, wide);
    EXPECT_GT(static_cast<double>(wide.max_dur) / wide.min_dur,
              static_cast<double>(flat.max_dur) / flat.min_dur);
}

TEST(ExecJitter, ConclusionsSurviveVariation)
{
    // The paper's Sec. 8 claim: run-time variation does not alter
    // the major conclusions.  Under sizeable jitter, IAR still beats
    // both single-level schemes, and the ordering of schemes is
    // unchanged.
    const Workload w = sample();
    const auto cands = oracleCandidateLevels(w);
    const Schedule iar = iarSchedule(w, cands).schedule;
    const Schedule base = baseLevelSchedule(w, cands);
    const Schedule opt = optimizingLevelSchedule(w, cands);

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SimOptions opts;
        opts.execJitterSigma = 0.6;
        opts.jitterSeed = seed;
        const Tick iar_span = simulate(w, iar, opts).makespan;
        EXPECT_LT(iar_span, simulate(w, base, opts).makespan);
        EXPECT_LE(iar_span, simulate(w, opt, opts).makespan);
    }
}

TEST(ExecJitter, AverageBasedBoundStaysMeaningful)
{
    // The lower bound uses average times; with mean-one jitter the
    // realized make-span stays above it up to the (small) total-time
    // wobble.
    const Workload w = sample();
    const auto cands = oracleCandidateLevels(w);
    const Tick lb = lowerBoundCandidates(w, cands);
    SimOptions opts;
    opts.execJitterSigma = 0.5;
    const Tick span =
        simulate(w, iarSchedule(w, cands).schedule, opts).makespan;
    EXPECT_GT(static_cast<double>(span),
              0.95 * static_cast<double>(lb));
}

} // anonymous namespace
} // namespace jitsched
