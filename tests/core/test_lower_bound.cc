/**
 * @file
 * Unit and property tests for the make-span lower bound (Sec. 5.2).
 */

#include <gtest/gtest.h>

#include "core/candidate_levels.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(LowerBound, AllLevelsUsesHighestLevelTimes)
{
    // Fig. 1 instance: best execs are 1, 2, 1; calls f0 f1 f2 f1.
    EXPECT_EQ(lowerBoundAllLevels(figure1Workload()), 1 + 2 + 1 + 2);
}

TEST(LowerBound, CandidateBoundUsesFasterCandidate)
{
    const Workload w = figure1Workload();
    // Force candidates manually: f1 restricted to level 0 only.
    std::vector<CandidatePair> cands{{0, 0}, {0, 0}, {0, 1}};
    // f0 e=1, f1 e=3 (low), f2 e=1 (high): 1+3+1+3 = 8.
    EXPECT_EQ(lowerBoundCandidates(w, cands), 8);
}

TEST(LowerBound, NoBoundExceedsSimulatedMakespan)
{
    const Workload w = figure1Workload();
    const Tick lb = lowerBoundAllLevels(w);
    for (const Schedule &s : {figureSchemeS1(), figureSchemeS2(),
                              figureSchemeS3()})
        EXPECT_LE(lb, simulate(w, s).makespan);
}

TEST(LowerBound, CandidateBoundBelowCandidateSchedules)
{
    // Property: over random instances, the candidate lower bound
    // never exceeds the make-span of any schedule restricted to the
    // candidate levels.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SyntheticConfig cfg;
        cfg.numFunctions = 80;
        cfg.numCalls = 8000;
        cfg.seed = seed;
        const Workload w = generateSynthetic(cfg);
        const auto cands = oracleCandidateLevels(w);
        const Tick lb = lowerBoundCandidates(w, cands);

        EXPECT_LE(lb,
                  simulate(w, baseLevelSchedule(w, cands)).makespan);
        EXPECT_LE(lb, simulate(w, optimizingLevelSchedule(w, cands))
                          .makespan);
        EXPECT_LE(lb,
                  simulate(w, iarSchedule(w, cands).schedule)
                      .makespan);
    }
}

TEST(LowerBound, AllLevelsBoundIsTightest)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 50;
    cfg.numCalls = 5000;
    cfg.seed = 3;
    const Workload w = generateSynthetic(cfg);
    // The all-levels bound can only be lower (deeper levels allowed).
    EXPECT_LE(lowerBoundAllLevels(w),
              lowerBoundCandidates(w, oracleCandidateLevels(w)));
}

TEST(LowerBound, EmptyWorkloadIsZero)
{
    const Workload w("empty", {}, {});
    EXPECT_EQ(lowerBoundAllLevels(w), 0);
    EXPECT_EQ(lowerBoundCandidates(w, {}), 0);
}

TEST(LowerBoundDeath, CandidateTableMismatch)
{
    const Workload w = figure1Workload();
    EXPECT_DEATH(lowerBoundCandidates(w, {{0, 0}}),
                 "candidate table");
}

} // anonymous namespace
} // namespace jitsched
