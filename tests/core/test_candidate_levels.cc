/**
 * @file
 * Unit tests for candidate-level selection.
 */

#include <gtest/gtest.h>

#include "core/candidate_levels.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
twoFuncs()
{
    std::vector<FunctionProfile> funcs;
    // hot: high level pays off for many calls.
    funcs.emplace_back("hot", 10,
                       std::vector<LevelCosts>{{10, 100}, {500, 10}});
    // cold: called once, high level never pays.
    funcs.emplace_back("cold", 10,
                       std::vector<LevelCosts>{{10, 100}, {500, 10}});
    std::vector<FuncId> calls(50, 0);
    calls.push_back(1);
    return Workload("w", std::move(funcs), calls);
}

TEST(CandidateLevels, OracleEstimatesMirrorTruth)
{
    const Workload w = twoFuncs();
    const TimeEstimates est = oracleEstimates(w);
    ASSERT_EQ(est.perFunc.size(), 2u);
    EXPECT_EQ(est.at(0, 0).compile, 10);
    EXPECT_EQ(est.at(0, 1).exec, 10);
}

TEST(CandidateLevels, HotGetsHighColdStaysLow)
{
    const Workload w = twoFuncs();
    const auto cands = oracleCandidateLevels(w);
    ASSERT_EQ(cands.size(), 2u);
    // hot: 50 calls. level0: 10+5000=5010; level1: 500+500=1000.
    EXPECT_EQ(cands[0].low, 0);
    EXPECT_EQ(cands[0].high, 1);
    // cold: 1 call. level0: 110; level1: 510.
    EXPECT_EQ(cands[1].low, 0);
    EXPECT_EQ(cands[1].high, 0);
}

TEST(CandidateLevels, TieBreaksTowardLowerLevel)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("t", 1,
                       std::vector<LevelCosts>{{10, 5}, {15, 4}});
    // n = 5: both levels cost 35 -> lower wins.
    const Workload w("w", std::move(funcs),
                     std::vector<FuncId>(5, 0));
    const auto cands = oracleCandidateLevels(w);
    EXPECT_EQ(cands[0].high, 0);
}

TEST(CandidateLevels, MostResponsiveIsCheapestCompile)
{
    const Workload w = twoFuncs();
    const auto cands = oracleCandidateLevels(w);
    EXPECT_EQ(cands[0].low, 0);
}

TEST(CandidateLevels, CountsOverloadMatchesWorkloadOverload)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 60;
    cfg.numCalls = 6000;
    cfg.seed = 11;
    const Workload w = generateSynthetic(cfg);
    const TimeEstimates est = oracleEstimates(w);

    std::vector<double> counts(w.numFunctions());
    for (std::size_t f = 0; f < w.numFunctions(); ++f)
        counts[f] = static_cast<double>(
            w.callCount(static_cast<FuncId>(f)));

    const auto a = chooseCandidateLevels(w, est);
    const auto b = chooseCandidateLevels(est, counts);
    EXPECT_EQ(a, b);
}

TEST(CandidateLevels, UpgradableNeverBelowLow)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 100;
    cfg.numCalls = 10000;
    cfg.seed = 13;
    const Workload w = generateSynthetic(cfg);
    for (const CandidatePair &c : oracleCandidateLevels(w))
        EXPECT_LE(c.low, c.high);
}

TEST(CandidateLevelsDeath, MismatchedTablePanics)
{
    const Workload w = twoFuncs();
    TimeEstimates est = oracleEstimates(w);
    est.perFunc.pop_back();
    EXPECT_DEATH(chooseCandidateLevels(w, est), "estimate table");
}

TEST(CandidateLevelsDeath, CountsSizeMismatchPanics)
{
    const Workload w = twoFuncs();
    const TimeEstimates est = oracleEstimates(w);
    EXPECT_DEATH(chooseCandidateLevels(est, {1.0}), "counts");
}

} // anonymous namespace
} // namespace jitsched
