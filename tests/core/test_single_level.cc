/**
 * @file
 * Tests for the single-level approximations (Sec. 5.1).
 */

#include <gtest/gtest.h>

#include "core/candidate_levels.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
smallWorkload(std::uint64_t seed = 21)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 40;
    cfg.numCalls = 4000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(SingleLevel, BaseUsesLowCandidates)
{
    const Workload w = smallWorkload();
    const auto cands = oracleCandidateLevels(w);
    const Schedule s = baseLevelSchedule(w, cands);
    ASSERT_EQ(s.size(), w.numCalledFunctions());
    for (const CompileEvent &ev : s.events())
        EXPECT_EQ(ev.level, cands[ev.func].low);
    EXPECT_TRUE(s.validate(w));
}

TEST(SingleLevel, OptimizingUsesHighCandidates)
{
    const Workload w = smallWorkload();
    const auto cands = oracleCandidateLevels(w);
    const Schedule s = optimizingLevelSchedule(w, cands);
    for (const CompileEvent &ev : s.events())
        EXPECT_EQ(ev.level, cands[ev.func].high);
    EXPECT_TRUE(s.validate(w));
}

TEST(SingleLevel, FirstCallOrderPreserved)
{
    const Workload w = smallWorkload();
    const auto cands = oracleCandidateLevels(w);
    const Schedule s = baseLevelSchedule(w, cands);
    const auto &order = w.firstAppearanceOrder();
    ASSERT_EQ(s.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(s[i].func, order[i]);
}

TEST(SingleLevel, UniformClampsToAvailableLevels)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("deep", 1,
                       std::vector<LevelCosts>{{1, 9}, {2, 8}, {3, 7}});
    funcs.emplace_back("shallow", 1,
                       std::vector<LevelCosts>{{1, 9}});
    const Workload w("w", std::move(funcs), {0, 1});
    const Schedule s = uniformLevelSchedule(w, 2);
    EXPECT_EQ(s[0].level, 2);
    EXPECT_EQ(s[1].level, 0);
}

TEST(SingleLevel, BaseBeatsOptimizingOnColdStart)
{
    // Every function called exactly once: deep compiles cannot pay
    // off, so base-level-only must win.
    std::vector<FunctionProfile> funcs;
    std::vector<FuncId> calls;
    for (int i = 0; i < 10; ++i) {
        funcs.emplace_back(
            "f" + std::to_string(i), 1,
            std::vector<LevelCosts>{{10, 100}, {1000, 50}});
        calls.push_back(static_cast<FuncId>(i));
    }
    const Workload w("cold", std::move(funcs), calls);
    // Hand candidates forcing high = 1 for everyone.
    std::vector<CandidatePair> cands(w.numFunctions(),
                                     CandidatePair{0, 1});
    const Tick base =
        simulate(w, baseLevelSchedule(w, cands)).makespan;
    const Tick opt =
        simulate(w, optimizingLevelSchedule(w, cands)).makespan;
    EXPECT_LT(base, opt);
}

TEST(SingleLevelDeath, CandidateMismatch)
{
    const Workload w = smallWorkload();
    EXPECT_DEATH(baseLevelSchedule(w, {}), "candidate table");
}

} // anonymous namespace
} // namespace jitsched
