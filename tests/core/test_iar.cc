/**
 * @file
 * Tests for the IAR algorithm (Sec. 5.1, Fig. 3).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/candidate_levels.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(Iar, NearOptimalOnFig1)
{
    // On the Fig. 1 instance the optimum is 10 (scheme s3), but it
    // requires recompiling f1 even though level 1 is not
    // cost-effective for it in the c + n*e sense (both levels total
    // 7) — candidate selection ties toward level 0, so IAR lands on
    // the best single-compile schedule (11).  This is exactly the
    // kind of instance the NP-completeness result says heuristics
    // must sometimes miss.
    const Workload w = figure1Workload();
    const IarResult res = iarScheduleOracle(w);
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_LE(simulate(w, res.schedule).makespan, 11);
}

TEST(Iar, HandlesFig2Extension)
{
    // Fig. 2: best schedule shown in the paper reaches 12.
    const Workload w = figure2Workload();
    const IarResult res = iarScheduleOracle(w);
    EXPECT_LE(simulate(w, res.schedule).makespan, 12);
}

TEST(Iar, InitialSegmentIsFirstCallOrder)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 60;
    cfg.numCalls = 6000;
    cfg.seed = 31;
    const Workload w = generateSynthetic(cfg);
    const IarResult res = iarScheduleOracle(w);

    // The first numCalledFunctions events cover each function once,
    // in first-appearance order.
    const auto &order = w.firstAppearanceOrder();
    ASSERT_GE(res.schedule.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(res.schedule[i].func, order[i]);
}

TEST(Iar, CategoriesPartitionFunctions)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 150;
    cfg.numCalls = 30000;
    cfg.seed = 33;
    const Workload w = generateSynthetic(cfg);
    const IarResult res = iarScheduleOracle(w);
    EXPECT_EQ(res.numOther + res.numAppend + res.numReplace,
              w.numCalledFunctions());
}

TEST(Iar, NoUpgradablesYieldsPureInitialSchedule)
{
    // Single-level functions: nothing to append or replace.
    std::vector<FunctionProfile> funcs;
    std::vector<FuncId> calls;
    for (int i = 0; i < 5; ++i) {
        funcs.emplace_back("f" + std::to_string(i), 1,
                           std::vector<LevelCosts>{{1, 10}});
        calls.push_back(static_cast<FuncId>(i));
        calls.push_back(static_cast<FuncId>(i));
    }
    const Workload w("flat", std::move(funcs), calls);
    const IarResult res = iarScheduleOracle(w);
    EXPECT_EQ(res.schedule.size(), 5u);
    EXPECT_EQ(res.numOther, 5u);
    EXPECT_EQ(res.numAppend + res.numReplace, 0u);
}

TEST(Iar, AppendedCompilesSortedByCompileCost)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 200;
    cfg.numCalls = 40000;
    cfg.seed = 35;
    const Workload w = generateSynthetic(cfg);
    IarConfig icfg;
    icfg.fillSlack = false; // keep the raw append segment
    icfg.fillEndingGap = false;
    const auto cands = oracleCandidateLevels(w);
    const IarResult res = iarSchedule(w, cands, icfg);

    const std::size_t init = w.numCalledFunctions();
    Tick prev = 0;
    for (std::size_t i = init; i < res.schedule.size(); ++i) {
        const CompileEvent &ev = res.schedule[i];
        const Tick ch = w.function(ev.func).compileTime(ev.level);
        EXPECT_GE(ch, prev);
        prev = ch;
    }
    EXPECT_EQ(res.schedule.size() - init, res.numAppend);
}

/** Property sweep: IAR validity and dominance over random configs. */
struct IarCase
{
    std::uint64_t seed;
    std::size_t funcs;
    std::size_t calls;
    double skew;
};

class IarPropertyTest : public ::testing::TestWithParam<IarCase>
{
};

TEST_P(IarPropertyTest, ValidAndNoWorseThanSingleLevelSchemes)
{
    const IarCase &c = GetParam();
    SyntheticConfig cfg;
    cfg.numFunctions = c.funcs;
    cfg.numCalls = c.calls;
    cfg.zipfSkew = c.skew;
    cfg.seed = c.seed;
    const Workload w = generateSynthetic(cfg);
    const auto cands = oracleCandidateLevels(w);

    const IarResult res = iarSchedule(w, cands);
    std::string err;
    ASSERT_TRUE(res.schedule.validate(w, &err)) << err;

    const Tick iar = simulate(w, res.schedule).makespan;
    const Tick lb = lowerBoundCandidates(w, cands);
    const Tick base =
        simulate(w, baseLevelSchedule(w, cands)).makespan;
    const Tick opt =
        simulate(w, optimizingLevelSchedule(w, cands)).makespan;

    EXPECT_GE(iar, lb);
    // IAR's whole point: at least as good as both naive schemes.
    EXPECT_LE(iar, base);
    EXPECT_LE(iar, opt + opt / 50); // allow 2% slack vs opt-only
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IarPropertyTest,
    ::testing::Values(IarCase{1, 50, 5000, 0.8},
                      IarCase{2, 100, 20000, 1.1},
                      IarCase{3, 200, 10000, 0.6},
                      IarCase{4, 400, 40000, 1.0},
                      IarCase{5, 30, 3000, 1.4},
                      IarCase{6, 150, 15000, 0.9},
                      IarCase{7, 80, 32000, 1.2},
                      IarCase{8, 250, 25000, 0.7}));

TEST(Iar, KIsStableInPaperRange)
{
    // The paper: results similar for K in [3, 10].
    SyntheticConfig cfg;
    cfg.numFunctions = 200;
    cfg.numCalls = 40000;
    cfg.seed = 37;
    const Workload w = generateSynthetic(cfg);
    const auto cands = oracleCandidateLevels(w);

    std::vector<double> spans;
    for (const double k : {3.0, 5.0, 7.0, 10.0}) {
        IarConfig icfg;
        icfg.k = k;
        spans.push_back(static_cast<double>(
            simulate(w, iarSchedule(w, cands, icfg).schedule)
                .makespan));
    }
    const double lo = *std::min_element(spans.begin(), spans.end());
    const double hi = *std::max_element(spans.begin(), spans.end());
    EXPECT_LT((hi - lo) / lo, 0.06);
}

TEST(Iar, RefinementStepsNeverHurt)
{
    for (std::uint64_t seed = 41; seed < 46; ++seed) {
        SyntheticConfig cfg;
        cfg.numFunctions = 120;
        cfg.numCalls = 24000;
        cfg.seed = seed;
        const Workload w = generateSynthetic(cfg);
        const auto cands = oracleCandidateLevels(w);

        IarConfig plain;
        plain.fillSlack = false;
        plain.fillEndingGap = false;
        const Tick raw =
            simulate(w, iarSchedule(w, cands, plain).schedule)
                .makespan;
        const Tick refined =
            simulate(w, iarSchedule(w, cands).schedule).makespan;
        EXPECT_LE(refined, raw);
    }
}

TEST(Iar, GapAppendsOnlyUpgradableFunctions)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 100;
    cfg.numCalls = 20000;
    cfg.seed = 47;
    const Workload w = generateSynthetic(cfg);
    const auto cands = oracleCandidateLevels(w);
    const IarResult res = iarSchedule(w, cands);

    // No function may be compiled twice at the same level or above
    // its candidate high (validation covers order; check levels).
    for (const CompileEvent &ev : res.schedule.events())
        EXPECT_LE(ev.level, cands[ev.func].high);
}

TEST(IarDeath, CandidateMismatch)
{
    const Workload w = figure1Workload();
    EXPECT_DEATH(iarSchedule(w, {}), "candidate table");
}

} // anonymous namespace
} // namespace jitsched
