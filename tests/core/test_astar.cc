/**
 * @file
 * Tests for the A*-search (Sec. 5.3, Sec. 6.2.5).
 */

#include <gtest/gtest.h>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "qa/oracles.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(AStar, SolvesFig1Optimally)
{
    const AStarResult res = aStarOptimal(figure1Workload());
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_EQ(res.makespan, 10);
    EXPECT_TRUE(res.schedule.validate(figure1Workload()));
}

TEST(AStar, SolvesFig2Optimally)
{
    const AStarResult res = aStarOptimal(figure2Workload());
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_EQ(res.makespan, 12);
}

TEST(AStar, ResultMatchesSimulator)
{
    const Workload w = figure2Workload();
    const AStarResult res = aStarOptimal(w);
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_EQ(simulate(w, res.schedule).makespan, res.makespan);
}

/**
 * A* must agree with exhaustive search on random tiny instances.
 * The shared exactness oracle (qa/oracles.hh) checks brute force
 * against *both* A* variants — incremental and from-scratch — plus
 * schedule validity and simulator agreement, so this sweep guards
 * the same invariant the fuzzer does.
 */
class AStarVsBruteTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AStarVsBruteTest, SameOptimalMakespan)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 4;
    cfg.numCalls = 25;
    cfg.numLevels = 2;
    cfg.seed = GetParam();
    const Workload w = generateSynthetic(cfg);

    qa::OracleConfig ocfg;
    ocfg.checkMetamorphic = false; // exactness is the point here
    qa::OracleStats stats;
    const std::vector<qa::Violation> violations =
        qa::checkAll(w, ocfg, &stats);
    EXPECT_TRUE(violations.empty())
        << "seed " << GetParam() << "\n"
        << qa::describeViolations(violations);
    ASSERT_EQ(stats.exactRuns, 1u)
        << "instance too large for the exact oracles";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarVsBruteTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10, 11, 12));

TEST(AStar, PrunesComparedToFullTree)
{
    // Sec. 6.2.5: A* reaches the optimum after exploring a tiny
    // fraction of the schedule space.
    SyntheticConfig cfg;
    cfg.numFunctions = 5;
    cfg.numCalls = 40;
    cfg.numLevels = 2;
    cfg.seed = 3;
    const Workload w = generateSynthetic(cfg);

    const BruteForceResult bf = bruteForceOptimal(w);
    const AStarResult as = aStarOptimal(w);
    ASSERT_EQ(as.status, AStarStatus::Optimal);
    EXPECT_LT(as.nodesExpanded, bf.nodesVisited);
}

TEST(AStar, MemoryBudgetTriggersOom)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 8;
    cfg.numCalls = 80;
    cfg.numLevels = 2;
    cfg.seed = 5;
    const Workload w = generateSynthetic(cfg);

    AStarConfig acfg;
    acfg.memoryBudget = 64 * 1024; // tiny: forces the OOM path
    const AStarResult res = aStarOptimal(w, acfg);
    EXPECT_EQ(res.status, AStarStatus::OutOfMemory);
    EXPECT_GE(res.peakMemory, acfg.memoryBudget);
}

TEST(AStar, ExpansionCap)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 8;
    cfg.numCalls = 80;
    cfg.numLevels = 2;
    cfg.seed = 7;
    const Workload w = generateSynthetic(cfg);

    AStarConfig acfg;
    acfg.maxExpansions = 10;
    const AStarResult res = aStarOptimal(w, acfg);
    EXPECT_EQ(res.status, AStarStatus::ExpansionCap);
    EXPECT_EQ(res.nodesExpanded, 11u);
}

TEST(AStar, GeneratedCountsAreConsistent)
{
    const AStarResult res = aStarOptimal(figure1Workload());
    EXPECT_GT(res.nodesGenerated, res.nodesExpanded);
    EXPECT_GT(res.peakMemory, 0u);
}

TEST(AStarDeath, EmptyCallSequence)
{
    const Workload w("empty", {}, {});
    EXPECT_EXIT(aStarOptimal(w), ::testing::ExitedWithCode(1),
                "empty call sequence");
}

} // anonymous namespace
} // namespace jitsched
