/**
 * @file
 * Unit tests for the Schedule type and its validation.
 */

#include <gtest/gtest.h>

#include "core/schedule.hh"
#include "trace/paper_examples.hh"

namespace jitsched {
namespace {

TEST(Schedule, BuildAndAccess)
{
    Schedule s;
    EXPECT_TRUE(s.empty());
    s.append(2, 1);
    s.append(0, 0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].func, 2u);
    EXPECT_EQ(s[0].level, 1);
    EXPECT_EQ(s[1].func, 0u);
}

TEST(Schedule, ValidSchedulesPass)
{
    const Workload w = figure1Workload();
    std::string err;
    EXPECT_TRUE(figureSchemeS1().validate(w, &err)) << err;
    EXPECT_TRUE(figureSchemeS3().validate(w, &err)) << err;
}

TEST(Schedule, RejectsUnknownFunction)
{
    const Workload w = figure1Workload();
    const Schedule s({{7, 0}});
    std::string err;
    EXPECT_FALSE(s.validate(w, &err));
    EXPECT_NE(err.find("unknown function"), std::string::npos);
}

TEST(Schedule, RejectsInvalidLevel)
{
    const Workload w = figure1Workload();
    const Schedule s({{0, 5}, {1, 0}, {2, 0}});
    std::string err;
    EXPECT_FALSE(s.validate(w, &err));
    EXPECT_NE(err.find("invalid level"), std::string::npos);
}

TEST(Schedule, RejectsNonIncreasingLevels)
{
    const Workload w = figure1Workload();
    // f1 compiled at level 1 then level 0: malformed.
    const Schedule s({{0, 0}, {1, 1}, {2, 0}, {1, 0}});
    std::string err;
    EXPECT_FALSE(s.validate(w, &err));
    EXPECT_NE(err.find("not above"), std::string::npos);

    // Duplicate same-level compile is equally malformed.
    const Schedule dup({{0, 0}, {0, 0}, {1, 0}, {2, 0}});
    EXPECT_FALSE(dup.validate(w, &err));
}

TEST(Schedule, RejectsMissingCalledFunction)
{
    const Workload w = figure1Workload();
    const Schedule s({{0, 0}, {1, 0}});
    std::string err;
    EXPECT_FALSE(s.validate(w, &err));
    EXPECT_NE(err.find("never compiled"), std::string::npos);
}

TEST(Schedule, UncalledFunctionsNeedNoCompile)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("called", 1,
                       std::vector<LevelCosts>{{1, 1}});
    funcs.emplace_back("uncalled", 1,
                       std::vector<LevelCosts>{{1, 1}});
    const Workload w("w", std::move(funcs), {0});
    const Schedule s({{0, 0}});
    EXPECT_TRUE(s.validate(w));
}

TEST(Schedule, TotalCompileTime)
{
    const Workload w = figure1Workload();
    EXPECT_EQ(figureSchemeS1().totalCompileTime(w), 5);
    EXPECT_EQ(figureSchemeS3().totalCompileTime(w), 8);
}

TEST(Schedule, ToStringNamesEvents)
{
    const Workload w = figure1Workload();
    const std::string repr = figureSchemeS3().toString(w);
    EXPECT_EQ(repr, "C0(f0) C0(f1) C0(f2) C1(f1)");
}

TEST(Schedule, Equality)
{
    EXPECT_EQ(figureSchemeS1(), figureSchemeS1());
    EXPECT_NE(figureSchemeS1(), figureSchemeS2());
}

} // anonymous namespace
} // namespace jitsched
