/**
 * @file
 * Differential tests for the incremental prefix-evaluation engine
 * (core/prefix_sim.hh): chained PrefixSimState appends must be
 * bit-identical to the from-scratch evalPrefix()/evalComplete()
 * walks, and A* with duplicate-state pruning must return the same
 * optimum as A* without it and as brute force.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "core/prefix_sim.hh"
#include "core/search_util.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
randomWorkload(std::uint64_t seed, std::size_t funcs,
               std::size_t calls, std::size_t levels)
{
    SyntheticConfig cfg;
    cfg.numFunctions = funcs;
    cfg.numCalls = calls;
    cfg.numLevels = levels;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

/**
 * Walk a random valid path of the schedule tree, checking after every
 * appended event that the incremental state reproduces the
 * from-scratch prefix cost bit for bit.
 */
void
checkRandomPath(const Workload &w, std::uint64_t seed)
{
    const PrefixEvaluator eval(w);
    const std::vector<Tick> best = bestExecTimes(w);
    std::mt19937_64 rng(seed);

    std::vector<LevelSig> sig(w.numFunctions(), -1);
    std::vector<CompileEvent> events;
    PrefixSimState state = eval.rootState();

    EXPECT_EQ(eval.rootF(), evalPrefix(w, events, best).f());

    for (int step = 0; step < 64; ++step) {
        // Candidate children: any called function, any level above
        // its last compiled one.
        std::vector<CompileEvent> candidates;
        for (std::size_t i = 0; i < w.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (w.callCount(f) == 0)
                continue;
            for (int l = sig[i] + 1;
                 l < static_cast<int>(w.function(f).numLevels()); ++l)
                candidates.push_back({f, static_cast<Level>(l)});
        }
        if (candidates.empty())
            break;
        const CompileEvent ev =
            candidates[rng() % candidates.size()];

        const PrefixStep next = eval.append(state, sig.data(), ev);
        events.push_back(ev);
        sig[ev.func] = ev.level;

        const PrefixCost scratch = evalPrefix(w, events, best);
        ASSERT_EQ(next.state.compileEnd, scratch.compileEnd)
            << "seed " << seed << " depth " << events.size();
        ASSERT_EQ(next.f, scratch.f())
            << "seed " << seed << " depth " << events.size();

        // Once coverage is complete, the resumed complete walk must
        // match the from-scratch one too.
        bool covered = true;
        for (const FuncId f : w.firstAppearanceOrder())
            covered = covered && sig[f] >= 0;
        if (covered) {
            ASSERT_EQ(eval.complete(next.state, sig.data()),
                      evalComplete(w, events, best))
                << "seed " << seed << " depth " << events.size();
        }
        state = next.state;
    }
}

TEST(PrefixSim, IncrementalMatchesFromScratchOnRandomPaths)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        checkRandomPath(randomWorkload(seed, 5, 40, 3), seed);
        checkRandomPath(randomWorkload(seed + 100, 8, 120, 2),
                        seed * 7 + 1);
    }
    checkRandomPath(figure1Workload(), 3);
    checkRandomPath(figure2Workload(), 4);
}

TEST(PrefixSim, StateIsMonotoneAlongPaths)
{
    const Workload w = randomWorkload(9, 6, 60, 2);
    const PrefixEvaluator eval(w);
    std::mt19937_64 rng(17);

    std::vector<LevelSig> sig(w.numFunctions(), -1);
    PrefixSimState state = eval.rootState();
    Tick prev_f = eval.rootF();
    for (int step = 0; step < 32; ++step) {
        std::vector<CompileEvent> candidates;
        for (std::size_t i = 0; i < w.numFunctions(); ++i) {
            const auto f = static_cast<FuncId>(i);
            if (w.callCount(f) == 0)
                continue;
            for (int l = sig[i] + 1;
                 l < static_cast<int>(w.function(f).numLevels()); ++l)
                candidates.push_back({f, static_cast<Level>(l)});
        }
        if (candidates.empty())
            break;
        const CompileEvent ev = candidates[rng() % candidates.size()];
        const PrefixStep next = eval.append(state, sig.data(), ev);
        // Committed counters and the resume position never move
        // backwards, and f stays monotone — the invariants the arena
        // storage and the A* heuristic rely on.
        EXPECT_GE(next.state.resumeCall, state.resumeCall);
        EXPECT_GE(next.state.now, state.now);
        EXPECT_GE(next.state.compileEnd, state.compileEnd);
        EXPECT_GE(next.state.bubbles, state.bubbles);
        EXPECT_GE(next.state.extraExec, state.extraExec);
        EXPECT_GE(next.f, prev_f);
        prev_f = next.f;
        sig[ev.func] = ev.level;
        state = next.state;
    }
}

TEST(AStarIncremental, BitIdenticalToFromScratch)
{
    // With duplicate detection off, the incremental engine must
    // reproduce the from-scratch search exactly: same optimum, same
    // node counts, same expansion total.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Workload w = randomWorkload(seed, 4, 25, 2);

        AStarConfig inc;
        inc.duplicateDetection = false;
        const AStarResult a = aStarOptimal(w, inc);

        AStarConfig scratch;
        scratch.incrementalEval = false;
        const AStarResult b = aStarOptimal(w, scratch);

        ASSERT_EQ(a.status, AStarStatus::Optimal) << "seed " << seed;
        ASSERT_EQ(b.status, AStarStatus::Optimal) << "seed " << seed;
        EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
        EXPECT_EQ(a.nodesExpanded, b.nodesExpanded) << "seed " << seed;
        EXPECT_EQ(a.nodesGenerated, b.nodesGenerated)
            << "seed " << seed;
        EXPECT_EQ(a.schedule, b.schedule) << "seed " << seed;
    }
}

TEST(AStarPruning, SameOptimumAsUnprunedAndBruteForce)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Workload w = randomWorkload(seed, 4, 25, 2);

        const AStarResult pruned = aStarOptimal(w);
        AStarConfig no_dedup;
        no_dedup.duplicateDetection = false;
        const AStarResult unpruned = aStarOptimal(w, no_dedup);
        const BruteForceResult bf = bruteForceOptimal(w);

        ASSERT_EQ(pruned.status, AStarStatus::Optimal)
            << "seed " << seed;
        ASSERT_EQ(unpruned.status, AStarStatus::Optimal)
            << "seed " << seed;
        ASSERT_TRUE(bf.complete) << "seed " << seed;
        EXPECT_EQ(pruned.makespan, unpruned.makespan)
            << "seed " << seed;
        EXPECT_EQ(pruned.makespan, bf.makespan) << "seed " << seed;

        // The winning schedule must be valid and cost exactly what
        // the search claims under the reference simulator.
        EXPECT_TRUE(pruned.schedule.validate(w)) << "seed " << seed;
        EXPECT_EQ(simulate(w, pruned.schedule).makespan,
                  pruned.makespan)
            << "seed " << seed;
    }
}

TEST(AStarPruning, PrunesDuplicateStates)
{
    // On an instance with several functions the interleavings of
    // compiles that finish ahead of need collapse into shared
    // states: pruning must discard nodes and shrink the search.
    const Workload w = randomWorkload(3, 5, 40, 2);

    const AStarResult pruned = aStarOptimal(w);
    AStarConfig no_dedup;
    no_dedup.duplicateDetection = false;
    const AStarResult unpruned = aStarOptimal(w, no_dedup);

    ASSERT_EQ(pruned.status, AStarStatus::Optimal);
    ASSERT_EQ(unpruned.status, AStarStatus::Optimal);
    EXPECT_EQ(pruned.makespan, unpruned.makespan);
    EXPECT_GT(pruned.nodesPruned, 0u);
    EXPECT_LT(pruned.nodesGenerated, unpruned.nodesGenerated);
    EXPECT_LE(pruned.nodesExpanded, unpruned.nodesExpanded);
}

TEST(DuplicateTable, DetectsExactDuplicatesOnly)
{
    DuplicateTable table(3);
    std::vector<LevelSig> sig = {1, -1, 0};
    PrefixSimState s;
    s.resumeCall = 4;
    s.nextStart = 100;
    s.compileEnd = 90;

    EXPECT_FALSE(table.seen(s, sig.data()));
    EXPECT_TRUE(table.seen(s, sig.data()));

    // Any differing component is a distinct state.
    PrefixSimState t = s;
    t.nextStart = 101;
    EXPECT_FALSE(table.seen(t, sig.data()));
    t = s;
    t.resumeCall = 5;
    EXPECT_FALSE(table.seen(t, sig.data()));
    t = s;
    t.compileEnd = 91;
    EXPECT_FALSE(table.seen(t, sig.data()));
    sig[1] = 0;
    EXPECT_FALSE(table.seen(s, sig.data()));

    // now/bubbles/extraExec are deliberately NOT part of the key:
    // duplicates may split committed cost differently while every
    // completion still costs the same (see DESIGN.md).
    PrefixSimState u = s;
    sig[1] = -1;
    u.now = 55;
    u.bubbles = 7;
    EXPECT_TRUE(table.seen(u, sig.data()));

    EXPECT_EQ(table.size(), 5u);
    EXPECT_GT(table.bytes(), 0u);
}

TEST(AStarAccounting, PeaksAreConsistent)
{
    const Workload w = randomWorkload(5, 5, 40, 2);
    const AStarResult res = aStarOptimal(w);
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_GT(res.evaluations, 0u);
    EXPECT_GE(res.evaluations, res.nodesGenerated + res.nodesPruned -
                                   1); // root is not evaluated
    // bytesPerNode must reflect the stored resumable state.
    EXPECT_GE(res.bytesPerNode, sizeof(PrefixSimState));
    EXPECT_GE(res.peakMemory, res.peakArenaBytes);
    EXPECT_GE(res.peakMemory, res.peakOpenBytes);
    EXPECT_GE(res.peakMemory, res.peakTableBytes);
    EXPECT_LE(res.peakMemory, res.peakArenaBytes + res.peakOpenBytes +
                                  res.peakTableBytes);
    EXPECT_EQ(res.peakArenaBytes,
              res.nodesGenerated * res.bytesPerNode);
}

TEST(BruteForceIncremental, MatchesSimulatorOnPaperExamples)
{
    for (const Workload &w : {figure1Workload(), figure2Workload()}) {
        const BruteForceResult bf = bruteForceOptimal(w);
        ASSERT_TRUE(bf.complete);
        EXPECT_TRUE(bf.schedule.validate(w));
        EXPECT_EQ(simulate(w, bf.schedule).makespan, bf.makespan);
    }
}

} // anonymous namespace
} // namespace jitsched
