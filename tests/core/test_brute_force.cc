/**
 * @file
 * Tests for the exact branch-and-bound solver.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/iar.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(BruteForce, SolvesFig1Optimally)
{
    // The paper's Fig. 1 discussion: s3 (make-span 10) is the best of
    // the three schemes; brute force may at best match it (and it is
    // indeed optimal for that instance).
    const Workload w = figure1Workload();
    const BruteForceResult res = bruteForceOptimal(w);
    ASSERT_TRUE(res.complete);
    EXPECT_EQ(res.makespan, 10);
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_EQ(simulate(w, res.schedule).makespan, res.makespan);
}

TEST(BruteForce, SolvesFig2Optimally)
{
    // With the appended call, the best of the paper's schemes is 12.
    const Workload w = figure2Workload();
    const BruteForceResult res = bruteForceOptimal(w);
    ASSERT_TRUE(res.complete);
    EXPECT_EQ(res.makespan, 12);
}

TEST(BruteForce, SingleFunction)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("f", 1,
                       std::vector<LevelCosts>{{1, 10}, {5, 2}});
    const Workload w("w", std::move(funcs), {0, 0, 0});
    const BruteForceResult res = bruteForceOptimal(w);
    ASSERT_TRUE(res.complete);
    // Candidates: level0 only: 1 + 30 = 31.  level1 only: 5+6=11.
    // level0 then level1 (compile 1, run 10 while compiling 5 at 2..7,
    // calls at [1,11) [11,13) [13,15): 15.  Optimal: 11.
    EXPECT_EQ(res.makespan, 11);
}

TEST(BruteForce, NeverWorseThanIar)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        SyntheticConfig cfg;
        cfg.numFunctions = 4;
        cfg.numCalls = 30;
        cfg.numLevels = 2;
        cfg.seed = seed;
        const Workload w = generateSynthetic(cfg);
        const BruteForceResult bf = bruteForceOptimal(w);
        ASSERT_TRUE(bf.complete);
        const Tick iar =
            simulate(w, iarScheduleOracle(w).schedule).makespan;
        EXPECT_LE(bf.makespan, iar) << "seed " << seed;
    }
}

TEST(BruteForce, NodeCapTruncates)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 6;
    cfg.numCalls = 60;
    cfg.numLevels = 2;
    cfg.seed = 9;
    const Workload w = generateSynthetic(cfg);
    BruteForceConfig bcfg;
    bcfg.maxNodes = 100;
    const BruteForceResult res = bruteForceOptimal(w, bcfg);
    EXPECT_FALSE(res.complete);
    // Still returns a valid incumbent schedule.
    EXPECT_TRUE(res.schedule.validate(w));
}

TEST(BruteForce, CountsNodes)
{
    const BruteForceResult res =
        bruteForceOptimal(figure1Workload());
    EXPECT_GT(res.nodesVisited, 0u);
}

TEST(BruteForceDeath, EmptyCallSequence)
{
    const Workload w("empty", {}, {});
    EXPECT_EXIT(bruteForceOptimal(w), ::testing::ExitedWithCode(1),
                "empty call sequence");
}

} // anonymous namespace
} // namespace jitsched
