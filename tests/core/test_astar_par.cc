/**
 * @file
 * Tests for the hash-distributed parallel anytime A*
 * (core/astar_par.hh) and for the sequential search's IAR incumbent
 * pruning.  Carries the `core_par` ctest label — the thread-heavy
 * suite the TSan job runs.
 */

#include <gtest/gtest.h>

#include "core/astar.hh"
#include "core/astar_par.hh"
#include "core/brute_force.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
synthetic(std::size_t functions, std::size_t calls,
          std::size_t levels, std::uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numFunctions = functions;
    cfg.numCalls = calls;
    cfg.numLevels = levels;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(AStarPar, SolvesFig1Optimally)
{
    const Workload w = figure1Workload();
    const AStarResult res = aStarParallel(w);
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_EQ(res.makespan, 10);
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_EQ(res.gapBound, 0);
    EXPECT_EQ(res.stopCause, AStarStop::None);
}

TEST(AStarPar, SolvesFig2Optimally)
{
    const AStarResult res = aStarParallel(figure2Workload());
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    EXPECT_EQ(res.makespan, 12);
}

/**
 * The determinism contract: run to completion, the parallel search's
 * cost is bit-identical to the sequential optimum at every worker
 * count, on every instance.
 */
class AStarParCostTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AStarParCostTest, CostMatchesSequentialAtEveryWorkerCount)
{
    const Workload w = synthetic(4, 25, 2, GetParam());
    const AStarResult seq = aStarOptimal(w);
    ASSERT_EQ(seq.status, AStarStatus::Optimal);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(threads);
        AStarConfig cfg;
        cfg.threads = threads;
        const AStarResult par = aStarParallel(w, cfg);
        ASSERT_EQ(par.status, AStarStatus::Optimal);
        EXPECT_EQ(par.makespan, seq.makespan);
        EXPECT_TRUE(par.schedule.validate(w));
        EXPECT_EQ(simulate(w, par.schedule).makespan, par.makespan);
        EXPECT_EQ(par.workerExpansions.size(), threads);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarParCostTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AStarPar, OneWorkerIsFullyDeterministic)
{
    // With a single worker there is no expansion-order race: every
    // counter, not just the cost, must repeat exactly.
    const Workload w = synthetic(5, 40, 2, 3);
    AStarConfig cfg;
    cfg.threads = 1;
    const AStarResult a = aStarParallel(w, cfg);
    const AStarResult b = aStarParallel(w, cfg);
    ASSERT_EQ(a.status, AStarStatus::Optimal);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.schedule.events(), b.schedule.events());
    EXPECT_EQ(a.nodesExpanded, b.nodesExpanded);
    EXPECT_EQ(a.nodesGenerated, b.nodesGenerated);
    EXPECT_EQ(a.nodesPruned, b.nodesPruned);
    EXPECT_EQ(a.nodesPrunedIncumbent, b.nodesPrunedIncumbent);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(AStarPar, IncumbentTrailStartsAtTheSeedAndTightens)
{
    const AStarResult res = aStarParallel(synthetic(5, 40, 2, 7));
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    ASSERT_FALSE(res.incumbentTrail.empty());
    // Entry 0 is the IAR seed; each later entry strictly improves;
    // the last one is the returned make-span.
    for (std::size_t i = 1; i < res.incumbentTrail.size(); ++i)
        EXPECT_LT(res.incumbentTrail[i].makespan,
                  res.incumbentTrail[i - 1].makespan);
    EXPECT_EQ(res.incumbentTrail.back().makespan, res.makespan);
}

TEST(AStarPar, ExpansionCapReturnsTheIncumbent)
{
    const Workload w = synthetic(8, 80, 2, 7);
    AStarConfig cfg;
    cfg.threads = 2;
    cfg.maxExpansions = 5;
    const AStarResult res = aStarParallel(w, cfg);
    ASSERT_EQ(res.status, AStarStatus::Incumbent);
    EXPECT_EQ(res.stopCause, AStarStop::Expansions);
    // The anytime contract: a valid schedule, correctly priced, with
    // a non-negative optimality-gap bound.
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_EQ(simulate(w, res.schedule).makespan, res.makespan);
    EXPECT_GE(res.gapBound, 0);
}

TEST(AStarPar, MemoryBudgetReturnsTheIncumbent)
{
    const Workload w = synthetic(10, 150, 3, 5);
    AStarConfig cfg;
    cfg.threads = 2;
    cfg.memoryBudget = 32 * 1024;
    const AStarResult res = aStarParallel(w, cfg);
    ASSERT_EQ(res.status, AStarStatus::Incumbent);
    EXPECT_EQ(res.stopCause, AStarStop::Memory);
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_EQ(simulate(w, res.schedule).makespan, res.makespan);
    EXPECT_GE(res.peakMemory, cfg.memoryBudget);
}

TEST(AStarPar, DeadlineReturnsTheIncumbent)
{
    // Large enough that exact search cannot finish in 2 ms even
    // with incumbent pruning; the deadline must trip and still hand
    // back a valid schedule.
    const Workload w = synthetic(12, 200, 3, 11);
    AStarConfig cfg;
    cfg.threads = 2;
    cfg.anytimeDeadlineMs = 2;
    const AStarResult res = aStarParallel(w, cfg);
    ASSERT_EQ(res.status, AStarStatus::Incumbent);
    EXPECT_EQ(res.stopCause, AStarStop::Deadline);
    EXPECT_TRUE(res.schedule.validate(w));
    EXPECT_EQ(simulate(w, res.schedule).makespan, res.makespan);
    EXPECT_GE(res.gapBound, 0);
}

TEST(AStarPar, MemoryAccountingSumsThePerWorkerStructures)
{
    AStarConfig cfg;
    cfg.threads = 4;
    const AStarResult res =
        aStarParallel(synthetic(5, 40, 2, 9), cfg);
    ASSERT_EQ(res.status, AStarStatus::Optimal);
    ASSERT_EQ(res.workerExpansions.size(), 4u);
    std::uint64_t total = 0;
    for (const std::uint64_t e : res.workerExpansions)
        total += e;
    EXPECT_EQ(total, res.nodesExpanded);
    EXPECT_GT(res.bytesPerNode, 0u);
    EXPECT_GT(res.peakArenaBytes, 0u);
    EXPECT_EQ(res.peakMemory, res.peakArenaBytes +
                                  res.peakOpenBytes +
                                  res.peakTableBytes);
}

TEST(SequentialIncumbent, PruningKeepsTheCostAndShrinksTheSearch)
{
    // Satellite of the same PR: aStarOptimal() can seed the IAR
    // bound too.  Same optimum, strictly fewer (or equal) expanded
    // nodes, and on a >= 5-function instance the bound must actually
    // fire.
    const Workload w = synthetic(5, 40, 2, 3);
    const AStarResult plain = aStarOptimal(w);
    AStarConfig cfg;
    cfg.incumbentPruning = true;
    const AStarResult pruned = aStarOptimal(w, cfg);
    ASSERT_EQ(plain.status, AStarStatus::Optimal);
    ASSERT_EQ(pruned.status, AStarStatus::Optimal);
    EXPECT_EQ(pruned.makespan, plain.makespan);
    EXPECT_TRUE(pruned.schedule.validate(w));
    EXPECT_EQ(simulate(w, pruned.schedule).makespan,
              pruned.makespan);
    EXPECT_LE(pruned.nodesExpanded, plain.nodesExpanded);
    EXPECT_GT(pruned.nodesPrunedIncumbent, 0u);
}

TEST(SequentialIncumbent, PruningMatchesBruteForceOnTinyInstances)
{
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        SCOPED_TRACE(seed);
        const Workload w = synthetic(4, 25, 2, seed);
        const BruteForceResult bf = bruteForceOptimal(w);
        ASSERT_TRUE(bf.complete);
        AStarConfig cfg;
        cfg.incumbentPruning = true;
        const AStarResult res = aStarOptimal(w, cfg);
        ASSERT_EQ(res.status, AStarStatus::Optimal);
        EXPECT_EQ(res.makespan, bf.makespan);
    }
}

TEST(AStarParDeath, EmptyCallSequence)
{
    const Workload w("empty", {}, {});
    EXPECT_EXIT(aStarParallel(w), ::testing::ExitedWithCode(1),
                "empty call sequence");
}

} // anonymous namespace
} // namespace jitsched
