/**
 * @file
 * Tests for the shared search cost machinery (f(v) = b(v) + e(v)).
 */

#include <gtest/gtest.h>

#include "core/search_util.hh"
#include "sim/makespan.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(SearchUtil, BestExecTimes)
{
    const Workload w = figure1Workload();
    const auto best = bestExecTimes(w);
    ASSERT_EQ(best.size(), 3u);
    EXPECT_EQ(best[0], 1);
    EXPECT_EQ(best[1], 2);
    EXPECT_EQ(best[2], 1);
}

TEST(SearchUtil, CompleteCostMatchesSimulator)
{
    // makespan == lowerBoundAllLevels + evalComplete for any valid
    // complete schedule — the decomposition the searches rely on.
    const Workload w = figure1Workload();
    const auto best = bestExecTimes(w);
    Tick lb = 0;
    for (const FuncId f : w.calls())
        lb += best[f];

    for (const Schedule &s : {figureSchemeS1(), figureSchemeS2(),
                              figureSchemeS3()}) {
        EXPECT_EQ(lb + evalComplete(w, s.events(), best),
                  simulate(w, s).makespan);
    }
}

TEST(SearchUtil, CompleteCostMatchesSimulatorOnRandomInstances)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        SyntheticConfig cfg;
        cfg.numFunctions = 30;
        cfg.numCalls = 1500;
        cfg.seed = seed;
        const Workload w = generateSynthetic(cfg);
        const auto best = bestExecTimes(w);
        Tick lb = 0;
        for (const FuncId f : w.calls())
            lb += best[f];

        // A mixed schedule: everything at level 0, hot third
        // recompiled at level 3.
        std::vector<CompileEvent> events;
        for (const FuncId f : w.firstAppearanceOrder())
            events.push_back({f, 0});
        for (const FuncId f : w.firstAppearanceOrder()) {
            if (w.callCount(f) > 50)
                events.push_back({f, 3});
        }
        EXPECT_EQ(lb + evalComplete(w, events, best),
                  simulate(w, Schedule(events)).makespan);
    }
}

TEST(SearchUtil, EmptyPrefixChargesTheUnavoidableFirstCompile)
{
    // Even an empty prefix has committed cost: the first call (f0)
    // cannot start before f0's cheapest compile (1 tick) finishes.
    // This is the strengthening over the paper's plain b(v) + e(v)
    // that stops A* from wandering through prefixes that postpone a
    // needed compilation for free.
    const Workload w = figure1Workload();
    const auto best = bestExecTimes(w);
    const PrefixCost pc = evalPrefix(w, {}, best);
    EXPECT_EQ(pc.compileEnd, 0);
    EXPECT_EQ(pc.f(), 1);
}

TEST(SearchUtil, PrefixCostIsMonotoneAlongPaths)
{
    // f(v) never decreases when a prefix is extended — the property
    // that makes the A* heuristic admissible and consistent.
    const Workload w = figure2Workload();
    const auto best = bestExecTimes(w);
    const std::vector<CompileEvent> full =
        figureSchemeS2Extended().events();

    Tick prev = 0;
    std::vector<CompileEvent> prefix;
    for (const CompileEvent &ev : full) {
        prefix.push_back(ev);
        const Tick f = evalPrefix(w, prefix, best).f();
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(SearchUtil, PrefixNeverExceedsCompleteCost)
{
    const Workload w = figure1Workload();
    const auto best = bestExecTimes(w);
    for (const Schedule &s : {figureSchemeS1(), figureSchemeS2(),
                              figureSchemeS3()}) {
        std::vector<CompileEvent> prefix;
        const Tick total = evalComplete(w, s.events(), best);
        for (const CompileEvent &ev : s.events()) {
            prefix.push_back(ev);
            EXPECT_LE(evalPrefix(w, prefix, best).f(), total);
        }
    }
}

TEST(SearchUtil, PrefixCommitsDeterminedWaits)
{
    // A prefix compiling only f0 (1 tick): the first call's start is
    // already pinned at t = 1 by the prefix (later compiles cannot
    // provide an earlier first version), so its 1-tick wait is
    // committed even though it falls outside the compile window.
    const Workload w = figure1Workload();
    const auto best = bestExecTimes(w);
    const PrefixCost pc = evalPrefix(w, {{0, 0}}, best);
    EXPECT_EQ(pc.compileEnd, 1);
    EXPECT_EQ(pc.f(), 1);
}

} // anonymous namespace
} // namespace jitsched
