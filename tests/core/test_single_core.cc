/**
 * @file
 * Tests for the single-core optimum (Sec. 4.1, Theorem 1).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/single_core.hh"
#include "trace/paper_examples.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

TEST(SingleCore, ScheduleCompilesEachFunctionOnce)
{
    const Workload w = figure1Workload();
    const Schedule s = singleCoreOptimalSchedule(w);
    EXPECT_EQ(s.size(), w.numCalledFunctions());
    EXPECT_TRUE(s.validate(w));
}

TEST(SingleCore, PicksCostEffectiveLevels)
{
    const Workload w = figure1Workload();
    const Schedule s = singleCoreOptimalSchedule(w);
    // f0: only identical levels -> 0.  f1 (2 calls):
    // level0 1+6=7 vs level1 3+4=7 -> tie, level 0.
    // f2 (1 call): level0 3+3=6 vs level1 5+1=6 -> tie, level 0.
    for (const CompileEvent &ev : s.events())
        EXPECT_EQ(ev.level, 0);
}

TEST(SingleCore, MakespanIsWorkSum)
{
    const Workload w = figure1Workload();
    // All at level 0: compiles 1+1+3, execs 1+3+3+3 = 15.
    EXPECT_EQ(singleCoreMakespan(w, figureSchemeS1()), 15);
    // s3 adds c11 (3) and swaps the two f1 execs to e=2 each:
    // compiles 8, execs 1+2+3+2 = 16.
    EXPECT_EQ(singleCoreMakespan(w, figureSchemeS3()), 16);
}

/**
 * Theorem 1, checked exhaustively: over random small instances, the
 * Theorem-1 schedule's single-core make-span is minimal among every
 * single-compile level assignment, and no recompilation schedule
 * beats it either.
 */
class Theorem1Test : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Theorem1Test, OptimalAmongAllLevelAssignments)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 5;
    cfg.numCalls = 40;
    cfg.numLevels = 2;
    cfg.seed = GetParam();
    const Workload w = generateSynthetic(cfg);

    const Tick best =
        singleCoreMakespan(w, singleCoreOptimalSchedule(w));

    // Enumerate all 2^5 level assignments.
    const std::size_t n = w.numFunctions();
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
        Schedule s;
        for (const FuncId f : w.firstAppearanceOrder())
            s.append(f, (mask >> f) & 1 ? 1 : 0);
        EXPECT_GE(singleCoreMakespan(w, s), best) << "mask " << mask;
    }

    // Recompilation (low then high, every subset) cannot help on a
    // single core either.
    for (std::size_t mask = 1; mask < (1u << n); ++mask) {
        Schedule s;
        for (const FuncId f : w.firstAppearanceOrder())
            s.append(f, 0);
        for (const FuncId f : w.firstAppearanceOrder()) {
            if ((mask >> f) & 1)
                s.append(f, 1);
        }
        EXPECT_GE(singleCoreMakespan(w, s), best) << "mask " << mask;
    }
}

TEST_P(Theorem1Test, OrderIrrelevant)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 6;
    cfg.numCalls = 60;
    cfg.numLevels = 3;
    cfg.seed = GetParam() + 100;
    const Workload w = generateSynthetic(cfg);

    const Schedule fwd = singleCoreOptimalSchedule(w);
    Schedule rev(std::vector<CompileEvent>(fwd.events().rbegin(),
                                           fwd.events().rend()));
    EXPECT_EQ(singleCoreMakespan(w, fwd), singleCoreMakespan(w, rev));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

TEST(SingleCoreDeath, InvalidSchedule)
{
    const Workload w = figure1Workload();
    EXPECT_DEATH(singleCoreMakespan(w, Schedule({{0, 0}})),
                 "invalid schedule");
}

} // anonymous namespace
} // namespace jitsched
