/**
 * @file
 * Tests for the online IAR scheduler (the Sec. 8 deployment story).
 */

#include <gtest/gtest.h>

#include "core/candidate_levels.hh"
#include "core/single_level.hh"
#include "predictor/online_iar.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
runOfProgram(std::uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 60;
    cfg.numCalls = 12000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(CompleteSchedule, CoversAllCalledFunctions)
{
    const Workload w = runOfProgram(1);
    // A plan knowing only three functions.
    Schedule planned;
    planned.append(0, 0);
    planned.append(1, 0);
    planned.append(0, 3);
    std::size_t missing = 0;
    const Schedule full = completeScheduleFor(w, planned, &missing);
    EXPECT_TRUE(full.validate(w));
    EXPECT_EQ(missing, w.numCalledFunctions() - 2);
}

TEST(CompleteSchedule, KeepsPlannedLevels)
{
    const Workload w = runOfProgram(2);
    Schedule planned;
    for (const FuncId f : w.firstAppearanceOrder())
        planned.append(f, 1);
    const Schedule full = completeScheduleFor(w, planned);
    for (const CompileEvent &ev : full.events())
        EXPECT_EQ(ev.level, 1);
}

TEST(CompleteSchedule, ClampsLevelsToRealProfile)
{
    std::vector<FunctionProfile> funcs;
    funcs.emplace_back("shallow", 1,
                       std::vector<LevelCosts>{{1, 5}});
    const Workload w("w", std::move(funcs), {0});
    Schedule planned;
    planned.append(0, 3); // level that does not exist
    const Schedule full = completeScheduleFor(w, planned);
    EXPECT_TRUE(full.validate(w));
    EXPECT_EQ(full[0].level, 0);
}

TEST(CompleteSchedule, DropsUncalledAndDuplicateRecompiles)
{
    const Workload w = runOfProgram(3);
    Schedule planned;
    planned.append(0, 0);
    planned.append(0, 2);
    planned.append(0, 2); // duplicate level: must be dropped
    const Schedule full = completeScheduleFor(w, planned);
    EXPECT_TRUE(full.validate(w));
}

TEST(OnlineIar, ProducesValidScheduleEndToEnd)
{
    // Train on two past runs, deploy on a third.
    const Workload past1 = runOfProgram(10);
    const Workload past2 = runOfProgram(11);
    const Workload today = runOfProgram(12);

    NGramPredictor predictor(3);
    predictor.train(past1.calls());
    predictor.train(past2.calls());

    ProfileRepository repo;
    repo.recordRun(past1, 0.1, 1);
    repo.recordRun(past2, 0.1, 2);

    const OnlineIarResult res =
        onlineIarSchedule(today, predictor, repo);
    std::string err;
    EXPECT_TRUE(res.schedule.validate(today, &err)) << err;
    EXPECT_GT(res.predictionAccuracy, 0.0);
}

TEST(OnlineIar, BeatsBaseOnlyWhenPredictionIsGood)
{
    // Identical past and present runs: prediction is easy, so the
    // planned schedule should comfortably beat base-level-only.
    const Workload w = runOfProgram(20);
    NGramPredictor predictor(3);
    predictor.train(w.calls());
    ProfileRepository repo;
    repo.recordRun(w);

    const OnlineIarResult res =
        onlineIarSchedule(w, predictor, repo);
    const Tick online = simulate(w, res.schedule).makespan;
    const Tick base =
        simulate(w,
                 baseLevelSchedule(w, oracleCandidateLevels(w)))
            .makespan;
    EXPECT_LT(online, base);
    EXPECT_EQ(res.unpredictedFunctions, 0u);
}

TEST(OnlineIar, HandlesUnpredictedFunctionsGracefully)
{
    // Train on a run that misses some functions the real run calls.
    const Workload small = runOfProgram(30);
    // Past run: a truncated view (only first half of the calls).
    std::vector<FuncId> half(small.calls().begin(),
                             small.calls().begin() +
                                 small.numCalls() / 8);
    std::vector<FunctionProfile> funcs(small.functions());
    const Workload past("past", std::move(funcs), half);

    NGramPredictor predictor(2);
    predictor.train(past.calls());
    ProfileRepository repo;
    repo.recordRun(past);

    const OnlineIarResult res =
        onlineIarSchedule(small, predictor, repo);
    EXPECT_TRUE(res.schedule.validate(small));
}

TEST(OnlineIarDeath, EmptyRepositoryRejected)
{
    const Workload w = runOfProgram(40);
    const NGramPredictor predictor(2);
    const ProfileRepository repo;
    EXPECT_EXIT(onlineIarSchedule(w, predictor, repo),
                ::testing::ExitedWithCode(1), "empty profile");
}

} // anonymous namespace
} // namespace jitsched
