/**
 * @file
 * Tests for the n-gram call-sequence predictor.
 */

#include <gtest/gtest.h>

#include "predictor/ngram.hh"

namespace jitsched {
namespace {

TEST(NGram, LearnsDeterministicCycle)
{
    NGramPredictor p(2);
    std::vector<FuncId> cycle;
    for (int i = 0; i < 60; ++i)
        cycle.push_back(static_cast<FuncId>(i % 3)); // 0 1 2 0 1 2 ..
    p.train(cycle);

    EXPECT_EQ(p.predictNext({0, 1}), 2u);
    EXPECT_EQ(p.predictNext({1, 2}), 0u);
    EXPECT_EQ(p.predictNext({2, 0}), 1u);
}

TEST(NGram, PerfectAccuracyOnTrainedCycle)
{
    NGramPredictor p(3);
    std::vector<FuncId> cycle;
    for (int i = 0; i < 100; ++i)
        cycle.push_back(static_cast<FuncId>(i % 5));
    p.train(cycle);
    EXPECT_DOUBLE_EQ(p.accuracy(cycle), 1.0);
}

TEST(NGram, BacksOffToUnigramForUnseenContext)
{
    NGramPredictor p(2);
    // 7 dominates the unigram distribution.
    p.train({7, 7, 7, 7, 7, 3});
    EXPECT_EQ(p.predictNext({100, 200}), 7u);
}

TEST(NGram, UntrainedReturnsInvalid)
{
    const NGramPredictor p(2);
    EXPECT_EQ(p.predictNext({1, 2}), invalidFuncId);
    EXPECT_TRUE(p.extrapolate({1}, 10).size() <= 1u);
}

TEST(NGram, ShortContextStillPredicts)
{
    NGramPredictor p(4);
    p.train({1, 2, 1, 2, 1, 2, 1, 2});
    // Context shorter than the order: backoff to what is available.
    EXPECT_EQ(p.predictNext({1}), 2u);
}

TEST(NGram, ExtrapolateReachesRequestedLength)
{
    NGramPredictor p(2);
    std::vector<FuncId> cycle;
    for (int i = 0; i < 30; ++i)
        cycle.push_back(static_cast<FuncId>(i % 3));
    p.train(cycle);

    const auto out = p.extrapolate({0, 1}, 20);
    ASSERT_EQ(out.size(), 20u);
    // The continuation must follow the cycle.
    for (std::size_t i = 2; i < out.size(); ++i)
        EXPECT_EQ(out[i], (out[i - 1] + 1) % 3);
}

TEST(NGram, ExtrapolateKeepsLongerPrefix)
{
    NGramPredictor p(1);
    p.train({1, 1, 1});
    const std::vector<FuncId> prefix{5, 6, 7, 8};
    const auto out = p.extrapolate(prefix, 2);
    EXPECT_EQ(out, prefix); // never truncates the prefix
}

TEST(NGram, LongerContextBeatsUnigram)
{
    // Sequence where bigram context matters: after (1,2) comes 3,
    // after (4,2) comes 5; unigram alone cannot separate them.
    NGramPredictor p(2);
    std::vector<FuncId> seq;
    for (int i = 0; i < 20; ++i) {
        seq.insert(seq.end(), {1, 2, 3});
        seq.insert(seq.end(), {4, 2, 5});
    }
    p.train(seq);
    EXPECT_EQ(p.predictNext({1, 2}), 3u);
    EXPECT_EQ(p.predictNext({4, 2}), 5u);
}

TEST(NGram, ContextCountGrowsWithTraining)
{
    NGramPredictor p(2);
    EXPECT_EQ(p.contextCount(), 0u);
    p.train({1, 2, 3, 4});
    const std::size_t after_first = p.contextCount();
    EXPECT_GT(after_first, 0u);
    p.train({9, 8, 7, 6});
    EXPECT_GT(p.contextCount(), after_first);
}

TEST(NGram, AccuracyOnTooShortSequenceIsZero)
{
    NGramPredictor p(3);
    p.train({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(p.accuracy({1, 2}), 0.0);
}

TEST(NGram, StochasticExtrapolationPreservesProportions)
{
    // Train on a 90/10 mix; sampled continuations should keep the
    // mix instead of collapsing onto the majority symbol the way a
    // greedy argmax walk does.
    NGramPredictor p(1);
    std::vector<FuncId> seq;
    Rng gen(5);
    for (int i = 0; i < 5000; ++i)
        seq.push_back(gen.nextBool(0.9) ? 1 : 2);
    p.train(seq);

    Rng rng(11);
    const auto out = p.extrapolateStochastic({1}, 20000, rng);
    std::size_t ones = 0;
    for (const FuncId f : out)
        ones += f == 1 ? 1 : 0;
    const double share =
        static_cast<double>(ones) / static_cast<double>(out.size());
    EXPECT_NEAR(share, 0.9, 0.03);
}

TEST(NGram, StochasticSamplingIsDeterministicPerSeed)
{
    // Train on a *stochastic* mix so contexts have multiple
    // successors; different sampling seeds then walk differently.
    NGramPredictor p(2);
    std::vector<FuncId> seq;
    Rng gen(17);
    for (int i = 0; i < 2000; ++i)
        seq.push_back(
            static_cast<FuncId>(gen.nextBelow(5)));
    p.train(seq);

    Rng a(3), b(3), c(4);
    const auto out_a = p.extrapolateStochastic({0, 1}, 500, a);
    const auto out_b = p.extrapolateStochastic({0, 1}, 500, b);
    const auto out_c = p.extrapolateStochastic({0, 1}, 500, c);
    EXPECT_EQ(out_a, out_b);
    EXPECT_NE(out_a, out_c);
}

TEST(NGram, SampleNextUntrainedIsInvalid)
{
    const NGramPredictor p(2);
    Rng rng(1);
    EXPECT_EQ(p.sampleNext({1, 2}, rng), invalidFuncId);
}

TEST(NGramDeath, ZeroOrderRejected)
{
    EXPECT_EXIT(NGramPredictor(0), ::testing::ExitedWithCode(1),
                "order");
}

} // anonymous namespace
} // namespace jitsched
