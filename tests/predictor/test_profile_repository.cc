/**
 * @file
 * Tests for the cross-run profile repository.
 */

#include <gtest/gtest.h>

#include "predictor/profile_repository.hh"
#include "trace/synthetic.hh"

namespace jitsched {
namespace {

Workload
run(std::uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 40;
    cfg.numCalls = 4000;
    cfg.seed = seed;
    return generateSynthetic(cfg);
}

TEST(Repository, EmptyIsNotReady)
{
    const ProfileRepository repo;
    EXPECT_FALSE(repo.ready());
    EXPECT_EQ(repo.runCount(), 0u);
}

TEST(Repository, SingleExactRunReproducesTimes)
{
    const Workload w = run(1);
    ProfileRepository repo;
    repo.recordRun(w);
    EXPECT_TRUE(repo.ready());

    const TimeEstimates est = repo.estimates();
    for (std::size_t f = 0; f < w.numFunctions(); ++f) {
        const auto &prof = w.function(static_cast<FuncId>(f));
        for (std::size_t j = 0; j < prof.numLevels(); ++j) {
            EXPECT_EQ(est.at(static_cast<FuncId>(f),
                             static_cast<Level>(j))
                          .compile,
                      prof.compileTime(static_cast<Level>(j)));
        }
    }
}

TEST(Repository, ExpectedCallCountsAverageAcrossRuns)
{
    // Same profile shape, different call sequences.
    const Workload a = run(1);
    ProfileRepository repo;
    repo.recordRun(a);
    repo.recordRun(a);
    EXPECT_EQ(repo.runCount(), 2u);
    const auto counts = repo.expectedCallCounts();
    EXPECT_NEAR(counts[0], static_cast<double>(a.callCount(0)),
                1e-9);
}

TEST(Repository, NoisyObservationsKeepInvariants)
{
    const Workload w = run(2);
    ProfileRepository repo;
    for (std::uint64_t s = 1; s <= 5; ++s)
        repo.recordRun(w, 0.4, s);
    const TimeEstimates est = repo.estimates();
    for (const auto &levels : est.perFunc)
        EXPECT_TRUE(FunctionProfile::levelsMonotonic(levels));
}

TEST(Repository, AveragingConvergesTowardTruth)
{
    const Workload w = run(3);
    ProfileRepository noisy_few, noisy_many;
    for (std::uint64_t s = 1; s <= 2; ++s)
        noisy_few.recordRun(w, 0.5, s);
    for (std::uint64_t s = 1; s <= 40; ++s)
        noisy_many.recordRun(w, 0.5, s);

    auto relerr = [&](const TimeEstimates &est) {
        double total = 0.0;
        std::size_t n = 0;
        for (std::size_t f = 0; f < w.numFunctions(); ++f) {
            const auto &prof = w.function(static_cast<FuncId>(f));
            for (std::size_t j = 0; j < prof.numLevels(); ++j) {
                const double truth = static_cast<double>(
                    prof.compileTime(static_cast<Level>(j)));
                const double got = static_cast<double>(
                    est.at(static_cast<FuncId>(f),
                           static_cast<Level>(j))
                        .compile);
                if (truth > 0) {
                    total += std::abs(got - truth) / truth;
                    ++n;
                }
            }
        }
        return total / static_cast<double>(n);
    };
    EXPECT_LT(relerr(noisy_many.estimates()),
              relerr(noisy_few.estimates()));
}

TEST(Repository, CandidateLevelsMatchOracleOnExactData)
{
    const Workload w = run(4);
    ProfileRepository repo;
    repo.recordRun(w);
    EXPECT_EQ(repo.candidateLevels(), oracleCandidateLevels(w));
}

TEST(RepositoryDeath, ShapeMismatchRejected)
{
    ProfileRepository repo;
    repo.recordRun(run(1));
    SyntheticConfig cfg;
    cfg.numFunctions = 10;
    cfg.numCalls = 1000;
    const Workload other = generateSynthetic(cfg);
    EXPECT_EXIT(repo.recordRun(other),
                ::testing::ExitedWithCode(1), "functions");
}

TEST(RepositoryDeath, EstimatesBeforeAnyRunPanics)
{
    const ProfileRepository repo;
    EXPECT_DEATH(repo.estimates(), "before any run");
    EXPECT_DEATH(repo.expectedCallCounts(), "before");
}

} // anonymous namespace
} // namespace jitsched
