/**
 * @file
 * Tests for the PARTITION -> OCSP reduction (Theorem 2), checking
 * both directions of the proof on concrete instances.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "npc/reduction.hh"
#include "sim/makespan.hh"
#include "support/rng.hh"

namespace jitsched {
namespace {

TEST(Reduction, InstanceShape)
{
    const PartitionInstance inst{{2, 3, 1}};
    const ReductionInstance red = buildReduction(inst);
    // first + 3 middles + last.
    EXPECT_EQ(red.workload.numFunctions(), 5u);
    EXPECT_EQ(red.workload.numCalls(), 5u);
    // t = 3, n = 3: bound = 2(1 + 3 + 3) = 14.
    EXPECT_EQ(red.bound, 14);

    // Middle costs follow the construction.
    const auto &m0 = red.workload.function(red.middle[0]);
    EXPECT_EQ(m0.compileTime(0), 1);
    EXPECT_EQ(m0.compileTime(1), 3);   // s_0 + 1
    EXPECT_EQ(m0.execTime(0), 3);      // s_0 + 1
    EXPECT_EQ(m0.execTime(1), 1);

    const auto &first = red.workload.function(red.first);
    EXPECT_EQ(first.compileTime(0), 1);
    EXPECT_EQ(first.execTime(0), 6); // t + n

    const auto &last = red.workload.function(red.last);
    EXPECT_EQ(last.compileTime(0), 6);
    EXPECT_EQ(last.execTime(0), 1);
}

TEST(Reduction, PartitionYieldsScheduleAtBound)
{
    const PartitionInstance inst{{2, 3, 1}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());

    const ReductionInstance red = buildReduction(inst);
    const Schedule s = scheduleFromPartition(red, *subset);
    ASSERT_TRUE(s.validate(red.workload));
    EXPECT_EQ(simulate(red.workload, s).makespan, red.bound);
}

TEST(Reduction, BoundIsOptimal)
{
    // Brute force confirms no schedule beats 2(1 + t + n) when a
    // partition exists.
    const PartitionInstance inst{{2, 2}};
    const ReductionInstance red = buildReduction(inst);
    const BruteForceResult bf = bruteForceOptimal(red.workload);
    ASSERT_TRUE(bf.complete);
    EXPECT_EQ(bf.makespan, red.bound);
}

TEST(Reduction, NoPartitionMeansNoScheduleAtBound)
{
    // {1, 1, 6} has an even total but no perfect partition: the
    // optimal make-span must exceed the bound (the converse
    // direction of the proof).
    const PartitionInstance inst{{1, 1, 6}};
    ASSERT_FALSE(solvePartition(inst).has_value());

    const ReductionInstance red = buildReduction(inst);
    const BruteForceResult bf = bruteForceOptimal(red.workload);
    ASSERT_TRUE(bf.complete);
    EXPECT_GT(bf.makespan, red.bound);
}

TEST(Reduction, ExtractPartitionFromWitnessSchedule)
{
    const PartitionInstance inst{{4, 1, 3, 2}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());

    const ReductionInstance red = buildReduction(inst);
    const Schedule s = scheduleFromPartition(red, *subset);
    const auto extracted = partitionFromSchedule(inst, red, s);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_TRUE(isValidPartition(inst, *extracted));
}

TEST(Reduction, ExtractionRejectsSlowSchedules)
{
    const PartitionInstance inst{{2, 2}};
    const ReductionInstance red = buildReduction(inst);
    // Compile everything at the low level in call order: middles
    // run slow (s_i + 1 each), exceeding the bound.
    Schedule slow;
    slow.append(red.first, 0);
    for (const FuncId m : red.middle)
        slow.append(m, 0);
    slow.append(red.last, 0);
    EXPECT_FALSE(
        partitionFromSchedule(inst, red, slow).has_value());
}

TEST(Reduction, RandomSolvableInstancesAchieveBound)
{
    Rng rng(97);
    for (int trial = 0; trial < 20; ++trial) {
        PartitionInstance inst;
        std::uint64_t half = 0;
        const int n = 2 + static_cast<int>(rng.nextBelow(6));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = 1 + rng.nextBelow(9);
            inst.values.push_back(v);
            half += v;
        }
        inst.values.push_back(half);
        const auto subset = solvePartition(inst);
        ASSERT_TRUE(subset.has_value());

        const ReductionInstance red = buildReduction(inst);
        const Schedule s = scheduleFromPartition(red, *subset);
        EXPECT_EQ(simulate(red.workload, s).makespan, red.bound)
            << "trial " << trial;
        EXPECT_TRUE(
            partitionFromSchedule(inst, red, s).has_value());
    }
}

TEST(ReductionDeath, OddTotalRejected)
{
    EXPECT_EXIT(buildReduction({{1, 2}}),
                ::testing::ExitedWithCode(1), "even");
}

} // anonymous namespace
} // namespace jitsched
