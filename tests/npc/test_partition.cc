/**
 * @file
 * Tests for the PARTITION DP solver.
 */

#include <gtest/gtest.h>

#include "npc/partition.hh"
#include "support/rng.hh"

namespace jitsched {
namespace {

TEST(Partition, TotalsAndTarget)
{
    const PartitionInstance inst{{3, 1, 1, 2, 2, 1}};
    EXPECT_EQ(inst.total(), 10u);
    EXPECT_EQ(inst.target(), 5u);
}

TEST(Partition, SolvesSimpleInstance)
{
    const PartitionInstance inst{{3, 1, 1, 2, 2, 1}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());
    EXPECT_TRUE(isValidPartition(inst, *subset));
}

TEST(Partition, OddTotalIsUnsolvable)
{
    EXPECT_FALSE(solvePartition({{1, 2, 4}}).has_value());
}

TEST(Partition, EvenTotalMayStillBeUnsolvable)
{
    // Sum 8, target 4, but {1, 1, 6} cannot reach 4.
    EXPECT_FALSE(solvePartition({{1, 1, 6}}).has_value());
}

TEST(Partition, TwoEqualElements)
{
    const PartitionInstance inst{{7, 7}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());
    EXPECT_EQ(subset->size(), 1u);
}

TEST(Partition, HandlesZeros)
{
    const PartitionInstance inst{{0, 2, 2, 0}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());
    EXPECT_TRUE(isValidPartition(inst, *subset));
}

TEST(Partition, EmptyInstanceTriviallySolvable)
{
    const PartitionInstance inst{{}};
    const auto subset = solvePartition(inst);
    ASSERT_TRUE(subset.has_value());
    EXPECT_TRUE(subset->empty());
}

TEST(Partition, ValidatorRejectsBadSubsets)
{
    const PartitionInstance inst{{3, 1, 2}};
    // total 6, target 3: {0} sums to 3 -> valid.
    EXPECT_TRUE(isValidPartition(inst, {0}));
    EXPECT_FALSE(isValidPartition(inst, {1}));     // sums to 1
    EXPECT_FALSE(isValidPartition(inst, {0, 0}));  // duplicate index
    EXPECT_FALSE(isValidPartition(inst, {9}));     // out of range
}

TEST(Partition, RandomInstancesRoundTrip)
{
    Rng rng(91);
    for (int trial = 0; trial < 50; ++trial) {
        PartitionInstance inst;
        // Build a guaranteed-solvable instance: mirror two halves.
        std::uint64_t half = 0;
        const int n = 3 + static_cast<int>(rng.nextBelow(5));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = rng.nextBelow(20);
            inst.values.push_back(v);
            half += v;
        }
        inst.values.push_back(half); // mirror element
        const auto subset = solvePartition(inst);
        ASSERT_TRUE(subset.has_value()) << "trial " << trial;
        EXPECT_TRUE(isValidPartition(inst, *subset));
    }
}

TEST(Partition, DpAgreesWithExhaustiveSearch)
{
    Rng rng(93);
    for (int trial = 0; trial < 60; ++trial) {
        PartitionInstance inst;
        const int n = 1 + static_cast<int>(rng.nextBelow(8));
        for (int i = 0; i < n; ++i)
            inst.values.push_back(rng.nextBelow(15));

        bool exhaustive = false;
        if (inst.total() % 2 == 0) {
            for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
                std::uint64_t sum = 0;
                for (int i = 0; i < n; ++i) {
                    if ((mask >> i) & 1)
                        sum += inst.values[i];
                }
                exhaustive |= sum == inst.target();
            }
        }
        EXPECT_EQ(solvePartition(inst).has_value(), exhaustive)
            << "trial " << trial;
    }
}

} // anonymous namespace
} // namespace jitsched
