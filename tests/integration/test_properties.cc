/**
 * @file
 * Cross-module property tests, parameterized over seeds and workload
 * shapes (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include "core/astar.hh"
#include "core/brute_force.hh"
#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_core.hh"
#include "core/single_level.hh"
#include "qa/oracles.hh"
#include "sim/makespan.hh"
#include "trace/synthetic.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"
#include "vm/v8_policy.hh"

namespace jitsched {
namespace {

struct Shape
{
    std::uint64_t seed;
    std::size_t funcs;
    std::size_t calls;
    std::size_t levels;
    double skew;
    bool interpreter;
};

void
PrintTo(const Shape &s, std::ostream *os)
{
    *os << "seed=" << s.seed << " funcs=" << s.funcs
        << " calls=" << s.calls << " levels=" << s.levels
        << " skew=" << s.skew << " interp=" << s.interpreter;
}

class WorkloadProperty : public ::testing::TestWithParam<Shape>
{
  protected:
    Workload
    make() const
    {
        const Shape &s = GetParam();
        SyntheticConfig cfg;
        cfg.numFunctions = s.funcs;
        cfg.numCalls = s.calls;
        cfg.numLevels = s.levels;
        cfg.zipfSkew = s.skew;
        cfg.interpreterLevel0 = s.interpreter;
        cfg.seed = s.seed;
        return generateSynthetic(cfg);
    }
};

TEST_P(WorkloadProperty, OracleChainHolds)
{
    // Lower bound, time decomposition, schedule semantics, and the
    // approximation ordering all live in the shared oracle library
    // (qa/oracles.hh) — the same invariants jitsched-fuzz checks on
    // random instances, here pinned on the big named shapes.  The
    // exact solvers skip themselves on these sizes (the instances
    // are far past the 6-function exhaustive-search wall).
    const Workload w = make();
    const std::vector<qa::Violation> violations = qa::checkAll(w);
    EXPECT_TRUE(violations.empty())
        << qa::describeViolations(violations);
}

TEST_P(WorkloadProperty, OnlineSchemesRespectTheLowerBound)
{
    // The adaptive and V8 replays produce *induced* schedules the
    // static oracle chain does not cover; their make-spans must
    // still respect the all-levels lower bound.
    const Workload w = make();
    const Tick lb_all = lowerBoundAllLevels(w);

    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w);
    EXPECT_GE(
        runAdaptive(w, buildOracleEstimates(w), acfg).sim.makespan,
        lb_all);
    EXPECT_GE(runV8(w.restrictLevels(2)).sim.makespan,
              lowerBoundAllLevels(w.restrictLevels(2)));
}

TEST_P(WorkloadProperty, IarProducesValidSchedules)
{
    // checkScheduleSemantics = validate() plus an independent replay
    // of the Sec. 3 semantics (one definition of "valid schedule"
    // for tests and fuzzer alike).
    const Workload w = make();
    const IarResult res = iarScheduleOracle(w);
    std::vector<qa::Violation> violations;
    qa::checkScheduleSemantics(w, res.schedule, "iar-oracle",
                               violations);
    EXPECT_TRUE(violations.empty())
        << qa::describeViolations(violations);
}

TEST_P(WorkloadProperty, DefaultModelSchedulesStayValid)
{
    const Workload w = make();
    CostBenefitConfig mcfg;
    const auto cands = modelCandidateLevels(w, mcfg);
    EXPECT_TRUE(baseLevelSchedule(w, cands).validate(w));
    EXPECT_TRUE(optimizingLevelSchedule(w, cands).validate(w));
    EXPECT_TRUE(iarSchedule(w, cands).schedule.validate(w));
}

TEST_P(WorkloadProperty, MoreCompileCoresNeverSlowStaticSchedules)
{
    const Workload w = make();
    const Schedule s = iarScheduleOracle(w).schedule;
    Tick prev = maxTick;
    for (const std::size_t cores : {1u, 2u, 4u, 8u}) {
        const Tick span =
            simulate(w, s, {.compileCores = cores}).makespan;
        EXPECT_LE(span, prev);
        prev = span;
    }
}

TEST_P(WorkloadProperty, SingleCoreTheoremHolds)
{
    const Workload w = make();
    const Tick best =
        singleCoreMakespan(w, singleCoreOptimalSchedule(w));
    const auto cands = oracleCandidateLevels(w);
    // Any other tested scheme is no better on a single core.
    EXPECT_LE(best,
              singleCoreMakespan(w, baseLevelSchedule(w, cands)));
    EXPECT_LE(best, singleCoreMakespan(
                        w, optimizingLevelSchedule(w, cands)));
    EXPECT_LE(best,
              singleCoreMakespan(w, iarScheduleOracle(w).schedule));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorkloadProperty,
    ::testing::Values(
        Shape{1, 40, 4000, 4, 1.0, false},
        Shape{2, 80, 8000, 4, 0.7, false},
        Shape{3, 120, 12000, 2, 1.2, false},
        Shape{4, 60, 6000, 3, 0.9, false},
        Shape{5, 40, 4000, 4, 1.0, true},
        Shape{6, 200, 20000, 4, 0.8, false},
        Shape{7, 25, 5000, 2, 1.4, false},
        Shape{8, 100, 10000, 3, 0.6, true}));

/** Tiny-instance exactness sweep: A* == brute force, IAR close. */
class TinyExactness : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TinyExactness, OptimalityChain)
{
    SyntheticConfig cfg;
    cfg.numFunctions = 4;
    cfg.numCalls = 20;
    cfg.numLevels = 2;
    cfg.seed = GetParam() * 1000 + 17;
    const Workload w = generateSynthetic(cfg);

    // lb <= bruteForce == A* == A*-scratch <= IAR <= base-only, via
    // the shared oracle chain; exactRuns == 1 proves the exact
    // solvers actually ran rather than budget-skipping.
    qa::OracleStats stats;
    const std::vector<qa::Violation> violations =
        qa::checkAll(w, {}, &stats);
    EXPECT_TRUE(violations.empty())
        << qa::describeViolations(violations);
    EXPECT_EQ(stats.exactRuns, 1u);
    EXPECT_EQ(stats.exactSkipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyExactness,
                         ::testing::Range<std::uint64_t>(1, 9));

} // anonymous namespace
} // namespace jitsched
