/**
 * @file
 * End-to-end integration tests: the full Fig. 5 pipeline on one
 * DaCapo-style workload, trace round-trips, and cross-module
 * consistency.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/iar.hh"
#include "core/lower_bound.hh"
#include "core/single_level.hh"
#include "sim/makespan.hh"
#include "trace/dacapo.hh"
#include "trace/trace_io.hh"
#include "vm/adaptive_runtime.hh"
#include "vm/cost_benefit.hh"
#include "vm/v8_policy.hh"

namespace jitsched {
namespace {

class Pipeline : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        w_ = new Workload(makeDacapoWorkload("antlr", 64));
    }

    static void
    TearDownTestSuite()
    {
        delete w_;
        w_ = nullptr;
    }

    static const Workload &
    w()
    {
        return *w_;
    }

  private:
    static Workload *w_;
};

Workload *Pipeline::w_ = nullptr;

TEST_F(Pipeline, Figure5OrderingsHold)
{
    CostBenefitConfig mcfg;
    const TimeEstimates est = buildEstimates(w(), mcfg);
    const auto cands = modelCandidateLevels(w(), mcfg);
    const Tick lb = lowerBoundCandidates(w(), cands);

    const Tick iar =
        simulate(w(), iarSchedule(w(), cands).schedule).makespan;
    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w());
    const Tick deflt = runAdaptive(w(), est, acfg).sim.makespan;
    const Tick base =
        simulate(w(), baseLevelSchedule(w(), cands)).makespan;
    const Tick opt =
        simulate(w(), optimizingLevelSchedule(w(), cands)).makespan;

    // The paper's qualitative Fig. 5 structure.
    EXPECT_LT(lb, iar);
    EXPECT_LT(iar, deflt);     // big room over the default scheme
    EXPECT_LT(deflt, base);    // base-level-only is worst here
    EXPECT_LT(iar, opt);       // IAR beats single-level schemes
    // IAR within the paper's per-benchmark bound (< 17% gap),
    // default far away (> 30%).
    EXPECT_LT(static_cast<double>(iar) / lb, 1.17);
    EXPECT_GT(static_cast<double>(deflt) / lb, 1.30);
}

TEST_F(Pipeline, OracleModelWidensDefaultGap)
{
    CostBenefitConfig def_cfg;
    CostBenefitConfig orc_cfg;
    orc_cfg.kind = ModelKind::Oracle;

    auto normalized_default = [&](const CostBenefitConfig &mcfg) {
        const TimeEstimates est = buildEstimates(w(), mcfg);
        const auto cands = modelCandidateLevels(w(), mcfg);
        AdaptiveConfig acfg;
        acfg.samplePeriod = defaultSamplePeriod(w());
        const Tick span = runAdaptive(w(), est, acfg).sim.makespan;
        return static_cast<double>(span) /
               static_cast<double>(lowerBoundCandidates(w(), cands));
    };
    // Sec. 6.2.2: the default scheme's normalized gap grows when the
    // cost-benefit model improves.
    EXPECT_GT(normalized_default(orc_cfg),
              normalized_default(def_cfg));
}

TEST_F(Pipeline, OracleModelLowersTheBound)
{
    CostBenefitConfig def_cfg;
    CostBenefitConfig orc_cfg;
    orc_cfg.kind = ModelKind::Oracle;
    const Tick lb_default =
        lowerBoundCandidates(w(), modelCandidateLevels(w(), def_cfg));
    const Tick lb_oracle =
        lowerBoundCandidates(w(), modelCandidateLevels(w(), orc_cfg));
    EXPECT_LT(lb_oracle, lb_default);
}

TEST_F(Pipeline, V8SchemeLeavesRoomButIarIsClose)
{
    const Workload w2 = w().restrictLevels(2);
    const auto cands = oracleCandidateLevels(w2);
    const Tick lb = lowerBoundCandidates(w2, cands);
    const Tick v8 = runV8(w2).sim.makespan;
    const Tick iar =
        simulate(w2, iarSchedule(w2, cands).schedule).makespan;
    // Sec. 6.2.4 structure: IAR near the bound, V8 far away.
    EXPECT_LT(static_cast<double>(iar) / lb, 1.15);
    EXPECT_GT(static_cast<double>(v8) / lb, 1.25);
    EXPECT_LT(iar, v8);
}

TEST_F(Pipeline, ConcurrentJitGainsAreMinorUnderIar)
{
    // Sec. 6.2.3: with a good schedule, extra compile cores barely
    // help.
    const auto cands = oracleCandidateLevels(w());
    const Schedule s = iarSchedule(w(), cands).schedule;
    const Tick one = simulate(w(), s, {.compileCores = 1}).makespan;
    const Tick sixteen =
        simulate(w(), s, {.compileCores = 16}).makespan;
    EXPECT_LE(sixteen, one);
    const double speedup = static_cast<double>(one) /
                           static_cast<double>(sixteen);
    EXPECT_LT(speedup, 1.25);
}

TEST_F(Pipeline, TraceRoundTripPreservesSchedulingResults)
{
    std::stringstream ss;
    writeWorkload(ss, w());
    const Workload copy = readWorkload(ss);

    const auto cands = oracleCandidateLevels(w());
    const auto cands2 = oracleCandidateLevels(copy);
    EXPECT_EQ(cands, cands2);
    EXPECT_EQ(simulate(w(), iarSchedule(w(), cands).schedule)
                  .makespan,
              simulate(copy, iarSchedule(copy, cands2).schedule)
                  .makespan);
}

TEST_F(Pipeline, InducedDefaultScheduleReplaysNoFasterStatically)
{
    // Replaying the adaptive scheme's induced compile order through
    // the static simulator (all requests ready at t=0) can only do
    // better or equal: the online run also waited for requests to be
    // *made*.
    CostBenefitConfig mcfg;
    const TimeEstimates est = buildEstimates(w(), mcfg);
    AdaptiveConfig acfg;
    acfg.samplePeriod = defaultSamplePeriod(w());
    const RuntimeResult online = runAdaptive(w(), est, acfg);
    const SimResult replay = simulate(w(), online.inducedSchedule);
    EXPECT_LE(replay.makespan, online.sim.makespan);
}

} // anonymous namespace
} // namespace jitsched
